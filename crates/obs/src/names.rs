//! The metric name catalogue.
//!
//! Every metric the pipeline emits is registered here up front: the
//! [`crate::MetricsRegistry`] pre-allocates one atomic cell per name at
//! construction, which is what keeps the hot path lock-free (readers
//! binary-search an immutable sorted table; writers touch only atomics).
//! The catalogue is also the documentation of record — DESIGN.md §10
//! mirrors it — and the schema contract for `repro --obs-json`: a
//! snapshot always carries every name below, zero-valued or not, so CI
//! can assert on keys without caring which experiment ran.
//!
//! Naming convention: `<subsystem>.<noun>[.<qualifier>]`, lower-case,
//! dot-separated. Histogram names say their unit in the last segment
//! (`_millis`, `_micros`, `_ticks`). `events.*` counters are maintained by
//! [`crate::MetricsObserver`] itself, one per [`crate::Event`] variant.

/// Monotonic counters, incremented via [`crate::Observer::incr`].
pub const COUNTERS: &[&str] = &[
    // optics: transceiver reconfiguration attempts.
    "bvt.reconfigs",
    "bvt.reconfig_failures",
    "bvt.prepares",
    "bvt.commits",
    "bvt.aborts",
    // controller: decide/execute/prepare/commit/abort outcomes.
    "controller.decisions.hold",
    "controller.decisions.step",
    "controller.decisions.down",
    "controller.changes.applied",
    "controller.changes.failed",
    "controller.changes.rolled_back",
    "controller.retries",
    "controller.quarantines",
    "controller.stale_holds",
    // te round engine: solve outcomes and incremental-path hit rates.
    "te.rounds",
    "te.fallback_rounds",
    "te.static_memo.hits",
    "te.static_memo.misses",
    "te.augment.full_rebuilds",
    "te.augment.in_place_patches",
    "te.augment.suffix_rebuilds",
    // warm-started exact LP (IncrementalExactTe).
    "lp.cold_solves",
    "lp.warm_attempts",
    "lp.warm_hits",
    "lp.pivots",
    "lp.watchdog_aborts",
    "lp.eta_updates",
    "lp.refactorizations",
    "lp.pricing_scans",
    // harness: crash-safe sweep runtime (rwc-harness).
    "harness.chunk_retries",
    "harness.chunk_failures",
    "harness.checkpoints_written",
    "harness.checkpoints_rejected",
    "harness.resume_verified",
    "harness.chaos_panics",
    "harness.chaos_kills",
    // serve: sharded controller daemon (rwc-serve). The ingest ledger
    // closes exactly: ingested = completed + shed_* + inflight_drops +
    // still-queued — overload is counted, never silent. Requeues keep
    // the original admission open and sit outside the ledger.
    "serve.ingested",
    "serve.rejected",
    "serve.duplicates",
    "serve.shed_oldest",
    "serve.shed_deadline",
    "serve.requeued",
    "serve.inflight_drops",
    "serve.links_completed",
    "serve.shard_panics",
    "serve.shard_restarts",
    "serve.shards_unhealthy",
    "serve.checkpoints_written",
    "serve.checkpoint_fallbacks",
    "serve.checkpoints_rejected",
    "serve.http_requests",
    "serve.drains",
    // scenario driver.
    "scenario.ticks",
    "scenario.runs",
    "scenario.counterfactual.hits",
    "scenario.counterfactual.misses",
    "scenario.faults.bvt",
    "scenario.faults.telemetry",
    "scenario.faults.te",
    // fleet-telemetry kernel.
    "fleet.links",
    "fleet.samples",
    "fleet.episodes",
    // one per Event variant, maintained by MetricsObserver::event.
    "events.reconfig_started",
    "events.reconfig_committed",
    "events.reconfig_aborted",
    "events.quarantine",
    "events.warm_solve",
    "events.cold_fallback",
    "events.fault_injected",
    "events.episode_opened",
    "events.episode_closed",
    "events.chunk_retried",
    "events.checkpoint_written",
    "events.resume_verified",
    "events.watchdog_abort",
    "events.shard_restarted",
    "events.shard_unhealthy",
    "events.overload_shed",
    "events.drain_completed",
];

/// Point-in-time gauges, set via [`crate::Observer::gauge`]. Merging
/// snapshots keeps the maximum — gauges are "high-water" readings, not
/// sums.
pub const GAUGES: &[&str] = &[
    "te.warm_hit_rate",
    "scenario.availability",
    "scenario.degraded_share",
    // High-water ingest-queue depth across all shards of the daemon.
    "serve.queue_depth",
];

/// Log-linear histograms, fed via [`crate::Observer::record`] (and
/// [`crate::Span`] for the wall-clock ones). Simulated-time series record
/// `SimDuration` millis; `te.solve_micros` and `te.round_micros` record
/// wall-clock micros.
pub const HISTOGRAMS: &[&str] = &[
    "bvt.phase_millis.laser_power_down",
    "bvt.phase_millis.dsp_reprogram",
    "bvt.phase_millis.laser_power_up_relock",
    "bvt.phase_millis.inline_reprogram",
    "bvt.phase_millis.resync",
    "controller.change_downtime_millis",
    "te.solve_micros",
    "te.round_micros",
    "fleet.episode_ticks",
];
