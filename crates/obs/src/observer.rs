//! The [`Observer`] trait and its two stock implementations.

use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The hook surface instrumented components call into.
///
/// Every method has an empty default body and [`Observer::enabled`]
/// defaults to `false`, so a no-op implementation is literally the empty
/// `impl`. Hot paths that would do work *before* calling a hook (reading
/// a clock, computing a delta) guard it on `enabled()`; plain counter
/// bumps just call through — the virtual call to an empty body is the
/// whole cost.
pub trait Observer: fmt::Debug + Send + Sync {
    /// Whether this observer records anything. Components skip
    /// measurement setup (clock reads, stat deltas) when `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `by` to the counter `name` (a [`crate::names`] entry).
    fn incr(&self, name: &'static str, by: u64) {
        let _ = (name, by);
    }

    /// Sets the gauge `name` to `value`.
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one `value` into the histogram `name`.
    fn record(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Delivers one pipeline event.
    fn event(&self, event: &Event) {
        let _ = event;
    }
}

/// The zero-cost default: records nothing, `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// The shared no-op instance components default to — one allocation per
/// process, cloned as a cheap `Arc` bump.
pub fn noop() -> Arc<dyn Observer> {
    static NOOP: OnceLock<Arc<dyn Observer>> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(NoopObserver)).clone()
}

/// An [`Observer`] backed by a [`MetricsRegistry`]. Counters, gauges and
/// histograms land in the registry; each event increments its `events.*`
/// counter and is optionally forwarded to a secondary sink (the console
/// event echo).
#[derive(Debug, Default)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    forward: Option<Arc<dyn Observer>>,
}

impl MetricsObserver {
    /// A collecting observer over a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Like [`MetricsObserver::new`], but every event is also forwarded
    /// to `sink` after being counted.
    pub fn with_forward(sink: Arc<dyn Observer>) -> Self {
        Self { registry: MetricsRegistry::new(), forward: Some(sink) }
    }

    /// The backing registry (for [`MetricsRegistry::absorb`]-style
    /// merges).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot of everything collected so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Observer for MetricsObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn incr(&self, name: &'static str, by: u64) {
        self.registry.incr(name, by);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.registry.gauge_set(name, value);
    }

    fn record(&self, name: &'static str, value: f64) {
        self.registry.record(name, value);
    }

    fn event(&self, event: &Event) {
        self.registry.incr(event.counter_name(), 1);
        if let Some(sink) = &self.forward {
            sink.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let o = NoopObserver;
        assert!(!o.enabled());
        o.incr("te.rounds", 1);
        o.event(&Event::WarmSolve { pivots: 1 });
        // Nothing to assert beyond "does not panic"; the shared instance
        // is the same story.
        assert!(!noop().enabled());
    }

    #[test]
    fn metrics_observer_counts_events() {
        let o = MetricsObserver::new();
        assert!(o.enabled());
        o.event(&Event::WarmSolve { pivots: 4 });
        o.event(&Event::WarmSolve { pivots: 2 });
        o.event(&Event::ColdFallback { pivots: 60 });
        let s = o.snapshot();
        assert_eq!(s.counters["events.warm_solve"], 2);
        assert_eq!(s.counters["events.cold_fallback"], 1);
    }

    #[test]
    fn forwarding_reaches_the_secondary_sink() {
        #[derive(Debug)]
        struct Counting(std::sync::atomic::AtomicU64);
        impl Observer for Counting {
            fn event(&self, _: &Event) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Counting(std::sync::atomic::AtomicU64::new(0)));
        let o = MetricsObserver::with_forward(sink.clone());
        o.event(&Event::Quarantine { link: 3, until_millis: 99 });
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(o.snapshot().counters["events.quarantine"], 1);
    }
}
