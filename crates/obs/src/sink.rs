//! Human-readable console output.

use crate::event::Event;
use crate::observer::Observer;

/// The `repro` CLI's output channel: progress lines that `--quiet`
/// suppresses, result lines that always print, and (as an [`Observer`]
/// event sink) a pretty-printer for the salient events — quarantines,
/// aborted reconfigurations, cold LP fallbacks. Attach it as the forward
/// sink of a [`crate::MetricsObserver`] to echo those while collecting.
#[derive(Debug, Clone, Copy)]
pub struct ConsoleSink {
    quiet: bool,
}

impl ConsoleSink {
    /// A sink; `quiet` suppresses progress lines and event echoes.
    pub fn new(quiet: bool) -> Self {
        Self { quiet }
    }

    /// Whether progress output is suppressed.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Prints a progress line (status, per-file notices) unless quiet.
    pub fn progress(&self, msg: &str) {
        if !self.quiet {
            println!("{msg}");
        }
    }

    /// Prints a result line (experiment findings, digests) — always.
    pub fn result(&self, msg: &str) {
        println!("{msg}");
    }

    /// Prints an error to stderr — always.
    pub fn error(&self, msg: &str) {
        eprintln!("{msg}");
    }
}

impl Observer for ConsoleSink {
    fn event(&self, event: &Event) {
        if self.quiet {
            return;
        }
        // Only the operator-salient transitions; per-solve and per-episode
        // events would flood a terminal at fleet scale.
        match event {
            Event::ReconfigAborted { link, to_gbps, rolled_back } => {
                println!(
                    "  [obs] reconfig aborted: link {link} -> {to_gbps} G (rolled back: {rolled_back})"
                );
            }
            Event::Quarantine { link, until_millis } => {
                println!("  [obs] link {link} quarantined until t={until_millis}ms");
            }
            Event::ColdFallback { pivots } => {
                println!("  [obs] warm LP fell back cold ({pivots} pivots)");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_is_visible() {
        assert!(ConsoleSink::new(true).is_quiet());
        assert!(!ConsoleSink::new(false).is_quiet());
    }

    #[test]
    fn event_echo_does_not_panic() {
        let s = ConsoleSink::new(true);
        s.event(&Event::Quarantine { link: 1, until_millis: 2 });
        s.event(&Event::WarmSolve { pivots: 1 });
    }
}
