//! Lightweight wall-clock span timing.

use crate::observer::Observer;
use std::time::Instant;

/// Times a region and records the elapsed micros into a histogram on
/// drop. The clock is only read when the observer is enabled — with the
/// no-op default a span is two branches and no syscalls:
///
/// ```
/// use rwc_obs::{MetricsObserver, Observer, Span};
/// let obs = MetricsObserver::new();
/// {
///     let _span = Span::start(&obs, "te.solve_micros");
///     // ... solve ...
/// } // records here
/// assert_eq!(obs.snapshot().histograms["te.solve_micros"].count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a dyn Observer,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Opens a span feeding the histogram `name` (a [`crate::names`]
    /// entry).
    pub fn start(obs: &'a dyn Observer, name: &'static str) -> Self {
        let start = obs.enabled().then(Instant::now);
        Self { obs, name, start }
    }

    /// Closes the span early, recording its duration now.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(start) = self.start.take() {
            self.obs.record(self.name, start.elapsed().as_micros() as f64);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{MetricsObserver, NoopObserver};

    #[test]
    fn span_records_once_on_drop() {
        let obs = MetricsObserver::new();
        {
            let _s = Span::start(&obs, "te.round_micros");
        }
        assert_eq!(obs.snapshot().histograms["te.round_micros"].count, 1);
    }

    #[test]
    fn finish_does_not_double_record() {
        let obs = MetricsObserver::new();
        let s = Span::start(&obs, "te.round_micros");
        s.finish();
        assert_eq!(obs.snapshot().histograms["te.round_micros"].count, 1);
    }

    #[test]
    fn disabled_span_never_reads_the_clock() {
        let s = Span::start(&NoopObserver, "te.round_micros");
        assert!(s.start.is_none());
    }
}
