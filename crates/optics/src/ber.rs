//! Closed-form error-rate models.
//!
//! These standard AWGN formulas serve two purposes: they validate the
//! Monte-Carlo channel in [`crate::constellation`], and they justify the
//! spacing of the modulation-threshold ladder — each step up the ladder
//! needs a predictable extra SNR to hold the same pre-FEC error rate.

use rwc_util::special::{q_function, q_inverse};
use rwc_util::units::Db;

/// Symbol error rate of M-PSK over AWGN at per-symbol SNR `Es/N0`
/// (tight union-bound approximation; exact for BPSK).
pub fn ser_mpsk(m: usize, es_n0: f64) -> f64 {
    assert!(m >= 2 && m.is_power_of_two(), "M must be a power of two >= 2");
    assert!(es_n0 >= 0.0, "SNR must be non-negative");
    if m == 2 {
        return q_function((2.0 * es_n0).sqrt());
    }
    let arg = (2.0 * es_n0).sqrt() * (std::f64::consts::PI / m as f64).sin();
    (2.0 * q_function(arg)).min(1.0)
}

/// Symbol error rate of square M-QAM over AWGN at per-symbol SNR `Es/N0`.
///
/// `M` must be an even power of two (4, 16, 64, …). The standard
/// nearest-neighbour expression
/// `P ≈ 4(1 − 1/√M)·Q(√(3·Es/N0/(M−1)))` (minus the corner double-count).
pub fn ser_mqam(m: usize, es_n0: f64) -> f64 {
    let sqrt_m = (m as f64).sqrt();
    assert!(
        m >= 4 && m.is_power_of_two() && sqrt_m.fract() == 0.0,
        "M must be a square power of two"
    );
    assert!(es_n0 >= 0.0, "SNR must be non-negative");
    let q = q_function((3.0 * es_n0 / (m as f64 - 1.0)).sqrt());
    let p_sqrt = 2.0 * (1.0 - 1.0 / sqrt_m) * q;
    (2.0 * p_sqrt - p_sqrt * p_sqrt).clamp(0.0, 1.0)
}

/// Approximate SER of star-8QAM using the generic nearest-neighbour union
/// bound `P ≈ N̄·Q(d_min/(2σ))`, with the average kissing number `N̄ = 2.5`
/// and `d_min` of the two-ring layout used in
/// [`crate::constellation::Constellation::qam8`].
pub fn ser_star8qam(es_n0: f64) -> f64 {
    assert!(es_n0 >= 0.0, "SNR must be non-negative");
    // d_min of the normalised two-ring star-8QAM (measured from geometry).
    const D_MIN: f64 = 0.8701;
    let sigma = (1.0 / (2.0 * es_n0)).sqrt();
    (2.5 * q_function(D_MIN / (2.0 * sigma))).min(1.0)
}

/// The per-symbol SNR (linear `Es/N0`) at which square M-QAM reaches a
/// target SER — inverted analytically through the Q-function.
pub fn required_es_n0_mqam(m: usize, target_ser: f64) -> f64 {
    assert!(target_ser > 0.0 && target_ser < 1.0);
    let sqrt_m = (m as f64).sqrt();
    // Invert P = 2p - p² for the per-axis error p, then p = 2(1-1/√M)Q(x).
    let p_axis = 1.0 - (1.0 - target_ser).sqrt();
    let q_target = p_axis / (2.0 * (1.0 - 1.0 / sqrt_m));
    let x = q_inverse(q_target);
    x * x * (m as f64 - 1.0) / 3.0
}

/// SNR gap (in dB) between 16QAM and QPSK at a given target SER — the
/// theoretical spacing between the 100 G and 200 G rungs of the ladder.
pub fn qam16_vs_qpsk_gap(target_ser: f64) -> Db {
    let qam16 = required_es_n0_mqam(16, target_ser);
    let qpsk = required_es_n0_mqam(4, target_ser);
    Db::from_linear(qam16 / qpsk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::{awgn_trial, Constellation};
    use rwc_util::rng::Xoshiro256;

    #[test]
    fn bpsk_known_point() {
        // BPSK at Es/N0 = 4 (6.02 dB): Q(sqrt(8)) ~ 2.339e-3.
        let ser = ser_mpsk(2, 4.0);
        assert!((ser - 2.339e-3).abs() < 2e-5, "ser={ser}");
    }

    #[test]
    fn qpsk_equals_4qam() {
        // QPSK and square 4-QAM are the same constellation; the two formulas
        // must agree closely.
        for &snr_db in &[6.0, 8.0, 10.0] {
            let es_n0 = Db(snr_db).to_linear();
            let psk = ser_mpsk(4, es_n0);
            let qam = ser_mqam(4, es_n0);
            assert!((psk / qam - 1.0).abs() < 0.05, "snr={snr_db} psk={psk} qam={qam}");
        }
    }

    #[test]
    fn ser_decreases_with_snr() {
        let mut last = 1.0;
        for snr_db in [0, 3, 6, 9, 12, 15, 18] {
            let ser = ser_mqam(16, Db(snr_db as f64).to_linear());
            assert!(ser < last, "snr={snr_db}");
            last = ser;
        }
    }

    #[test]
    fn monte_carlo_matches_theory_qpsk() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let snr = Db(9.0);
        let run = awgn_trial(&Constellation::qpsk(), snr, 400_000, &mut rng);
        let theory = ser_mpsk(4, snr.to_linear());
        assert!(
            (run.symbol_error_rate / theory - 1.0).abs() < 0.15,
            "mc={} theory={theory}",
            run.symbol_error_rate
        );
    }

    #[test]
    fn monte_carlo_matches_theory_16qam() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let snr = Db(14.0);
        let run = awgn_trial(&Constellation::qam16(), snr, 400_000, &mut rng);
        let theory = ser_mqam(16, snr.to_linear());
        assert!(
            (run.symbol_error_rate / theory - 1.0).abs() < 0.15,
            "mc={} theory={theory}",
            run.symbol_error_rate
        );
    }

    #[test]
    fn monte_carlo_matches_theory_star8qam() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let snr = Db(12.0);
        let run = awgn_trial(&Constellation::qam8(), snr, 400_000, &mut rng);
        let theory = ser_star8qam(snr.to_linear());
        // Union bound with an averaged kissing number: generous tolerance.
        assert!(
            (run.symbol_error_rate / theory - 1.0).abs() < 0.35,
            "mc={} theory={theory}",
            run.symbol_error_rate
        );
    }

    #[test]
    fn required_snr_inverts_ser() {
        for &target in &[1e-2, 1e-3, 1e-4] {
            let es_n0 = required_es_n0_mqam(16, target);
            let back = ser_mqam(16, es_n0);
            assert!((back / target - 1.0).abs() < 1e-3, "target={target} back={back}");
        }
    }

    #[test]
    fn ladder_spacing_matches_theory() {
        // At a pre-FEC target of ~2e-2, 16QAM needs ~5.5-7 dB more SNR than
        // QPSK. The paper's table spaces 200 G exactly 6 dB above 100 G
        // (12.5 vs 6.5), consistent with theory.
        let gap = qam16_vs_qpsk_gap(2e-2).value();
        assert!((5.0..8.0).contains(&gap), "gap={gap}");
    }

    #[test]
    #[should_panic]
    fn mqam_rejects_non_square() {
        ser_mqam(8, 10.0);
    }

    #[test]
    #[should_panic]
    fn mpsk_rejects_non_power_of_two() {
        ser_mpsk(3, 10.0);
    }
}
