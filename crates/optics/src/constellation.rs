//! Constellations, AWGN channels and EVM-based SNR estimation.
//!
//! The paper's Fig. 5 shows oscilloscope constellation diagrams of the
//! testbed running QPSK (100 G), 8QAM (150 G) and 16QAM (200 G). We replace
//! the oscilloscope with a simulated coherent channel: unit-energy symbol
//! sets, additive white Gaussian noise at a chosen SNR, minimum-distance
//! detection, and the error-vector-magnitude estimator real transceivers use
//! to report SNR (`SNR ≈ 1/EVM²`).
//!
//! Besides reproducing Fig. 5, this module closes the loop on the
//! modulation-threshold table: Monte-Carlo symbol error rates measured here
//! are checked against the closed-form predictions in [`crate::ber`].

use rwc_util::rng::Xoshiro256;
use rwc_util::units::Db;

/// A complex constellation point (in-phase, quadrature).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iq {
    /// In-phase component.
    pub i: f64,
    /// Quadrature component.
    pub q: f64,
}

impl Iq {
    /// Constructs a point.
    pub const fn new(i: f64, q: f64) -> Self {
        Self { i, q }
    }

    /// Squared Euclidean distance to another point.
    pub fn dist2(self, other: Iq) -> f64 {
        (self.i - other.i).powi(2) + (self.q - other.q).powi(2)
    }

    /// Symbol energy `|s|²`.
    pub fn energy(self) -> f64 {
        self.i * self.i + self.q * self.q
    }
}

/// A unit-average-energy symbol constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct Constellation {
    name: &'static str,
    points: Vec<Iq>,
}

impl Constellation {
    /// BPSK: two antipodal points.
    pub fn bpsk() -> Self {
        Self::normalised("BPSK", vec![Iq::new(1.0, 0.0), Iq::new(-1.0, 0.0)])
    }

    /// QPSK: four points on the unit circle (the paper's 100 G format).
    pub fn qpsk() -> Self {
        let a = std::f64::consts::FRAC_1_SQRT_2;
        Self::normalised(
            "QPSK",
            vec![Iq::new(a, a), Iq::new(-a, a), Iq::new(-a, -a), Iq::new(a, -a)],
        )
    }

    /// Star 8QAM: two QPSK rings with a 45° offset — the ring-ratio used by
    /// flex-rate coherent hardware (the paper's 150 G format).
    pub fn qam8() -> Self {
        let r1 = 1.0;
        let r2 = 1.932; // (1 + sqrt(3)) / sqrt(2), the classic star-8QAM ratio
        let mut pts = Vec::with_capacity(8);
        for k in 0..4 {
            let theta = std::f64::consts::FRAC_PI_2 * k as f64;
            pts.push(Iq::new(r1 * theta.cos(), r1 * theta.sin()));
            let theta2 = theta + std::f64::consts::FRAC_PI_4;
            pts.push(Iq::new(r2 * theta2.cos(), r2 * theta2.sin()));
        }
        Self::normalised("8QAM", pts)
    }

    /// Square 16QAM: a 4×4 grid (the paper's 200 G format).
    pub fn qam16() -> Self {
        let levels = [-3.0, -1.0, 1.0, 3.0];
        let mut pts = Vec::with_capacity(16);
        for &i in &levels {
            for &q in &levels {
                pts.push(Iq::new(i, q));
            }
        }
        Self::normalised("16QAM", pts)
    }

    /// The constellation used by a ladder format. Hybrid (quarter-step)
    /// rates interleave two formats in time; their diagrams are dominated by
    /// the denser format, which we return.
    pub fn for_modulation(m: crate::Modulation) -> Self {
        use crate::Modulation::*;
        match m {
            DpBpsk50 => Self::bpsk(),
            DpQpsk100 => Self::qpsk(),
            Hybrid125 => Self::qam8(),
            Dp8Qam150 => Self::qam8(),
            Hybrid175 => Self::qam16(),
            Dp16Qam200 => Self::qam16(),
        }
    }

    fn normalised(name: &'static str, mut points: Vec<Iq>) -> Self {
        let avg: f64 = points.iter().map(|p| p.energy()).sum::<f64>() / points.len() as f64;
        let scale = avg.sqrt().recip();
        for p in &mut points {
            p.i *= scale;
            p.q *= scale;
        }
        Self { name, points }
    }

    /// Human-readable format name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Constellation order `M`.
    pub fn order(&self) -> usize {
        self.points.len()
    }

    /// Bits per symbol, `log2(M)`.
    pub fn bits_per_symbol(&self) -> f64 {
        (self.points.len() as f64).log2()
    }

    /// The (unit-average-energy) symbol points.
    pub fn points(&self) -> &[Iq] {
        &self.points
    }

    /// Minimum Euclidean distance between distinct points — the quantity
    /// that sets noise tolerance and hence the SNR ladder spacing.
    pub fn min_distance(&self) -> f64 {
        let mut best = f64::INFINITY;
        for (a, pa) in self.points.iter().enumerate() {
            for pb in &self.points[a + 1..] {
                best = best.min(pa.dist2(*pb));
            }
        }
        best.sqrt()
    }

    /// Nearest-point (maximum-likelihood over AWGN) detection.
    pub fn detect(&self, rx: Iq) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (idx, p) in self.points.iter().enumerate() {
            let d = p.dist2(rx);
            if d < best_d {
                best_d = d;
                best = idx;
            }
        }
        best
    }
}

/// One transmitted/received symbol pair from an AWGN trial.
#[derive(Debug, Clone, Copy)]
pub struct SymbolSample {
    /// Index of the transmitted constellation point.
    pub tx_index: usize,
    /// The received (noisy) point.
    pub rx: Iq,
}

/// Result of an AWGN Monte-Carlo run: the received cloud plus quality
/// metrics — the simulated analogue of the paper's Fig. 5 screenshots.
#[derive(Debug, Clone)]
pub struct AwgnRun {
    /// Per-symbol samples (tx index + received point).
    pub samples: Vec<SymbolSample>,
    /// Fraction of symbols detected incorrectly.
    pub symbol_error_rate: f64,
    /// RMS error-vector magnitude, normalised to unit average symbol power.
    pub evm_rms: f64,
}

impl AwgnRun {
    /// The SNR a transceiver DSP would report from this run: `1 / EVM²`.
    pub fn estimated_snr(&self) -> Db {
        Db::from_linear(self.evm_rms.powi(-2))
    }
}

/// Transmits `n_symbols` uniformly random symbols through an AWGN channel at
/// the given per-symbol SNR (`Es/N0`) and detects them.
///
/// Noise is complex circular Gaussian with total variance `N0 = Es/snr`;
/// constellations here have `Es = 1`.
pub fn awgn_trial(
    constellation: &Constellation,
    snr: Db,
    n_symbols: usize,
    rng: &mut Xoshiro256,
) -> AwgnRun {
    assert!(n_symbols > 0, "need at least one symbol");
    let n0 = snr.to_linear().recip();
    let sigma = (n0 / 2.0).sqrt(); // per-dimension noise std-dev
    let mut samples = Vec::with_capacity(n_symbols);
    let mut errors = 0usize;
    let mut err_power = 0.0f64;
    for _ in 0..n_symbols {
        let tx_index = rng.below(constellation.order());
        let tx = constellation.points()[tx_index];
        let rx = Iq::new(tx.i + sigma * rng.standard_normal(), tx.q + sigma * rng.standard_normal());
        if constellation.detect(rx) != tx_index {
            errors += 1;
        }
        err_power += tx.dist2(rx);
        samples.push(SymbolSample { tx_index, rx });
    }
    AwgnRun {
        symbol_error_rate: errors as f64 / n_symbols as f64,
        evm_rms: (err_power / n_symbols as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<Constellation> {
        vec![
            Constellation::bpsk(),
            Constellation::qpsk(),
            Constellation::qam8(),
            Constellation::qam16(),
        ]
    }

    #[test]
    fn unit_average_energy() {
        for c in all() {
            let avg: f64 =
                c.points().iter().map(|p| p.energy()).sum::<f64>() / c.order() as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{}", c.name());
        }
    }

    #[test]
    fn orders_and_bits() {
        let orders: Vec<usize> = all().iter().map(|c| c.order()).collect();
        assert_eq!(orders, vec![2, 4, 8, 16]);
        assert_eq!(Constellation::qam16().bits_per_symbol(), 4.0);
    }

    #[test]
    fn min_distance_shrinks_with_density() {
        let d: Vec<f64> = all().iter().map(|c| c.min_distance()).collect();
        assert!(d[0] > d[1] && d[1] > d[2] && d[2] > d[3], "{d:?}");
    }

    #[test]
    fn detection_is_identity_without_noise() {
        for c in all() {
            for (idx, &p) in c.points().iter().enumerate() {
                assert_eq!(c.detect(p), idx, "{}", c.name());
            }
        }
    }

    #[test]
    fn high_snr_trial_is_error_free() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for c in all() {
            let run = awgn_trial(&c, Db(30.0), 5_000, &mut rng);
            assert_eq!(run.symbol_error_rate, 0.0, "{}", c.name());
        }
    }

    #[test]
    fn low_snr_trial_has_errors() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let run = awgn_trial(&Constellation::qam16(), Db(5.0), 20_000, &mut rng);
        assert!(run.symbol_error_rate > 0.05, "ser={}", run.symbol_error_rate);
    }

    #[test]
    fn denser_formats_err_more_at_equal_snr() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let snr = Db(10.0);
        let sers: Vec<f64> = all()
            .iter()
            .map(|c| awgn_trial(c, snr, 50_000, &mut rng).symbol_error_rate)
            .collect();
        assert!(sers[0] <= sers[1] && sers[1] < sers[2] && sers[2] < sers[3], "{sers:?}");
    }

    #[test]
    fn evm_estimator_recovers_snr() {
        // The transceiver-style EVM→SNR estimate should land within a
        // fraction of a dB of the true channel SNR.
        let mut rng = Xoshiro256::seed_from_u64(4);
        for &snr_db in &[8.0, 12.0, 18.0] {
            let run = awgn_trial(&Constellation::qpsk(), Db(snr_db), 100_000, &mut rng);
            let est = run.estimated_snr().value();
            assert!((est - snr_db).abs() < 0.3, "true={snr_db} est={est}");
        }
    }

    #[test]
    fn for_modulation_covers_ladder() {
        use crate::Modulation;
        assert_eq!(Constellation::for_modulation(Modulation::DpQpsk100).order(), 4);
        assert_eq!(Constellation::for_modulation(Modulation::Dp8Qam150).order(), 8);
        assert_eq!(Constellation::for_modulation(Modulation::Dp16Qam200).order(), 16);
        assert_eq!(Constellation::for_modulation(Modulation::DpBpsk50).order(), 2);
    }

    #[test]
    fn awgn_is_deterministic_per_seed() {
        let c = Constellation::qam8();
        let a = awgn_trial(&c, Db(12.0), 1_000, &mut Xoshiro256::seed_from_u64(9));
        let b = awgn_trial(&c, Db(12.0), 1_000, &mut Xoshiro256::seed_from_u64(9));
        assert_eq!(a.symbol_error_rate, b.symbol_error_rate);
        assert_eq!(a.evm_rms, b.evm_rms);
    }
}
