//! Forward-error-correction budgets.
//!
//! The SNR thresholds of the modulation ladder are not arbitrary: a rung
//! is usable exactly when the *pre-FEC* bit error rate stays below what
//! the transceiver's FEC can clean up. This module models the standard
//! coherent-era codes and derives each rung's required SNR from
//! communication theory — and the result lands within a fraction of a dB
//! of the paper-calibrated table — the consistency check the
//! `ladder_matches_sd_fec` test encodes.

use crate::ber::required_es_n0_mqam;
use crate::modulation::Modulation;
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// A FEC configuration: coding overhead and the pre-FEC BER it corrects
/// to effectively error-free output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FecCode {
    /// Human-readable name.
    pub name: &'static str,
    /// Coding overhead as a fraction of the information rate (0.20 =
    /// 20% extra symbols on the wire).
    pub overhead: f64,
    /// Maximum correctable pre-FEC bit error rate.
    pub pre_fec_ber: f64,
}

impl FecCode {
    /// Classic 6.7%-overhead hard-decision FEC (GFEC era).
    pub const HD_7: FecCode =
        FecCode { name: "HD-FEC 7%", overhead: 0.067, pre_fec_ber: 3.8e-3 };
    /// 20%-overhead soft-decision FEC — the workhorse of the paper's
    /// transceiver generation.
    pub const SD_20: FecCode =
        FecCode { name: "SD-FEC 20%", overhead: 0.20, pre_fec_ber: 2.0e-2 };
    /// Aggressive 25%-overhead soft-decision FEC.
    pub const SD_25: FecCode =
        FecCode { name: "SD-FEC 25%", overhead: 0.25, pre_fec_ber: 4.0e-2 };

    /// Line (gross) rate needed to deliver a given net information rate.
    pub fn gross_rate(&self, net_gbps: f64) -> f64 {
        assert!(net_gbps >= 0.0);
        net_gbps * (1.0 + self.overhead)
    }

    /// Net information rate delivered by a given line rate.
    pub fn net_rate(&self, gross_gbps: f64) -> f64 {
        assert!(gross_gbps >= 0.0);
        gross_gbps / (1.0 + self.overhead)
    }

    /// Theoretical SNR required for a modulation format to stay within
    /// this code's pre-FEC BER budget.
    ///
    /// Uses square-QAM formulas with Gray mapping (`BER ≈ SER / bits`);
    /// the hybrid quarter-step rates interpolate their neighbours in dB.
    pub fn required_snr(&self, m: Modulation) -> Db {
        match m {
            Modulation::Hybrid125 => self.interpolate(Modulation::DpQpsk100, Modulation::Dp8Qam150),
            Modulation::Hybrid175 => {
                self.interpolate(Modulation::Dp8Qam150, Modulation::Dp16Qam200)
            }
            pure => self.pure_required_snr(pure),
        }
    }

    fn pure_required_snr(&self, m: Modulation) -> Db {
        // Constellation order per polarisation and Gray bits per symbol.
        let (order, bits) = match m {
            Modulation::DpBpsk50 => (2usize, 1.0),
            Modulation::DpQpsk100 => (4, 2.0),
            Modulation::Dp8Qam150 => (8, 3.0),
            Modulation::Dp16Qam200 => (16, 4.0),
            Modulation::Hybrid125 | Modulation::Hybrid175 => unreachable!("handled above"),
        };
        let target_ser = (self.pre_fec_ber * bits).min(0.45);
        let es_n0 = match order {
            // BPSK: SER = Q(sqrt(2·Es/N0)); invert directly.
            2 => {
                let x = rwc_util::special::q_inverse(target_ser);
                x * x / 2.0
            }
            4 | 16 => required_es_n0_mqam(order, target_ser),
            // Star-8QAM: invert the union bound P = 2.5·Q(d/2σ) with the
            // normalised d_min of our two-ring layout.
            8 => {
                let q_target = (target_ser / 2.5).min(0.49);
                let x = rwc_util::special::q_inverse(q_target);
                const D_MIN: f64 = 0.8701;
                2.0 * (x / D_MIN).powi(2)
            }
            _ => unreachable!(),
        };
        Db::from_linear(es_n0)
    }

    fn interpolate(&self, lo: Modulation, hi: Modulation) -> Db {
        let a = self.pure_required_snr(lo).value();
        let b = self.pure_required_snr(hi).value();
        Db((a + b) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_accounting_round_trip() {
        let fec = FecCode::SD_20;
        let gross = fec.gross_rate(100.0);
        assert!((gross - 120.0).abs() < 1e-9);
        assert!((fec.net_rate(gross) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_fec_needs_less_snr() {
        for m in [Modulation::DpQpsk100, Modulation::Dp16Qam200] {
            let hd = FecCode::HD_7.required_snr(m);
            let sd20 = FecCode::SD_20.required_snr(m);
            let sd25 = FecCode::SD_25.required_snr(m);
            assert!(hd > sd20, "{m}: {hd} vs {sd20}");
            assert!(sd20 > sd25, "{m}: {sd20} vs {sd25}");
        }
    }

    #[test]
    fn denser_formats_need_more_snr() {
        let fec = FecCode::SD_20;
        let ladder: Vec<f64> = Modulation::LADDER
            .iter()
            .map(|&m| fec.required_snr(m).value())
            .collect();
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1], "{ladder:?}");
        }
    }

    /// The headline consistency check: the paper-calibrated threshold
    /// table is what a 20% SD-FEC implies from first principles, to
    /// within ~1 dB at every pure rung.
    #[test]
    fn ladder_matches_sd_fec() {
        let fec = FecCode::SD_20;
        for m in [
            Modulation::DpQpsk100,
            Modulation::Dp16Qam200,
            Modulation::Hybrid125,
            Modulation::Hybrid175,
        ] {
            let theory = fec.required_snr(m).value();
            let table = m.required_snr().value();
            assert!(
                (theory - table).abs() < 1.2,
                "{m}: theory {theory:.2} dB vs table {table:.2} dB"
            );
        }
        // The anchors the paper states outright.
        let qpsk = fec.required_snr(Modulation::DpQpsk100).value();
        assert!((qpsk - 6.5).abs() < 0.5, "100 G anchor: {qpsk:.2}");
        let qam16 = fec.required_snr(Modulation::Dp16Qam200).value();
        assert!((qam16 - 12.5).abs() < 0.5, "200 G anchor: {qam16:.2}");
    }

    #[test]
    fn hybrids_sit_between_neighbours() {
        let fec = FecCode::SD_20;
        let q100 = fec.required_snr(Modulation::DpQpsk100);
        let h125 = fec.required_snr(Modulation::Hybrid125);
        let q150 = fec.required_snr(Modulation::Dp8Qam150);
        assert!(q100 < h125 && h125 < q150);
    }
}
