//! # rwc-optics
//!
//! Physical-layer substrate for the *Run, Walk, Crawl* reproduction: the
//! optical concepts the paper measures and programs against.
//!
//! - [`modulation`]: the capacity ladder (50–200 Gbps) and its SNR
//!   thresholds — the dashed horizontal lines of the paper's Fig. 1 and the
//!   basis of every feasible-capacity computation.
//! - [`snr`]: SNR/OSNR conversions and margin helpers on top of
//!   [`rwc_util::units::Db`].
//! - [`link_budget`]: a span/EDFA link-budget model producing a baseline SNR
//!   from fiber length and amplifier noise — the physical grounding for the
//!   synthetic telemetry in `rwc-telemetry`.
//! - [`constellation`]: QPSK/8QAM/16QAM symbol sets, an AWGN channel and
//!   EVM-based SNR estimation (the paper's Fig. 5 testbed measurement).
//! - [`ber`]: closed-form symbol-error-rate models used to validate the
//!   threshold table against communication theory.
//! - [`bvt`]: a bandwidth-variable transceiver state machine with an
//!   MDIO-style register interface and the two reconfiguration procedures
//!   the paper compares in Fig. 6b (legacy ≈ 68 s vs efficient ≈ 35 ms).
//! - [`wavelength`]: the DWDM channel grid mapping wavelengths to IP links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod bvt;
pub mod constellation;
pub mod fec;
pub mod link_budget;
pub mod modulation;
pub mod qfactor;
pub mod snr;
pub mod wavelength;

pub use bvt::{Bvt, ReconfigProcedure, ReconfigReport};
pub use link_budget::LinkBudget;
pub use modulation::{Modulation, ModulationTable};
pub use rwc_util::units::{Db, Gbps};
