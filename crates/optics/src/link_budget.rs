//! Span/EDFA link-budget model.
//!
//! Produces a *baseline* SNR for a wavelength from first-order physics:
//! a route is a chain of fiber spans, each span attenuates the signal and is
//! followed by an EDFA that restores the power while adding amplified
//! spontaneous emission (ASE) noise. With N identical spans the ASE
//! accumulates linearly, so OSNR drops by `10·log10(N)` relative to a single
//! span. We use the standard engineering form
//!
//! ```text
//! OSNR[dB] ≈ 58 + P_launch[dBm] − span_loss[dB] − NF[dB] − 10·log10(N)
//! ```
//!
//! (58 dB absorbs h·ν·B_ref at 1550 nm / 12.5 GHz) plus an optional
//! nonlinear-interference penalty that grows with launch power, giving the
//! familiar power-vs-OSNR hump.
//!
//! This is the physical grounding for `rwc-telemetry`'s synthetic traces:
//! link length (span count) determines the baseline SNR a wavelength sits
//! at, which in turn determines its feasible capacity — exactly the chain of
//! reasoning behind the paper's Fig. 2b.

use crate::snr::osnr_to_snr;
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// Parameters of one amplified optical line system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Length of each span in km.
    pub span_km: f64,
    /// Number of spans (EDFA hops) on the route.
    pub n_spans: u32,
    /// Per-channel launch power into each span, dBm.
    pub launch_dbm: f64,
    /// Fiber attenuation in dB/km (≈0.20 for modern SMF-28).
    pub attenuation_db_per_km: f64,
    /// EDFA noise figure in dB (typically 4.5–6).
    pub noise_figure_db: f64,
    /// Symbol rate used when converting OSNR to electrical SNR (GBd).
    pub baud_gbd: f64,
    /// Nonlinear-interference coefficient: dB of SNR penalty per dB of
    /// launch power above the 0 dBm reference, squared (set 0 to disable).
    pub nli_coeff: f64,
    /// Lumped implementation penalty (connectors, filtering, transceiver
    /// back-to-back), dB.
    pub implementation_penalty_db: f64,
}

impl LinkBudget {
    /// 58 dB ≈ −10·log10(h·ν·B_ref) − 30 at 1550 nm over 12.5 GHz: the
    /// constant in the engineering OSNR formula.
    pub const OSNR_CONSTANT_DB: f64 = 58.0;

    /// A typical terrestrial long-haul system: 80 km spans, 0 dBm launch,
    /// 0.2 dB/km fiber, 5.5 dB NF amplifiers, 32 GBd transceivers, mild
    /// nonlinearity and a 6 dB lumped implementation penalty (transceiver
    /// back-to-back, ROADM filtering cascade, PDL and aging allowances —
    /// sized so that reach-vs-rate crossovers land where the paper's
    /// threshold table puts them).
    pub fn terrestrial(n_spans: u32) -> Self {
        Self {
            span_km: 80.0,
            n_spans,
            launch_dbm: 0.0,
            attenuation_db_per_km: 0.20,
            noise_figure_db: 5.5,
            baud_gbd: crate::snr::DEFAULT_BAUD_GBD,
            nli_coeff: 0.15,
            implementation_penalty_db: 6.0,
        }
    }

    /// Builds the budget for a route of the given total length, using
    /// 80 km spans (rounded up, minimum one span).
    pub fn for_route_km(total_km: f64) -> Self {
        assert!(total_km > 0.0, "route length must be positive");
        let spans = (total_km / 80.0).ceil().max(1.0) as u32;
        Self::terrestrial(spans)
    }

    /// Loss of a single span, dB.
    pub fn span_loss_db(&self) -> f64 {
        self.span_km * self.attenuation_db_per_km
    }

    /// Total route length, km.
    pub fn route_km(&self) -> f64 {
        self.span_km * self.n_spans as f64
    }

    /// ASE-limited OSNR over the 0.1 nm reference bandwidth.
    pub fn osnr(&self) -> Db {
        assert!(self.n_spans > 0, "a route needs at least one span");
        Db(Self::OSNR_CONSTANT_DB + self.launch_dbm
            - self.span_loss_db()
            - self.noise_figure_db
            - 10.0 * (self.n_spans as f64).log10())
    }

    /// Electrical SNR after OSNR conversion, nonlinear penalty and
    /// implementation penalty — the number the paper's telemetry reports.
    pub fn snr(&self) -> Db {
        let linear = osnr_to_snr(self.osnr(), self.baud_gbd);
        let nli_penalty = self.nli_coeff * self.launch_dbm.max(0.0).powi(2);
        linear - Db(nli_penalty) - Db(self.implementation_penalty_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::ModulationTable;

    #[test]
    fn doubling_spans_costs_three_db_of_osnr() {
        let short = LinkBudget::terrestrial(4);
        let long = LinkBudget::terrestrial(8);
        let delta = short.osnr() - long.osnr();
        assert!((delta.value() - 10.0 * 2f64.log10()).abs() < 1e-9, "delta={delta}");
    }

    #[test]
    fn longer_routes_have_lower_snr() {
        let mut last = f64::INFINITY;
        for spans in [1, 2, 5, 10, 20, 40] {
            let snr = LinkBudget::terrestrial(spans).snr().value();
            assert!(snr < last, "spans={spans} snr={snr}");
            last = snr;
        }
    }

    #[test]
    fn metro_route_supports_200g() {
        // A short metro route (~160 km) should sit comfortably above the
        // 12.5 dB threshold for 200 G.
        let snr = LinkBudget::for_route_km(160.0).snr();
        assert!(
            ModulationTable::paper_default().supports(snr, crate::Modulation::Dp16Qam200),
            "snr={snr}"
        );
    }

    #[test]
    fn transcontinental_route_still_carries_100g() {
        // ~4000 km (50 spans): the default fleet rate of 100 G must hold —
        // this mirrors the paper's fleet where every link sustains 100 G.
        let snr = LinkBudget::for_route_km(4000.0).snr();
        let table = ModulationTable::paper_default();
        assert!(table.supports(snr, crate::Modulation::DpQpsk100), "snr={snr}");
        // ...but 200 G should NOT be feasible at that reach.
        assert!(!table.supports(snr, crate::Modulation::Dp16Qam200), "snr={snr}");
    }

    #[test]
    fn for_route_rounds_spans_up() {
        assert_eq!(LinkBudget::for_route_km(81.0).n_spans, 2);
        assert_eq!(LinkBudget::for_route_km(80.0).n_spans, 1);
        assert_eq!(LinkBudget::for_route_km(1.0).n_spans, 1);
    }

    #[test]
    fn launch_power_hump() {
        // SNR should rise with launch power in the ASE-limited regime, then
        // fall once nonlinearity dominates — the classic optimum.
        let snr_at = |p: f64| {
            let mut b = LinkBudget::terrestrial(10);
            b.launch_dbm = p;
            b.snr().value()
        };
        assert!(snr_at(1.0) > snr_at(-3.0), "ASE-limited side");
        assert!(snr_at(8.0) < snr_at(1.0), "NLI-limited side");
    }

    #[test]
    fn span_loss_and_length() {
        let b = LinkBudget::terrestrial(12);
        assert!((b.span_loss_db() - 16.0).abs() < 1e-12);
        assert!((b.route_km() - 960.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_spans_rejected() {
        LinkBudget::terrestrial(0).osnr();
    }
}
