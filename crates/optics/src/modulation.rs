//! The modulation / capacity ladder and its SNR thresholds.
//!
//! The paper's hardware exposes five capacity denominations above the legacy
//! rate — 100, 125, 150, 175 and 200 Gbps — plus a 50 Gbps fallback
//! (§2.2 notes 3.0 dB suffices for 50 Gbps). Each rate has a *required SNR*
//! below which the receiver cannot hold the target pre-FEC error rate and
//! the link is declared down.
//!
//! The 6.5 dB (100 G) and 3.0 dB (50 G) anchors are stated in the paper; the
//! intermediate thresholds follow the ~1.5 dB-per-25-Gbps spacing the ladder
//! implies and are validated against closed-form symbol-error-rate models in
//! [`crate::ber`]. The paper stresses the thresholds are hardware-specific;
//! [`ModulationTable`] therefore accepts custom ladders.

use rwc_util::units::{Db, Gbps};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A modulation format / capacity step of the BVT ladder.
///
/// Dual-polarisation coherent formats; the 125 and 175 Gbps steps are
/// time-interleaved hybrids of the neighbouring pure formats, which is how
/// flex-rate transceivers of the paper's era realised quarter-steps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Modulation {
    /// DP-BPSK, 50 Gbps — the paper's "crawl" fallback rate.
    DpBpsk50,
    /// DP-QPSK, 100 Gbps — the fleet-wide static default.
    DpQpsk100,
    /// QPSK/8QAM hybrid, 125 Gbps.
    Hybrid125,
    /// DP-8QAM, 150 Gbps.
    Dp8Qam150,
    /// 8QAM/16QAM hybrid, 175 Gbps.
    Hybrid175,
    /// DP-16QAM, 200 Gbps — the "run" rate.
    Dp16Qam200,
}

impl Modulation {
    /// All formats, slowest to fastest.
    pub const LADDER: [Modulation; 6] = [
        Modulation::DpBpsk50,
        Modulation::DpQpsk100,
        Modulation::Hybrid125,
        Modulation::Dp8Qam150,
        Modulation::Hybrid175,
        Modulation::Dp16Qam200,
    ];

    /// Line rate carried at this format.
    pub const fn capacity(self) -> Gbps {
        match self {
            Modulation::DpBpsk50 => Gbps(50.0),
            Modulation::DpQpsk100 => Gbps(100.0),
            Modulation::Hybrid125 => Gbps(125.0),
            Modulation::Dp8Qam150 => Gbps(150.0),
            Modulation::Hybrid175 => Gbps(175.0),
            Modulation::Dp16Qam200 => Gbps(200.0),
        }
    }

    /// Minimum SNR at which the receiver sustains this rate (the paper's
    /// dashed thresholds; defaults per the DESIGN.md calibration table).
    pub const fn required_snr(self) -> Db {
        match self {
            Modulation::DpBpsk50 => Db(3.0),
            Modulation::DpQpsk100 => Db(6.5),
            Modulation::Hybrid125 => Db(8.0),
            Modulation::Dp8Qam150 => Db(9.5),
            Modulation::Hybrid175 => Db(11.0),
            Modulation::Dp16Qam200 => Db(12.5),
        }
    }

    /// Information bits per (dual-polarisation) symbol.
    ///
    /// Hybrids alternate between neighbouring formats, so they carry the
    /// average of the neighbours' bit loads.
    pub const fn bits_per_symbol(self) -> f64 {
        match self {
            Modulation::DpBpsk50 => 2.0,
            Modulation::DpQpsk100 => 4.0,
            Modulation::Hybrid125 => 5.0,
            Modulation::Dp8Qam150 => 6.0,
            Modulation::Hybrid175 => 7.0,
            Modulation::Dp16Qam200 => 8.0,
        }
    }

    /// Next step up the ladder, if any.
    pub fn step_up(self) -> Option<Modulation> {
        let idx = Self::LADDER.iter().position(|&m| m == self).unwrap();
        Self::LADDER.get(idx + 1).copied()
    }

    /// Next step down the ladder, if any.
    pub fn step_down(self) -> Option<Modulation> {
        let idx = Self::LADDER.iter().position(|&m| m == self).unwrap();
        idx.checked_sub(1).map(|i| Self::LADDER[i])
    }

    /// The format carrying exactly this capacity, if it is on the ladder.
    pub fn for_capacity(capacity: Gbps) -> Option<Modulation> {
        Self::LADDER.iter().copied().find(|m| m.capacity() == capacity)
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Modulation::DpBpsk50 => "DP-BPSK (50G)",
            Modulation::DpQpsk100 => "DP-QPSK (100G)",
            Modulation::Hybrid125 => "QPSK/8QAM (125G)",
            Modulation::Dp8Qam150 => "DP-8QAM (150G)",
            Modulation::Hybrid175 => "8QAM/16QAM (175G)",
            Modulation::Dp16Qam200 => "DP-16QAM (200G)",
        };
        f.write_str(name)
    }
}

/// A hardware-specific modulation ladder: formats paired with *operating*
/// SNR thresholds.
///
/// The paper computes feasibility against thresholds "specific to our
/// hardware, fiber length, fiber type, and wavelength"; a table lets
/// operators express exactly that, including guard margins on top of the
/// bare receiver requirements.
///
/// ```
/// use rwc_optics::{Modulation, ModulationTable};
/// use rwc_util::units::Db;
///
/// let table = ModulationTable::paper_default();
/// // 12.8 dB clears every rung; the fastest wins.
/// assert_eq!(table.feasible(Db(12.8)), Some(Modulation::Dp16Qam200));
/// // Below 3 dB nothing holds: the link is down.
/// assert_eq!(table.feasible(Db(2.0)), None);
/// // A conservative operator adds a guard margin to every threshold.
/// let guarded = ModulationTable::with_margin(Db(1.0));
/// assert_eq!(guarded.feasible(Db(12.8)), Some(Modulation::Hybrid175));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModulationTable {
    /// `(format, operating threshold)`, sorted by ascending capacity.
    entries: Vec<(Modulation, Db)>,
}

impl ModulationTable {
    /// The paper's ladder with its published/derived thresholds and no
    /// extra margin.
    pub fn paper_default() -> Self {
        Self {
            entries: Modulation::LADDER
                .iter()
                .map(|&m| (m, m.required_snr()))
                .collect(),
        }
    }

    /// The paper's ladder with a uniform guard margin added to every
    /// threshold (conservative-operator mode).
    pub fn with_margin(margin: Db) -> Self {
        assert!(margin.value() >= 0.0, "guard margin must be non-negative");
        Self {
            entries: Modulation::LADDER
                .iter()
                .map(|&m| (m, m.required_snr() + margin))
                .collect(),
        }
    }

    /// A custom ladder. Entries must be non-empty, strictly increasing in
    /// both capacity and threshold (a faster format never needs less SNR).
    pub fn custom(entries: Vec<(Modulation, Db)>) -> Self {
        assert!(!entries.is_empty(), "empty modulation table");
        for pair in entries.windows(2) {
            assert!(
                pair[0].0.capacity() < pair[1].0.capacity(),
                "table must be sorted by ascending capacity"
            );
            assert!(
                pair[0].1 < pair[1].1,
                "thresholds must increase with capacity"
            );
        }
        Self { entries }
    }

    /// All `(format, threshold)` entries, ascending capacity.
    pub fn entries(&self) -> &[(Modulation, Db)] {
        &self.entries
    }

    /// Operating threshold for a format, if present in this table.
    pub fn threshold(&self, m: Modulation) -> Option<Db> {
        self.entries.iter().find(|(f, _)| *f == m).map(|&(_, t)| t)
    }

    /// The fastest format feasible at the given SNR, or `None` if even the
    /// slowest rate is infeasible (the link is down).
    pub fn feasible(&self, snr: Db) -> Option<Modulation> {
        self.entries
            .iter()
            .rev()
            .find(|&&(_, threshold)| snr >= threshold)
            .map(|&(m, _)| m)
    }

    /// Feasible *capacity* at the given SNR (`0` if the link would be down).
    pub fn feasible_capacity(&self, snr: Db) -> Gbps {
        self.feasible(snr).map_or(Gbps::ZERO, Modulation::capacity)
    }

    /// Whether a link at `snr` can sustain format `m` per this table.
    pub fn supports(&self, snr: Db, m: Modulation) -> bool {
        self.threshold(m).is_some_and(|t| snr >= t)
    }

    /// SNR margin of a link at `snr` operating at format `m`
    /// (negative = the link is below threshold, i.e. down at that rate).
    pub fn margin(&self, snr: Db, m: Modulation) -> Option<Db> {
        self.threshold(m).map(|t| snr - t)
    }

    /// Formats whose capacity strictly exceeds `current` and which are
    /// feasible at `snr` — the upgrade candidates Algorithm 1 turns into
    /// fake links.
    pub fn upgrades(&self, snr: Db, current: Modulation) -> Vec<Modulation> {
        self.entries
            .iter()
            .filter(|&&(m, t)| m.capacity() > current.capacity() && snr >= t)
            .map(|&(m, _)| m)
            .collect()
    }

    /// The slowest format in the table (the "crawl" rate).
    pub fn slowest(&self) -> Modulation {
        self.entries[0].0
    }

    /// The fastest format in the table (the "run" rate).
    pub fn fastest(&self) -> Modulation {
        self.entries.last().unwrap().0
    }
}

impl Default for ModulationTable {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_sorted_and_consistent() {
        for pair in Modulation::LADDER.windows(2) {
            assert!(pair[0].capacity() < pair[1].capacity());
            assert!(pair[0].required_snr() < pair[1].required_snr());
            assert!(pair[0].bits_per_symbol() < pair[1].bits_per_symbol());
        }
    }

    #[test]
    fn paper_anchor_thresholds() {
        // Both values are stated explicitly in the paper.
        assert_eq!(Modulation::DpQpsk100.required_snr(), Db(6.5));
        assert_eq!(Modulation::DpBpsk50.required_snr(), Db(3.0));
    }

    #[test]
    fn capacity_scales_with_bits() {
        for m in Modulation::LADDER {
            // 25 Gbps per bit/symbol at fixed baud: capacity ∝ bit load.
            assert_eq!(m.capacity().value(), m.bits_per_symbol() * 25.0);
        }
    }

    #[test]
    fn step_up_down_navigation() {
        assert_eq!(Modulation::DpQpsk100.step_up(), Some(Modulation::Hybrid125));
        assert_eq!(Modulation::DpQpsk100.step_down(), Some(Modulation::DpBpsk50));
        assert_eq!(Modulation::Dp16Qam200.step_up(), None);
        assert_eq!(Modulation::DpBpsk50.step_down(), None);
    }

    #[test]
    fn for_capacity_round_trip() {
        for m in Modulation::LADDER {
            assert_eq!(Modulation::for_capacity(m.capacity()), Some(m));
        }
        assert_eq!(Modulation::for_capacity(Gbps(110.0)), None);
    }

    #[test]
    fn feasible_picks_fastest_supported() {
        let table = ModulationTable::paper_default();
        assert_eq!(table.feasible(Db(12.8)), Some(Modulation::Dp16Qam200));
        assert_eq!(table.feasible(Db(12.4)), Some(Modulation::Hybrid175));
        assert_eq!(table.feasible(Db(6.5)), Some(Modulation::DpQpsk100));
        assert_eq!(table.feasible(Db(3.05)), Some(Modulation::DpBpsk50));
        assert_eq!(table.feasible(Db(2.9)), None);
        assert_eq!(table.feasible(Db(f64::NEG_INFINITY)), None);
    }

    #[test]
    fn feasible_capacity_zero_when_down() {
        let table = ModulationTable::paper_default();
        assert_eq!(table.feasible_capacity(Db(1.0)), Gbps::ZERO);
        assert_eq!(table.feasible_capacity(Db(9.6)), Gbps(150.0));
    }

    #[test]
    fn margin_sign() {
        let table = ModulationTable::paper_default();
        let m = table.margin(Db(8.0), Modulation::DpQpsk100).unwrap();
        assert_eq!(m, Db(1.5));
        let m = table.margin(Db(5.0), Modulation::DpQpsk100).unwrap();
        assert_eq!(m, Db(-1.5));
        assert!(!table.supports(Db(5.0), Modulation::DpQpsk100));
        assert!(table.supports(Db(8.0), Modulation::DpQpsk100));
    }

    #[test]
    fn upgrades_lists_feasible_faster_formats() {
        let table = ModulationTable::paper_default();
        let ups = table.upgrades(Db(11.2), Modulation::DpQpsk100);
        assert_eq!(
            ups,
            vec![Modulation::Hybrid125, Modulation::Dp8Qam150, Modulation::Hybrid175]
        );
        assert!(table.upgrades(Db(5.0), Modulation::DpQpsk100).is_empty());
        assert!(table.upgrades(Db(20.0), Modulation::Dp16Qam200).is_empty());
    }

    #[test]
    fn margin_table_shifts_thresholds() {
        let table = ModulationTable::with_margin(Db(1.0));
        // 12.8 dB clears 200 G at zero margin but not with a 1 dB guard.
        assert_eq!(table.feasible(Db(12.8)), Some(Modulation::Hybrid175));
        assert_eq!(table.threshold(Modulation::DpQpsk100), Some(Db(7.5)));
    }

    #[test]
    fn slowest_and_fastest() {
        let table = ModulationTable::paper_default();
        assert_eq!(table.slowest(), Modulation::DpBpsk50);
        assert_eq!(table.fastest(), Modulation::Dp16Qam200);
    }

    #[test]
    fn custom_table_subset() {
        // An operator that only licensed three rates.
        let table = ModulationTable::custom(vec![
            (Modulation::DpQpsk100, Db(7.0)),
            (Modulation::Dp8Qam150, Db(10.0)),
            (Modulation::Dp16Qam200, Db(13.0)),
        ]);
        assert_eq!(table.feasible(Db(9.0)), Some(Modulation::DpQpsk100));
        assert_eq!(table.threshold(Modulation::Hybrid125), None);
        assert_eq!(table.slowest(), Modulation::DpQpsk100);
    }

    #[test]
    #[should_panic]
    fn custom_table_rejects_nonmonotone_thresholds() {
        ModulationTable::custom(vec![
            (Modulation::DpQpsk100, Db(7.0)),
            (Modulation::Dp8Qam150, Db(6.0)),
        ]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::DpQpsk100.to_string(), "DP-QPSK (100G)");
        assert_eq!(Modulation::Dp16Qam200.to_string(), "DP-16QAM (200G)");
    }

    #[test]
    fn serde_round_trip() {
        let table = ModulationTable::paper_default();
        let json = serde_json::to_string(&table).unwrap();
        let back: ModulationTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table, back);
    }
}
