//! Q-factor conversions.
//!
//! Operator tooling of the paper's era (and its companion studies, e.g.
//! Ghobadi et al.'s Q-factor analysis of the same backbone) reports signal
//! quality as a Q-factor rather than an SNR. The standard relations for a
//! binary decision channel are
//!
//! ```text
//! BER = ½·erfc(Q/√2)        Q_dB = 20·log10(Q)
//! ```
//!
//! so telemetry given in Q dB can be folded into the same pipelines. Note
//! the 20 (amplitude) rather than 10 (power) scale factor — a classic
//! source of unit bugs this module exists to contain.

use rwc_util::special::{erfc, q_inverse};
use rwc_util::units::Db;

/// A linear Q-factor (amplitude ratio).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct QFactor(pub f64);

impl QFactor {
    /// Builds from a Q value in dB (`Q_dB = 20·log10(Q)`).
    pub fn from_db(q_db: Db) -> Self {
        Self(10f64.powf(q_db.value() / 20.0))
    }

    /// The Q value in dB.
    pub fn to_db(self) -> Db {
        assert!(self.0 > 0.0, "Q must be positive");
        Db(20.0 * self.0.log10())
    }

    /// Pre-FEC bit error rate of a binary channel at this Q.
    pub fn ber(self) -> f64 {
        0.5 * erfc(self.0 / std::f64::consts::SQRT_2)
    }

    /// The Q-factor needed to hit a target BER.
    pub fn for_ber(ber: f64) -> Self {
        assert!(ber > 0.0 && ber < 0.5, "BER out of (0, 0.5): {ber}");
        // BER = Q_func(Q)  ⇒  Q = Q_func⁻¹(BER).
        Self(q_inverse(ber))
    }

    /// Equivalent electrical SNR of a BPSK decision at this Q:
    /// `SNR = Q²` in linear terms.
    pub fn equivalent_snr(self) -> Db {
        Db::from_linear(self.0 * self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for &db in &[3.0, 9.8, 15.6] {
            let q = QFactor::from_db(Db(db));
            assert!((q.to_db().value() - db).abs() < 1e-10, "{db}");
        }
    }

    #[test]
    fn textbook_operating_point() {
        // Q = 6 (15.56 dB) ↔ BER ≈ 1e-9: the classic pre-FEC benchmark.
        let q = QFactor(6.0);
        assert!((q.to_db().value() - 15.563).abs() < 0.01);
        let ber = q.ber();
        assert!((ber / 1e-9 - 1.0).abs() < 0.05, "ber={ber:e}");
    }

    #[test]
    fn for_ber_inverts_ber() {
        for &target in &[1e-3, 1e-6, 1e-9] {
            let q = QFactor::for_ber(target);
            assert!((q.ber() / target - 1.0).abs() < 1e-2, "{target}");
        }
    }

    #[test]
    fn higher_q_means_lower_ber() {
        assert!(QFactor(7.0).ber() < QFactor(6.0).ber());
        assert!(QFactor(6.0).ber() < QFactor(3.0).ber());
    }

    #[test]
    fn equivalent_snr_square_law() {
        // Q = 6 → SNR = 36 → 15.56 dB... in *power* terms 10·log10(36)
        // = 15.56 dB: for BPSK the dB values coincide (that is the point
        // of the 20-vs-10 convention).
        let q = QFactor(6.0);
        assert!((q.equivalent_snr().value() - q.to_db().value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_silly_ber() {
        QFactor::for_ber(0.7);
    }
}
