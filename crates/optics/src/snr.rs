//! SNR / OSNR conversions and operating-margin helpers.
//!
//! The paper reports link quality as an electrical SNR; optical equipment
//! more often reports OSNR over the conventional 0.1 nm (12.5 GHz) reference
//! bandwidth. The two differ by the ratio of symbol rate to reference
//! bandwidth, so converting is a one-line log-domain shift — but one that is
//! easy to get backwards, hence these named helpers.

use rwc_util::units::Db;

/// The conventional OSNR reference bandwidth: 0.1 nm at 1550 nm ≈ 12.5 GHz.
pub const OSNR_REF_BANDWIDTH_GHZ: f64 = 12.5;

/// The symbol rate of the paper-era coherent transceivers (GBd). All ladder
/// rates run at the same baud; capacity changes come from bit loading.
pub const DEFAULT_BAUD_GBD: f64 = 32.0;

/// Converts OSNR (0.1 nm reference) to electrical SNR at the given symbol
/// rate: `SNR = OSNR - 10·log10(baud / 12.5 GHz)`.
pub fn osnr_to_snr(osnr: Db, baud_gbd: f64) -> Db {
    assert!(baud_gbd > 0.0, "symbol rate must be positive");
    osnr - Db(10.0 * (baud_gbd / OSNR_REF_BANDWIDTH_GHZ).log10())
}

/// Converts electrical SNR back to OSNR (0.1 nm reference).
pub fn snr_to_osnr(snr: Db, baud_gbd: f64) -> Db {
    assert!(baud_gbd > 0.0, "symbol rate must be positive");
    snr + Db(10.0 * (baud_gbd / OSNR_REF_BANDWIDTH_GHZ).log10())
}

/// Headroom between a measured SNR and a threshold. Positive = above
/// threshold.
pub fn margin(snr: Db, threshold: Db) -> Db {
    snr - threshold
}

/// True if `snr` sits within `guard` of `threshold` on either side — the
/// flapping-risk zone the run/walk/crawl controller treats with hysteresis.
pub fn in_guard_band(snr: Db, threshold: Db, guard: Db) -> bool {
    assert!(guard.value() >= 0.0, "guard must be non-negative");
    snr.abs_diff(threshold) <= guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osnr_snr_round_trip() {
        for &baud in &[28.0, 32.0, 64.0] {
            let snr = Db(12.5);
            let osnr = snr_to_osnr(snr, baud);
            let back = osnr_to_snr(osnr, baud);
            assert!((back.value() - snr.value()).abs() < 1e-12, "baud={baud}");
        }
    }

    #[test]
    fn osnr_exceeds_snr_at_wideband_rates() {
        // At 32 GBd the signal bandwidth exceeds the 12.5 GHz reference, so
        // OSNR reads higher than SNR by 10·log10(32/12.5) ≈ 4.08 dB.
        let snr = Db(6.5);
        let osnr = snr_to_osnr(snr, DEFAULT_BAUD_GBD);
        assert!((osnr.value() - 10.58).abs() < 0.01, "osnr={osnr}");
    }

    #[test]
    fn reference_baud_is_identity() {
        let snr = Db(9.0);
        assert_eq!(osnr_to_snr(snr, OSNR_REF_BANDWIDTH_GHZ), snr);
    }

    #[test]
    fn margin_sign_convention() {
        assert_eq!(margin(Db(8.0), Db(6.5)), Db(1.5));
        assert_eq!(margin(Db(5.0), Db(6.5)), Db(-1.5));
    }

    #[test]
    fn guard_band_membership() {
        assert!(in_guard_band(Db(6.9), Db(6.5), Db(0.5)));
        assert!(in_guard_band(Db(6.1), Db(6.5), Db(0.5)));
        assert!(!in_guard_band(Db(7.5), Db(6.5), Db(0.5)));
        assert!(in_guard_band(Db(6.5), Db(6.5), Db(0.0)));
    }
}
