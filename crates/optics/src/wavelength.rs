//! DWDM channel grid.
//!
//! The paper's Fig. 1 shows 40 optical wavelengths riding one wide-area
//! fiber cable, each wavelength being one IP link (the paper assumes a
//! one-to-one wavelength↔IP-link mapping and so do we). This module models
//! the ITU-T G.694.1 fixed 50 GHz C-band grid those wavelengths sit on and
//! assigns channels to links on a fiber.

use serde::{Deserialize, Serialize};

/// Speed of light, m/s.
const C_M_PER_S: f64 = 299_792_458.0;

/// The ITU anchor frequency, THz.
pub const ITU_ANCHOR_THZ: f64 = 193.1;

/// Grid spacing, THz (50 GHz fixed grid).
pub const GRID_SPACING_THZ: f64 = 0.05;

/// A channel on the 50 GHz ITU grid, identified by its integer offset from
/// the 193.1 THz anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Channel(pub i32);

impl Channel {
    /// Centre frequency in THz: `193.1 + n · 0.05`.
    pub fn frequency_thz(self) -> f64 {
        ITU_ANCHOR_THZ + self.0 as f64 * GRID_SPACING_THZ
    }

    /// Centre wavelength in nm.
    pub fn wavelength_nm(self) -> f64 {
        C_M_PER_S / (self.frequency_thz() * 1e12) * 1e9
    }

    /// True if the channel sits in the usable C-band (~191.35–196.1 THz).
    pub fn in_c_band(self) -> bool {
        let f = self.frequency_thz();
        (191.35..=196.10).contains(&f)
    }
}

/// Assignment of grid channels to the wavelengths (IP links) of one fiber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WavelengthPlan {
    channels: Vec<Channel>,
}

impl WavelengthPlan {
    /// Assigns `count` consecutive channels centred on the anchor, like a
    /// fully packed production fiber. Panics if the count exceeds the
    /// C-band capacity of the 50 GHz grid (~96 channels).
    pub fn packed(count: usize) -> Self {
        assert!(count > 0, "a plan needs at least one wavelength");
        let half = count as i32 / 2;
        let channels: Vec<Channel> =
            (0..count as i32).map(|i| Channel(i - half)).collect();
        assert!(
            channels.iter().all(|c| c.in_c_band()),
            "{count} channels exceed the C-band"
        );
        Self { channels }
    }

    /// The channels, in assignment order (wavelength index → channel).
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Number of wavelengths on the fiber.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Always false (construction rejects empty plans).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Channel of the `i`-th wavelength.
    pub fn channel(&self, i: usize) -> Channel {
        self.channels[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_channel() {
        let c = Channel(0);
        assert_eq!(c.frequency_thz(), 193.1);
        // 193.1 THz ≈ 1552.52 nm.
        assert!((c.wavelength_nm() - 1552.52).abs() < 0.01);
        assert!(c.in_c_band());
    }

    #[test]
    fn spacing_is_50_ghz() {
        let delta = Channel(1).frequency_thz() - Channel(0).frequency_thz();
        assert!((delta - 0.05).abs() < 1e-12);
    }

    #[test]
    fn wavelength_decreases_with_frequency() {
        assert!(Channel(10).wavelength_nm() < Channel(-10).wavelength_nm());
    }

    #[test]
    fn paper_fiber_forty_wavelengths() {
        // Fig. 1's fiber carries 40 wavelengths; all must be distinct
        // C-band channels.
        let plan = WavelengthPlan::packed(40);
        assert_eq!(plan.len(), 40);
        let mut channels = plan.channels().to_vec();
        channels.sort();
        channels.dedup();
        assert_eq!(channels.len(), 40);
        assert!(channels.iter().all(|c| c.in_c_band()));
    }

    #[test]
    fn c_band_limits() {
        assert!(!Channel(100).in_c_band());
        assert!(!Channel(-100).in_c_band());
    }

    #[test]
    #[should_panic]
    fn oversized_plan_rejected() {
        WavelengthPlan::packed(200);
    }
}
