//! Property tests for the optical-layer invariants.

use proptest::prelude::*;
use rwc_optics::fec::FecCode;
use rwc_optics::{LinkBudget, Modulation, ModulationTable};
use rwc_util::units::Db;

proptest! {
    /// The feasibility map is monotone: more SNR never yields a slower
    /// feasible rate.
    #[test]
    fn feasibility_monotone_in_snr(a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let table = ModulationTable::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cap_lo = table.feasible_capacity(Db(lo));
        let cap_hi = table.feasible_capacity(Db(hi));
        prop_assert!(cap_lo <= cap_hi);
    }

    /// Guard margins only ever reduce feasible capacity.
    #[test]
    fn margins_are_conservative(snr in 0.0f64..20.0, margin in 0.0f64..5.0) {
        let plain = ModulationTable::paper_default();
        let guarded = ModulationTable::with_margin(Db(margin));
        prop_assert!(guarded.feasible_capacity(Db(snr)) <= plain.feasible_capacity(Db(snr)));
    }

    /// `upgrades` returns exactly the faster-and-feasible rungs.
    #[test]
    fn upgrades_sound_and_complete(snr in 0.0f64..20.0, idx in 0usize..6) {
        let table = ModulationTable::paper_default();
        let current = Modulation::LADDER[idx];
        let ups = table.upgrades(Db(snr), current);
        for m in Modulation::LADDER {
            let should = m.capacity() > current.capacity() && table.supports(Db(snr), m);
            prop_assert_eq!(ups.contains(&m), should, "{} at {} dB", m, snr);
        }
    }

    /// Longer routes never have better SNR (monotone link budget).
    #[test]
    fn budget_monotone_in_spans(a in 1u32..100, b in 1u32..100) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(LinkBudget::terrestrial(lo).snr() >= LinkBudget::terrestrial(hi).snr());
    }

    /// FEC-derived required SNR is monotone in the pre-FEC BER budget:
    /// a more forgiving code needs less SNR.
    #[test]
    fn fec_required_snr_monotone(ber_exp in 1.2f64..2.5, idx in 0usize..6) {
        let m = Modulation::LADDER[idx];
        let weak = FecCode { name: "w", overhead: 0.1, pre_fec_ber: 10f64.powf(-ber_exp) };
        let strong = FecCode { name: "s", overhead: 0.2, pre_fec_ber: 10f64.powf(-ber_exp) * 2.0 };
        prop_assert!(strong.required_snr(m) <= weak.required_snr(m) + Db(1e-9));
    }

    /// The BVT ends every reconfiguration healthy (laser on, locked) at
    /// the requested format, regardless of procedure or sequence.
    #[test]
    fn bvt_always_lands_healthy(seed in 0u64..500, steps in proptest::collection::vec(0usize..6, 1..12),
                                efficient in proptest::bool::ANY) {
        use rwc_optics::bvt::{Bvt, ReconfigProcedure};
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(seed);
        let mut bvt = Bvt::new(Modulation::DpQpsk100);
        bvt.set_procedure(if efficient {
            ReconfigProcedure::Efficient
        } else {
            ReconfigProcedure::Legacy
        });
        for idx in steps {
            let target = Modulation::LADDER[idx];
            let report = bvt.reconfigure(target, &mut rng).unwrap();
            prop_assert!(bvt.laser_on() && bvt.locked());
            prop_assert_eq!(bvt.modulation(), target);
            prop_assert_eq!(report.downtime, report.total());
        }
    }

    /// EVM-based SNR estimation is consistent within a fraction of a dB
    /// across constellations and SNR levels.
    #[test]
    fn evm_estimator_tracks_channel(seed in 0u64..50, snr_db in 8.0f64..22.0, which in 0usize..3) {
        use rwc_optics::constellation::{awgn_trial, Constellation};
        let c = match which {
            0 => Constellation::qpsk(),
            1 => Constellation::qam8(),
            _ => Constellation::qam16(),
        };
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(seed);
        let run = awgn_trial(&c, Db(snr_db), 20_000, &mut rng);
        prop_assert!((run.estimated_snr().value() - snr_db).abs() < 0.8,
            "{}: est {} vs true {snr_db}", c.name(), run.estimated_snr());
    }
}
