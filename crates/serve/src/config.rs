//! Daemon configuration.

use crate::error::ServeError;
use crate::queue::ShedPolicy;
use rwc_core::controller::ControllerConfig;
use rwc_harness::{ChaosPlan, RetryPolicy};
use rwc_telemetry::{AnalysisMode, FleetConfig, GenMode};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Where per-shard checkpoints live and how often they are written.
#[derive(Debug, Clone)]
pub struct ServeCheckpointConfig {
    /// Directory holding `shard-<i>.ckpt` (+ rotated `.prev`) files.
    pub dir: PathBuf,
    /// Write a shard's checkpoint after every this many completions
    /// homed to it; a final checkpoint is always written on drain.
    pub every_links: u64,
}

/// Everything the daemon needs to own a fleet.
///
/// Determinism contract: the pipeline result (accumulator + pipeline
/// metrics) is a pure function of `(fleet, controller, mode, gen_mode)` —
/// shard count, queue sizing, shedding, restarts and resume cycles never
/// change a result byte, only the `serve.*` operational counters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The deterministic fleet the daemon serves.
    pub fleet: FleetConfig,
    /// Fused or legacy per-link analysis.
    pub mode: AnalysisMode,
    /// Legacy (serial) or batch (counter-based) trace generation. Part of
    /// the determinism contract: results are pure in `(fleet, controller,
    /// mode, gen_mode)`, and shard checkpoints fingerprint the pair.
    pub gen_mode: GenMode,
    /// Controller tuning; its `table` is the ladder every link is
    /// analysed and decided against.
    pub controller: ControllerConfig,
    /// Worker shards (each: kernel + controller + metrics registry).
    pub n_shards: usize,
    /// Bounded ingest-queue capacity per shard.
    pub queue_capacity: usize,
    /// What to do when a shard's queue is full.
    pub shed_policy: ShedPolicy,
    /// Queue residency deadline: items older than this at pop time are
    /// shed (counted, never silently dropped). `None` disables expiry.
    pub deadline: Option<Duration>,
    /// Restart budget + jittered backoff for panicked shards; after
    /// `restart.budget` restarts a shard is marked unhealthy.
    pub restart: RetryPolicy,
    /// Periodic per-shard checkpointing, off by default.
    pub checkpoint: Option<ServeCheckpointConfig>,
    /// Chaos injection: `panic_chunks` holds *link ids* whose first
    /// `poison_attempts` processing attempts panic the owning shard.
    pub chaos: Option<ChaosPlan>,
    /// SIGINT/SIGTERM-equivalent shutdown hook: when set to `true`, the
    /// accept loop stops and shard supervisors begin a graceful drain.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl ServeConfig {
    /// A small-fleet config for tests and smoke runs.
    pub fn small() -> Self {
        Self::for_fleet(FleetConfig::small())
    }

    /// The paper-scale fleet behind a daemon.
    pub fn paper() -> Self {
        Self::for_fleet(FleetConfig::paper())
    }

    /// Defaults around an arbitrary fleet.
    pub fn for_fleet(fleet: FleetConfig) -> Self {
        Self {
            fleet,
            mode: AnalysisMode::Fused,
            gen_mode: GenMode::default(),
            controller: ControllerConfig::default(),
            n_shards: 4,
            queue_capacity: 64,
            shed_policy: ShedPolicy::RejectNewest,
            deadline: None,
            restart: RetryPolicy::default(),
            checkpoint: None,
            chaos: None,
            shutdown: None,
        }
    }

    /// Total links in the configured fleet.
    pub fn n_links(&self) -> usize {
        self.fleet.n_links()
    }

    /// Rejects nonsense before any thread is spawned — a bad config is a
    /// typed [`ServeError::Config`], not a panic inside a shard.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.n_shards == 0 {
            return Err(ServeError::Config("n_shards must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be at least 1".into()));
        }
        if self.n_links() == 0 {
            return Err(ServeError::Config("fleet has no links".into()));
        }
        if self.controller.table.entries().is_empty() {
            return Err(ServeError::Config("modulation table has no rungs".into()));
        }
        if self.controller.upgrade_margin.value() < 0.0 {
            return Err(ServeError::Config("upgrade_margin must be non-negative".into()));
        }
        if !(0.0..=1.0).contains(&self.restart.jitter) {
            return Err(ServeError::Config(format!(
                "restart jitter {} outside [0, 1]",
                self.restart.jitter
            )));
        }
        if let Some(ck) = &self.checkpoint {
            if ck.every_links == 0 {
                return Err(ServeError::Config("checkpoint.every_links must be at least 1".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_validates() {
        assert!(ServeConfig::small().validate().is_ok());
    }

    #[test]
    fn zero_bounds_are_config_errors() {
        let mut c = ServeConfig::small();
        c.n_shards = 0;
        assert!(matches!(c.validate(), Err(ServeError::Config(_))));
        let mut c = ServeConfig::small();
        c.queue_capacity = 0;
        assert!(matches!(c.validate(), Err(ServeError::Config(_))));
        let mut c = ServeConfig::small();
        c.restart.jitter = 2.0;
        assert!(matches!(c.validate(), Err(ServeError::Config(_))));
        let mut c = ServeConfig::small();
        c.checkpoint =
            Some(ServeCheckpointConfig { dir: std::env::temp_dir(), every_links: 0 });
        assert!(matches!(c.validate(), Err(ServeError::Config(_))));
    }
}
