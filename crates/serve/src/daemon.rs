//! The sharded daemon: ingest, supervision, checkpointing, drain.
//!
//! ## Architecture
//!
//! ```text
//!   ingest (HTTP / API)                 supervisor wrappers (one per shard)
//!        │  route = link % n_shards          │  catch_unwind(shard loop)
//!        ▼                                   │  restart w/ jittered backoff
//!   BoundedQueue[shard]  ──pop──▶  shard loop (kernel + controller)
//!                                            │ mpsc (poison-free handoff)
//!                                            ▼
//!                                      collector thread
//!                                  slots · pipeline metrics ·
//!                                  capacities · per-shard checkpoints
//! ```
//!
//! Exactly one thread (the collector) owns the result slots and the
//! checkpoint files, mirroring PR 6's executor: a panicking shard can
//! never poison state another thread will later lock. Each link is
//! processed by [`crate::shard::process_link`], which is a pure function
//! of `(seed, link)` — so the slot-ordered final merge is byte-identical
//! to [`crate::batch_reference`] no matter how work was sharded, shed,
//! requeued, restarted, or resumed.
//!
//! ## Overload ledger
//!
//! Admissions are never silently dropped. At any quiet point:
//!
//! ```text
//! serve.ingested = serve.links_completed + serve.shed_oldest
//!                + serve.shed_deadline  + serve.inflight_drops
//!                + (currently queued)
//! ```
//!
//! `serve.requeued` (panic and reroute re-admissions) is informational —
//! a requeue keeps the original admission open rather than opening a new
//! one, which is what makes the ledger close exactly.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::queue::{BoundedQueue, Offer, PopKind, ShedPolicy};
use crate::shard::{
    fresh_controller, process_link, LinkDone, LINK_DONE, LINK_PENDING, LINK_QUEUED,
};
use rwc_harness::{
    CheckpointEpoch, CheckpointStore, ChunkCheckpoint, StoreLoad, SweepCheckpoint,
    SweepFingerprint,
};
use rwc_obs::{Event, MetricsObserver, MetricsSnapshot, Observer};
use rwc_telemetry::{AnalysisMode, FleetAccumulator, FleetGenerator, FleetKernel, GenMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sentinel for "no link in flight" in a shard's current-link cell.
const NO_LINK: usize = usize::MAX;
/// How long a shard blocks in one pop before re-polling flags.
const POP_WAIT: Duration = Duration::from_millis(5);
/// Sleep while processing is paused (tests stage deterministic overload).
const PAUSE_WAIT: Duration = Duration::from_millis(1);

/// Outcome of one `ingest` call — every id is accounted somewhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Ids admitted to a shard queue.
    pub accepted: u64,
    /// Ids refused under backpressure ([`ShedPolicy::RejectNewest`] with a
    /// full queue); the caller may retry later.
    pub rejected: u64,
    /// Ids already queued or already completed (including links restored
    /// from a checkpoint) — idempotent re-ingest.
    pub duplicates: u64,
    /// Older queued ids evicted to admit these
    /// ([`ShedPolicy::ShedOldest`]); they reverted to pending and can be
    /// re-ingested.
    pub shed: u64,
    /// Ids outside the fleet.
    pub invalid: u64,
}

/// One shard's health as reported by `/readyz`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Still in rotation (restart budget not exhausted).
    pub healthy: bool,
    /// Restarts spent so far.
    pub restarts: u32,
    /// Items currently queued.
    pub queue_depth: usize,
}

/// The daemon's final output after a graceful drain.
#[derive(Debug)]
pub struct ServeReport {
    /// Slot-ordered fleet accumulator over every completed link —
    /// byte-identical to the batch path on the same seed.
    pub accumulator: FleetAccumulator,
    /// Pipeline metrics folded in ascending link order (the batch merge
    /// order), so the snapshot is byte-identical too.
    pub pipeline_metrics: MetricsSnapshot,
    /// Operational `serve.*` counters — shedding, restarts, checkpoints.
    pub serve_metrics: MetricsSnapshot,
    /// Links completed (fresh + restored).
    pub links_completed: u64,
}

impl ServeReport {
    /// Convenience read of one `serve.*` counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.serve_metrics.counters.get(name).copied().unwrap_or(0)
    }
}

struct SlotDone {
    acc: FleetAccumulator,
    metrics: MetricsSnapshot,
}

struct DaemonInner {
    cfg: ServeConfig,
    gen: Arc<FleetGenerator>,
    fingerprint: SweepFingerprint,
    queues: Vec<Arc<BoundedQueue<usize>>>,
    /// Per-link ingest state machine (pending / queued / done).
    states: Vec<AtomicU8>,
    /// Per-link processing attempts (chaos panics key off this).
    attempts: Vec<AtomicU32>,
    /// Per-shard in-flight link (NO_LINK when idle).
    currents: Vec<AtomicUsize>,
    healthy: Vec<AtomicBool>,
    restarts: Vec<AtomicU32>,
    kill: AtomicBool,
    draining: AtomicBool,
    paused: AtomicBool,
    /// The daemon's own registry: `serve.*` counters and events.
    obs: Arc<MetricsObserver>,
    /// Incrementally merged pipeline metrics for O(1) `/metrics` scrapes
    /// (operational view; the drain report re-folds in link order).
    pipeline: Mutex<MetricsSnapshot>,
    slots: Mutex<Vec<Option<SlotDone>>>,
    capacities: Vec<OnceLock<f64>>,
    slots_filled: AtomicU64,
    queue_high_water: AtomicUsize,
    fatal: Mutex<Option<ServeError>>,
    /// One two-epoch checkpoint store per shard (empty = checkpointing off).
    stores: Vec<CheckpointStore>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Combined `(analysis mode, generation mode)` checkpoint fingerprint
/// label. Legacy-generation labels keep their historical spelling so
/// pre-batch shard checkpoints still resume.
fn mode_label(mode: AnalysisMode, gen_mode: GenMode) -> &'static str {
    match (mode, gen_mode) {
        (AnalysisMode::Fused, GenMode::Legacy) => "fused",
        (AnalysisMode::Legacy, GenMode::Legacy) => "legacy",
        (AnalysisMode::Fused, GenMode::Batch) => "fused+batchgen",
        (AnalysisMode::Legacy, GenMode::Batch) => "legacy+batchgen",
    }
}

enum Admit {
    Accepted,
    AcceptedShedding(u64),
    Rejected,
    NoShard,
}

impl DaemonInner {
    fn set_fatal(&self, err: ServeError) {
        let mut slot = lock(&self.fatal);
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// First healthy shard at or after the link's home shard.
    fn route(&self, link: usize) -> Option<usize> {
        let n = self.cfg.n_shards;
        let home = link % n;
        (0..n).map(|i| (home + i) % n).find(|&s| self.healthy[s].load(Ordering::Acquire))
    }

    fn note_depth(&self, shard: usize) {
        let depth = self.queues[shard].len();
        let prev = self.queue_high_water.fetch_max(depth, Ordering::AcqRel);
        if depth > prev {
            self.obs.gauge("serve.queue_depth", depth as f64);
        }
    }

    /// Admits a queued-state link to a shard queue. `counter` names the
    /// admission class (`serve.ingested` for fresh ingest; requeues use
    /// `serve.requeued` and keep the original admission open). `policy`
    /// lets supervision requeues force [`ShedPolicy::ShedOldest`] so an
    /// in-flight link is never lost to a full queue.
    fn admit(&self, link: usize, counter: &'static str, policy: ShedPolicy) -> Admit {
        let n = self.cfg.n_shards;
        let Some(first) = self.route(link) else {
            self.states[link].store(LINK_PENDING, Ordering::Release);
            return Admit::NoShard;
        };
        // Walk healthy shards from the routed one; only a queue closed by
        // a concurrent unhealthy transition moves us along.
        for i in 0..n {
            let shard = (first + i) % n;
            if !self.healthy[shard].load(Ordering::Acquire) {
                continue;
            }
            match self.queues[shard].offer(link, policy) {
                Offer::Accepted => {
                    self.obs.incr(counter, 1);
                    self.note_depth(shard);
                    return Admit::Accepted;
                }
                Offer::AcceptedShedOldest(old) => {
                    self.obs.incr(counter, 1);
                    self.states[old].store(LINK_PENDING, Ordering::Release);
                    self.obs.incr("serve.shed_oldest", 1);
                    self.obs.event(&Event::OverloadShed { shard: shard as u64, count: 1 });
                    self.note_depth(shard);
                    return Admit::AcceptedShedding(1);
                }
                Offer::Rejected(l) => {
                    self.states[l].store(LINK_PENDING, Ordering::Release);
                    self.obs.incr("serve.rejected", 1);
                    return Admit::Rejected;
                }
                Offer::Closed(_) => continue,
            }
        }
        self.states[link].store(LINK_PENDING, Ordering::Release);
        Admit::NoShard
    }

    /// The shard worker loop. Panics (chaos-injected or real) unwind out
    /// to the supervisor wrapper.
    fn shard_loop(&self, shard: usize, tx: &mpsc::Sender<LinkDone>) {
        let mut kernel = FleetKernel::new();
        let controller = fresh_controller(&self.cfg);
        loop {
            if self.kill.load(Ordering::Acquire) {
                self.drop_residual(shard);
                return;
            }
            if let Some(flag) = &self.cfg.shutdown {
                if flag.load(Ordering::Acquire) {
                    self.draining.store(true, Ordering::Release);
                }
            }
            if self.paused.load(Ordering::Acquire) && !self.draining.load(Ordering::Acquire) {
                std::thread::sleep(PAUSE_WAIT);
                continue;
            }
            let popped = self.queues[shard].pop_timeout(self.cfg.deadline, POP_WAIT);
            if !popped.expired.is_empty() {
                let count = popped.expired.len() as u64;
                for &l in &popped.expired {
                    self.states[l].store(LINK_PENDING, Ordering::Release);
                }
                self.obs.incr("serve.shed_deadline", count);
                self.obs.event(&Event::OverloadShed { shard: shard as u64, count });
            }
            match popped.kind {
                PopKind::Closed => return,
                PopKind::TimedOut => {
                    if self.draining.load(Ordering::Acquire) && self.queues[shard].is_empty() {
                        return;
                    }
                }
                PopKind::Item(link) => {
                    if self.kill.load(Ordering::Acquire) {
                        self.states[link].store(LINK_PENDING, Ordering::Release);
                        self.obs.incr("serve.inflight_drops", 1);
                        self.drop_residual(shard);
                        return;
                    }
                    self.currents[shard].store(link, Ordering::Release);
                    let attempt = self.attempts[link].fetch_add(1, Ordering::AcqRel);
                    if let Some(plan) = &self.cfg.chaos {
                        if plan.should_panic(link as u64, attempt) {
                            panic!(
                                "chaos: injected panic on link {link} (attempt {attempt}, shard {shard})"
                            );
                        }
                    }
                    let done = process_link(&mut kernel, &controller, &self.gen, &self.cfg, link);
                    self.states[link].store(LINK_DONE, Ordering::Release);
                    self.currents[shard].store(NO_LINK, Ordering::Release);
                    tx.send(done).ok();
                }
            }
        }
    }

    /// Accounts for everything still queued on `shard` at an abrupt kill.
    fn drop_residual(&self, shard: usize) {
        let residual = self.queues[shard].drain_all();
        if residual.is_empty() {
            return;
        }
        for &l in &residual {
            self.states[l].store(LINK_PENDING, Ordering::Release);
        }
        self.obs.incr("serve.inflight_drops", residual.len() as u64);
    }

    /// Supervisor wrapper: restart-with-backoff on panic, unhealthy after
    /// the budget, reroute of orphaned work to the remaining shards.
    fn shard_wrapper(self: &Arc<Self>, shard: usize, tx: mpsc::Sender<LinkDone>) {
        loop {
            let result = catch_unwind(AssertUnwindSafe(|| self.shard_loop(shard, &tx)));
            let payload = match result {
                Ok(()) => return, // drained, closed, or killed
                Err(payload) => payload,
            };
            let message = panic_message(payload);
            self.obs.incr("serve.shard_panics", 1);
            let inflight = self.currents[shard].swap(NO_LINK, Ordering::AcqRel);
            let spent = self.restarts[shard].load(Ordering::Acquire);
            if spent < self.cfg.restart.budget {
                self.restarts[shard].store(spent + 1, Ordering::Release);
                if inflight != NO_LINK {
                    self.states[inflight].store(LINK_QUEUED, Ordering::Release);
                    // ShedOldest here regardless of the ingest policy: the
                    // interrupted link must not be lost to a full queue.
                    if matches!(
                        self.admit(inflight, "serve.requeued", ShedPolicy::ShedOldest),
                        Admit::NoShard
                    ) {
                        self.set_fatal(ServeError::ShardFailed {
                            shard: shard as u64,
                            message: message.clone(),
                        });
                        return;
                    }
                }
                std::thread::sleep(self.cfg.restart.backoff(shard as u64, spent + 1));
                self.obs.incr("serve.shard_restarts", 1);
                self.obs.event(&Event::ShardRestarted {
                    shard: shard as u64,
                    restarts: u64::from(spent + 1),
                });
                continue;
            }
            // Budget exhausted: out of rotation, hand the backlog over.
            self.healthy[shard].store(false, Ordering::Release);
            self.obs.incr("serve.shards_unhealthy", 1);
            self.obs.event(&Event::ShardUnhealthy { shard: shard as u64 });
            self.queues[shard].close();
            let mut orphans = self.queues[shard].drain_all();
            if inflight != NO_LINK {
                orphans.insert(0, inflight);
            }
            let mut stranded = false;
            for l in orphans {
                self.states[l].store(LINK_QUEUED, Ordering::Release);
                if matches!(
                    self.admit(l, "serve.requeued", ShedPolicy::ShedOldest),
                    Admit::NoShard
                ) {
                    stranded = true;
                }
            }
            if stranded || !self.healthy.iter().any(|h| h.load(Ordering::Acquire)) {
                self.set_fatal(ServeError::ShardFailed { shard: shard as u64, message });
            }
            return;
        }
    }

    /// Collector: sole owner of slots, pipeline merge, capacities, and
    /// checkpoint writes. Ends when every shard sender is gone.
    fn collector_loop(&self, rx: mpsc::Receiver<LinkDone>) {
        let n_shards = self.cfg.n_shards;
        let mut pending_per_shard = vec![0u64; n_shards];
        for done in rx {
            let link = done.link;
            let home = link % n_shards;
            {
                let mut slots = lock(&self.slots);
                if slots[link].is_some() {
                    continue; // already restored or completed
                }
                self.capacities[link].set(done.feasible_gbps).ok();
                lock(&self.pipeline).merge(&done.metrics);
                slots[link] = Some(SlotDone { acc: done.acc, metrics: done.metrics });
            }
            self.slots_filled.fetch_add(1, Ordering::AcqRel);
            self.obs.incr("serve.links_completed", 1);
            if !self.stores.is_empty() {
                pending_per_shard[home] += 1;
                let every = self.cfg.checkpoint.as_ref().map_or(u64::MAX, |c| c.every_links);
                if pending_per_shard[home] >= every {
                    pending_per_shard[home] = 0;
                    if let Err(e) = self.write_shard_checkpoint(home) {
                        self.set_fatal(e.into());
                    }
                }
            }
        }
    }

    /// Writes shard `shard`'s checkpoint: every completed link homed to it
    /// (chunk id = link id, chunk size 1), rotated through the two-epoch
    /// store.
    fn write_shard_checkpoint(&self, shard: usize) -> Result<(), rwc_harness::CheckpointError> {
        let mut cp = SweepCheckpoint::new(self.fingerprint.clone());
        {
            let slots = lock(&self.slots);
            for (link, slot) in slots.iter().enumerate() {
                if link % self.cfg.n_shards != shard {
                    continue;
                }
                if let Some(done) = slot {
                    cp.chunks.push(ChunkCheckpoint {
                        id: link as u64,
                        accumulator: done.acc.clone(),
                        metrics: Some(done.metrics.clone()),
                    });
                }
            }
        }
        let completed = cp.chunks.len() as u64;
        self.stores[shard].write(&cp)?;
        self.obs.incr("serve.checkpoints_written", 1);
        self.obs.event(&Event::CheckpointWritten { completed_chunks: completed });
        Ok(())
    }
}

/// The running daemon. Construct with [`Daemon::start`]; finish with
/// [`Daemon::drain`] (graceful: flush, final checkpoints, report) or
/// [`Daemon::kill`] (abrupt, simulating `kill -9`; periodic checkpoints
/// are all that survives).
#[derive(Debug)]
pub struct Daemon {
    inner: Arc<DaemonInner>,
    shard_handles: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonInner")
            .field("n_shards", &self.cfg.n_shards)
            .field("n_links", &self.cfg.n_links())
            .field("slots_filled", &self.slots_filled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Daemon {
    /// Validates the config, restores per-shard checkpoints (newest epoch
    /// that verifies; corrupt epochs are counted and skipped), and spawns
    /// the shard, supervisor and collector threads.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let n_links = cfg.n_links();
        let n_shards = cfg.n_shards;
        let gen =
            Arc::new(FleetGenerator::new(cfg.fleet.clone()).with_gen_mode(cfg.gen_mode));
        let fingerprint = SweepFingerprint {
            n_links: n_links as u64,
            chunk_size: 1,
            seed: cfg.fleet.seed,
            mode: mode_label(cfg.mode, cfg.gen_mode).into(),
        };
        let stores = match &cfg.checkpoint {
            None => Vec::new(),
            Some(ck) => {
                std::fs::create_dir_all(&ck.dir).map_err(|e| {
                    ServeError::Io(format!("create checkpoint dir {}: {e}", ck.dir.display()))
                })?;
                (0..n_shards)
                    .map(|s| CheckpointStore::new(ck.dir.join(format!("shard-{s}.ckpt"))))
                    .collect()
            }
        };
        let obs = Arc::new(MetricsObserver::new());
        let inner = Arc::new(DaemonInner {
            gen,
            fingerprint,
            queues: (0..n_shards).map(|_| Arc::new(BoundedQueue::new(cfg.queue_capacity))).collect(),
            states: (0..n_links).map(|_| AtomicU8::new(LINK_PENDING)).collect(),
            attempts: (0..n_links).map(|_| AtomicU32::new(0)).collect(),
            currents: (0..n_shards).map(|_| AtomicUsize::new(NO_LINK)).collect(),
            healthy: (0..n_shards).map(|_| AtomicBool::new(true)).collect(),
            restarts: (0..n_shards).map(|_| AtomicU32::new(0)).collect(),
            kill: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            obs,
            pipeline: Mutex::new(MetricsObserver::new().snapshot()),
            slots: Mutex::new((0..n_links).map(|_| None).collect()),
            capacities: (0..n_links).map(|_| OnceLock::new()).collect(),
            slots_filled: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            fatal: Mutex::new(None),
            stores,
            cfg,
        });
        inner.restore_from_stores()?;

        let (tx, rx) = mpsc::channel::<LinkDone>();
        let collector = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("rwc-serve-collector".into())
                .spawn(move || inner.collector_loop(rx))
                .map_err(|e| ServeError::Io(format!("spawn collector: {e}")))?
        };
        let mut shard_handles = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let inner = Arc::clone(&inner);
            let tx = tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rwc-serve-shard-{shard}"))
                .spawn(move || inner.shard_wrapper(shard, tx))
                .map_err(|e| ServeError::Io(format!("spawn shard {shard}: {e}")))?;
            shard_handles.push(handle);
        }
        drop(tx);
        Ok(Self { inner, shard_handles, collector: Some(collector) })
    }

    /// Offers link ids for processing. Idempotent: completed or queued
    /// links count as duplicates, so replaying a whole sweep after a
    /// resume converges instead of re-doing work.
    pub fn ingest(&self, links: &[usize]) -> Result<IngestReceipt, ServeError> {
        if self.inner.draining.load(Ordering::Acquire) || self.inner.kill.load(Ordering::Acquire)
        {
            return Err(ServeError::ShuttingDown);
        }
        let inner = &self.inner;
        let mut receipt = IngestReceipt::default();
        for &link in links {
            if link >= inner.cfg.n_links() {
                receipt.invalid += 1;
                continue;
            }
            if inner.states[link]
                .compare_exchange(LINK_PENDING, LINK_QUEUED, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                receipt.duplicates += 1;
                inner.obs.incr("serve.duplicates", 1);
                continue;
            }
            match inner.admit(link, "serve.ingested", inner.cfg.shed_policy) {
                Admit::Accepted => receipt.accepted += 1,
                Admit::AcceptedShedding(n) => {
                    receipt.accepted += 1;
                    receipt.shed += n;
                }
                Admit::Rejected => receipt.rejected += 1,
                Admit::NoShard => {
                    return Err(self.take_fatal().unwrap_or(ServeError::ShardFailed {
                        shard: 0,
                        message: "no healthy shard to route to".into(),
                    }));
                }
            }
        }
        Ok(receipt)
    }

    /// Total links in the fleet.
    pub fn n_links(&self) -> usize {
        self.inner.cfg.n_links()
    }

    /// Links completed so far (fresh + restored from checkpoints).
    pub fn completed_links(&self) -> u64 {
        self.inner.slots_filled.load(Ordering::Acquire)
    }

    /// Whether every shard is still in rotation.
    pub fn is_ready(&self) -> bool {
        self.inner.healthy.iter().all(|h| h.load(Ordering::Acquire))
    }

    /// Per-shard health, restart spend, and queue depth.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        (0..self.inner.cfg.n_shards)
            .map(|s| ShardStatus {
                shard: s,
                healthy: self.inner.healthy[s].load(Ordering::Acquire),
                restarts: self.inner.restarts[s].load(Ordering::Acquire),
                queue_depth: self.inner.queues[s].len(),
            })
            .collect()
    }

    /// The `/readyz` body: overall readiness plus per-shard status.
    pub fn readyz_json(&self) -> String {
        let shards: Vec<String> = self
            .shard_statuses()
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"healthy\":{},\"restarts\":{},\"queue_depth\":{}}}",
                    s.shard, s.healthy, s.restarts, s.queue_depth
                )
            })
            .collect();
        format!(
            "{{\"ready\":{},\"links_total\":{},\"links_completed\":{},\"shards\":[{}]}}",
            self.is_ready(),
            self.n_links(),
            self.completed_links(),
            shards.join(",")
        )
    }

    /// The `/metrics` body: merged pipeline metrics plus the daemon's own
    /// `serve.*` registry, in the `--obs-json` schema.
    pub fn metrics_json(&self) -> String {
        let mut merged = lock(&self.inner.pipeline).clone();
        merged.merge(&self.inner.obs.snapshot());
        merged.to_json()
    }

    /// The daemon's operational counters only.
    pub fn serve_metrics(&self) -> MetricsSnapshot {
        self.inner.obs.snapshot()
    }

    /// Feasible capacity of a completed link (None until analysed).
    pub fn capacity(&self, link: usize) -> Option<f64> {
        self.inner.capacities.get(link).and_then(|c| c.get().copied())
    }

    /// Counts one HTTP request into the serve registry.
    pub(crate) fn note_http_request(&self) {
        self.inner.obs.incr("serve.http_requests", 1);
    }

    /// Holds shards off the queues (deterministic overload staging for
    /// tests and chaos drills). Ingest keeps running and backpressure
    /// applies exactly.
    pub fn pause_processing(&self) {
        self.inner.paused.store(true, Ordering::Release);
    }

    /// Releases [`Daemon::pause_processing`].
    pub fn resume_processing(&self) {
        self.inner.paused.store(false, Ordering::Release);
    }

    fn take_fatal(&self) -> Option<ServeError> {
        lock(&self.inner.fatal).take()
    }

    fn join_all(&mut self) {
        for h in self.shard_handles.drain(..) {
            h.join().ok();
        }
        if let Some(c) = self.collector.take() {
            c.join().ok();
        }
    }

    /// Graceful drain: stop accepting, let every shard flush its queue,
    /// write final per-shard checkpoints, and fold the slots (ascending
    /// link order) into the report.
    pub fn drain(mut self) -> Result<ServeReport, ServeError> {
        self.inner.draining.store(true, Ordering::Release);
        self.join_all();
        if let Some(err) = self.take_fatal() {
            return Err(err);
        }
        if !self.inner.stores.is_empty() {
            for shard in 0..self.inner.cfg.n_shards {
                self.inner.write_shard_checkpoint(shard)?;
            }
        }
        let links_completed = self.completed_links();
        self.inner.obs.incr("serve.drains", 1);
        self.inner.obs.event(&Event::DrainCompleted { links_completed });
        let mut accumulator = FleetAccumulator::new();
        let mut pipeline_metrics = MetricsObserver::new().snapshot();
        {
            let mut slots = lock(&self.inner.slots);
            for slot in slots.iter_mut() {
                if let Some(done) = slot.take() {
                    accumulator.merge(done.acc);
                    pipeline_metrics.merge(&done.metrics);
                }
            }
        }
        Ok(ServeReport {
            accumulator,
            pipeline_metrics,
            serve_metrics: self.inner.obs.snapshot(),
            links_completed,
        })
    }

    /// Abrupt stop simulating `kill -9` mid-run: no final checkpoint, no
    /// report — only the periodic per-shard checkpoints survive for the
    /// next [`Daemon::start`] to resume from. Residual queued work is
    /// counted under `serve.inflight_drops` so the ledger still closes.
    pub fn kill(mut self) -> MetricsSnapshot {
        self.inner.kill.store(true, Ordering::Release);
        self.join_all();
        self.inner.obs.snapshot()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A dropped daemon must not leave shard threads running.
        self.inner.kill.store(true, Ordering::Release);
        self.join_all();
    }
}

impl DaemonInner {
    /// Restores completed links from every shard store (newest epoch that
    /// verifies; fallbacks and rejections are counted, never silent).
    fn restore_from_stores(&self) -> Result<(), ServeError> {
        if self.stores.is_empty() {
            return Ok(());
        }
        let mut slots = lock(&self.slots);
        for store in &self.stores {
            match store.load_or_fallback(Some(&self.fingerprint))? {
                StoreLoad::Fresh { rejected } => {
                    if !rejected.is_empty() {
                        self.obs.incr("serve.checkpoints_rejected", rejected.len() as u64);
                    }
                }
                StoreLoad::Loaded { checkpoint, epoch, rejected } => {
                    if !rejected.is_empty() {
                        self.obs.incr("serve.checkpoints_rejected", rejected.len() as u64);
                    }
                    if epoch == CheckpointEpoch::Previous {
                        self.obs.incr("serve.checkpoint_fallbacks", 1);
                    }
                    let mut restored = 0u64;
                    for chunk in checkpoint.chunks {
                        let link = chunk.id as usize;
                        if link >= slots.len() || slots[link].is_some() {
                            continue;
                        }
                        let metrics =
                            chunk.metrics.unwrap_or_else(|| MetricsObserver::new().snapshot());
                        if let Some(&cap) = chunk.accumulator.feasible_capacities().first() {
                            self.capacities[link].set(cap).ok();
                        }
                        lock(&self.pipeline).merge(&metrics);
                        slots[link] = Some(SlotDone { acc: chunk.accumulator, metrics });
                        self.states[link].store(LINK_DONE, Ordering::Release);
                        self.slots_filled.fetch_add(1, Ordering::AcqRel);
                        restored += 1;
                    }
                    if restored > 0 {
                        self.obs.event(&Event::ResumeVerified { restored_chunks: restored });
                    }
                }
            }
        }
        Ok(())
    }
}
