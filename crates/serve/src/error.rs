//! Typed failures of the service runtime.

use rwc_harness::CheckpointError;
use std::fmt;

/// Why the daemon could not start, serve, or drain.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (zero shards, empty ladder, bad bounds).
    Config(String),
    /// Socket or filesystem trouble outside the checkpoint path.
    Io(String),
    /// Checkpoint I/O, corruption, version or fingerprint trouble.
    Checkpoint(CheckpointError),
    /// A shard exhausted its restart budget and no healthy shard remains
    /// to take over its work.
    ShardFailed {
        /// The last shard to fail.
        shard: u64,
        /// The panic payload of its final attempt.
        message: String,
    },
    /// The daemon is draining or killed; no new work is accepted.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve configuration error: {msg}"),
            ServeError::Io(msg) => write!(f, "serve I/O error: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "{e}"),
            ServeError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed with no healthy shard left (last panic: {message})")
            }
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_class() {
        assert!(ServeError::Config("x".into()).to_string().contains("configuration"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        let e = ServeError::ShardFailed { shard: 3, message: "boom".into() };
        assert!(e.to_string().contains("shard 3"));
        let c: ServeError = CheckpointError::Corrupt("bits".into()).into();
        assert!(c.to_string().contains("corrupt"));
    }
}
