//! Minimal hand-rolled HTTP/1.1 surface over `std::net`.
//!
//! One request per connection, `Connection: close`, JSON bodies. This is
//! an operational endpoint for a single-daemon deployment, not a general
//! web server: requests are parsed just far enough to route
//!
//! | route | method | body |
//! |---|---|---|
//! | `/healthz` | GET | liveness |
//! | `/readyz` | GET | per-shard health; 503 once any shard is unhealthy |
//! | `/metrics` | GET | merged pipeline + `serve.*` snapshot (`--obs-json` schema) |
//! | `/capacity/<link>` | GET | a completed link's feasible capacity |
//! | `/ingest` | POST | whitespace-separated link ids / `a-b` ranges |
//! | `/shutdown` | POST | raises the shutdown flag; accept loop drains |
//!
//! The accept loop polls a shared [`AtomicBool`] — the same
//! SIGINT/SIGTERM-equivalent hook the shard supervisors watch — so
//! `/shutdown`, Ctrl-C handling in the binary, and tests all stop the
//! server the same way.

use crate::daemon::Daemon;
use crate::error::ServeError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_WAIT: Duration = Duration::from_millis(5);
/// Per-connection read timeout (slow-loris is not worth defending in an
/// operational endpoint, but a dead peer must not wedge the loop).
const READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Largest request (line + headers + body) we will read.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A bound listener serving one [`Daemon`].
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
}

impl HttpServer {
    /// Binds and switches to non-blocking accepts (the loop polls the
    /// shutdown flag between accepts).
    pub fn bind(addr: &str) -> Result<Self, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("set_nonblocking: {e}")))?;
        Ok(Self { listener })
    }

    /// The bound address (use with port 0 in tests).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// Serves until `shutdown` flips true (via `/shutdown` or externally).
    /// Returns when the flag is observed; the caller then drains the
    /// daemon.
    pub fn run(&self, daemon: &Daemon, shutdown: &AtomicBool) {
        loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => handle_connection(daemon, stream, shutdown),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_WAIT);
                }
                Err(_) => std::thread::sleep(ACCEPT_WAIT),
            }
        }
    }
}

fn handle_connection(daemon: &Daemon, mut stream: TcpStream, shutdown: &AtomicBool) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    stream.set_nonblocking(false).ok();
    let Some((method, path, body)) = read_request(&mut stream) else {
        respond(&mut stream, 400, "{\"error\":\"malformed request\"}");
        return;
    };
    daemon.note_http_request();
    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond(&mut stream, 200, "{\"ok\":true}"),
        ("GET", "/readyz") => {
            let status = if daemon.is_ready() { 200 } else { 503 };
            respond(&mut stream, status, &daemon.readyz_json());
        }
        ("GET", "/metrics") => respond(&mut stream, 200, &daemon.metrics_json()),
        ("GET", p) if p.starts_with("/capacity/") => {
            match p["/capacity/".len()..].parse::<usize>() {
                Err(_) => respond(&mut stream, 400, "{\"error\":\"bad link id\"}"),
                Ok(link) if link >= daemon.n_links() => {
                    respond(&mut stream, 404, "{\"error\":\"link outside fleet\"}")
                }
                Ok(link) => match daemon.capacity(link) {
                    Some(gbps) => respond(
                        &mut stream,
                        200,
                        &format!("{{\"link\":{link},\"feasible_gbps\":{gbps}}}"),
                    ),
                    None => respond(&mut stream, 404, "{\"error\":\"not yet analysed\"}"),
                },
            }
        }
        ("POST", "/ingest") => match parse_links(&body) {
            None => respond(&mut stream, 400, "{\"error\":\"bad link list\"}"),
            Some(links) => match daemon.ingest(&links) {
                Ok(r) => respond(
                    &mut stream,
                    200,
                    &format!(
                        "{{\"accepted\":{},\"rejected\":{},\"duplicates\":{},\"shed\":{},\"invalid\":{}}}",
                        r.accepted, r.rejected, r.duplicates, r.shed, r.invalid
                    ),
                ),
                Err(e) => respond(&mut stream, 503, &format!("{{\"error\":{:?}}}", e.to_string())),
            },
        },
        ("POST", "/shutdown") => {
            respond(&mut stream, 200, "{\"draining\":true}");
            shutdown.store(true, Ordering::Release);
        }
        _ => respond(&mut stream, 404, "{\"error\":\"no such route\"}"),
    }
}

/// Reads one request: `(method, path, body)`. Returns `None` on anything
/// malformed — the caller answers 400.
fn read_request(stream: &mut TcpStream) -> Option<(String, String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next()?.split(' ');
    let method = request_line.next()?.to_string();
    let path = request_line.next()?.to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_REQUEST_BYTES {
        return None;
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Some((method, path, body))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a whitespace-separated list of link ids, with `a-b` inclusive
/// ranges (`"0-9 40 41"`).
fn parse_links(body: &str) -> Option<Vec<usize>> {
    let mut links = Vec::new();
    for token in body.split_whitespace() {
        if let Some((a, b)) = token.split_once('-') {
            let (a, b) = (a.parse::<usize>().ok()?, b.parse::<usize>().ok()?);
            if b < a || b - a > 1_000_000 {
                return None;
            }
            links.extend(a..=b);
        } else {
            links.push(token.parse::<usize>().ok()?);
        }
    }
    Some(links)
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).ok();
    stream.flush().ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_lists_parse_ids_and_ranges() {
        assert_eq!(parse_links("0 1 2"), Some(vec![0, 1, 2]));
        assert_eq!(parse_links("0-3 9"), Some(vec![0, 1, 2, 3, 9]));
        assert_eq!(parse_links(""), Some(vec![]));
        assert!(parse_links("3-1").is_none());
        assert!(parse_links("x").is_none());
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
