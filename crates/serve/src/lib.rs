//! rwc-serve: the sharded controller daemon.
//!
//! Puts the whole pipeline — fleet telemetry kernel, run/walk/crawl
//! controller, metrics — behind a long-running service built on std
//! threads and `std::net` (the workspace is offline-vendored; no async
//! runtime). The fleet is sharded across worker threads fed by bounded
//! ingest queues with explicit backpressure and deadline shedding; a
//! supervisor `catch_unwind`-isolates each shard and restarts it with a
//! jittered backoff budget; periodic per-shard checkpoints make an
//! abrupt kill resumable with byte-identical results.
//!
//! The determinism contract (and the reason the design works at all):
//! each link's analysis + decision is a pure function of `(seed, link)`,
//! so *operational* choices — shard count, shedding, panics, restarts,
//! kills, resumes — can never change the *pipeline* result, only the
//! `serve.*` counters that account for them.
//!
//! ```no_run
//! use rwc_serve::{Daemon, ServeConfig};
//!
//! let daemon = Daemon::start(ServeConfig::small()).unwrap();
//! let links: Vec<usize> = (0..daemon.n_links()).collect();
//! daemon.ingest(&links).unwrap();
//! while daemon.completed_links() < daemon.n_links() as u64 {
//!     std::thread::sleep(std::time::Duration::from_millis(5));
//! }
//! let report = daemon.drain().unwrap();
//! assert_eq!(report.links_completed, report.accumulator.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod error;
pub mod http;
pub mod queue;
pub mod shard;

pub use config::{ServeCheckpointConfig, ServeConfig};
pub use daemon::{Daemon, IngestReceipt, ServeReport, ShardStatus};
pub use error::ServeError;
pub use http::HttpServer;
pub use queue::{BoundedQueue, Offer, PopKind, Popped, ShedPolicy};
pub use shard::batch_reference;
