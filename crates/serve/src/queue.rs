//! Bounded ingest queues with explicit backpressure.
//!
//! Every queue interaction returns a typed outcome — an item is accepted,
//! rejected, or shed, never silently dropped. Deadline expiry is applied
//! at *pop* time: an item that waited longer than the queue deadline is
//! returned to the caller as expired instead of being handed to a worker,
//! so the shedding decision and its accounting happen in one place.
//!
//! Locking discipline: the internal mutex is held only for O(1) deque
//! operations, and every acquisition goes through
//! `unwrap_or_else(PoisonError::into_inner)` — a panicking shard thread
//! (the supervisor's whole job is absorbing those) must not turn into a
//! poisoned-lock panic on the ingest path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What to do when a bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Evict the oldest queued item to make room for the new one — the
    /// freshest telemetry wins (stale readings are the least valuable).
    ShedOldest,
    /// Refuse the new item and keep the queue as is — callers see the
    /// rejection and may retry after backoff.
    RejectNewest,
}

struct Enqueued<T> {
    item: T,
    at: Instant,
}

struct Inner<T> {
    items: VecDeque<Enqueued<T>>,
    closed: bool,
}

/// A bounded MPMC queue (mutex + condvar; the workspace is std-only).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> std::fmt::Debug for Inner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("len", &self.items.len())
            .field("closed", &self.closed)
            .finish()
    }
}

/// Outcome of offering one item to a bounded queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer<T> {
    /// The item is queued.
    Accepted,
    /// The item is queued and the oldest queued item was evicted to make
    /// room ([`ShedPolicy::ShedOldest`]); the caller owns the eviction's
    /// accounting.
    AcceptedShedOldest(T),
    /// The queue is full and kept its contents
    /// ([`ShedPolicy::RejectNewest`]); the item comes back to the caller.
    Rejected(T),
    /// The queue is closed (shard unhealthy or daemon stopping); the item
    /// comes back to the caller.
    Closed(T),
}

/// What one [`BoundedQueue::pop_timeout`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum PopKind<T> {
    /// A live item within its deadline.
    Item(T),
    /// Nothing arrived within the wait window; poll flags and try again.
    TimedOut,
    /// The queue is closed and empty — no more work will ever arrive.
    Closed,
}

/// A pop result: any deadline-expired items skipped over, plus the
/// outcome. Expired items are never handed to workers; the caller accounts
/// for them (they are shed, not lost).
#[derive(Debug)]
pub struct Popped<T> {
    /// Items whose queue deadline elapsed before a worker got to them.
    pub expired: Vec<T>,
    /// The pop outcome after expiry filtering.
    pub kind: PopKind<T>,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers one item under `policy`. Never blocks.
    pub fn offer(&self, item: T, policy: ShedPolicy) -> Offer<T> {
        let mut inner = self.lock();
        if inner.closed {
            return Offer::Closed(item);
        }
        if inner.items.len() < self.capacity {
            inner.items.push_back(Enqueued { item, at: Instant::now() });
            drop(inner);
            self.ready.notify_one();
            return Offer::Accepted;
        }
        match policy {
            ShedPolicy::RejectNewest => Offer::Rejected(item),
            ShedPolicy::ShedOldest => {
                let evicted = inner
                    .items
                    .pop_front()
                    .map(|e| e.item)
                    .expect("full queue has a front");
                inner.items.push_back(Enqueued { item, at: Instant::now() });
                drop(inner);
                self.ready.notify_one();
                Offer::AcceptedShedOldest(evicted)
            }
        }
    }

    /// Pops the next item, waiting up to `wait`. Items older than
    /// `deadline` are skipped into `expired` rather than returned.
    pub fn pop_timeout(&self, deadline: Option<Duration>, wait: Duration) -> Popped<T> {
        let mut expired = Vec::new();
        let start = Instant::now();
        let mut inner = self.lock();
        loop {
            while let Some(front) = inner.items.front() {
                let lived = front.at.elapsed();
                if deadline.is_some_and(|d| lived > d) {
                    let e = inner.items.pop_front().expect("front exists");
                    expired.push(e.item);
                    continue;
                }
                let e = inner.items.pop_front().expect("front exists");
                return Popped { expired, kind: PopKind::Item(e.item) };
            }
            if inner.closed {
                return Popped { expired, kind: PopKind::Closed };
            }
            let waited = start.elapsed();
            if waited >= wait {
                return Popped { expired, kind: PopKind::TimedOut };
            }
            let (guard, _timeout) = self
                .ready
                .wait_timeout(inner, wait - waited)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes the queue: further offers return [`Offer::Closed`], pops
    /// drain the remaining items and then report [`PopKind::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Removes and returns everything queued (used to re-route the work of
    /// a shard taken out of rotation, and to account for residual work at
    /// an abrupt kill).
    pub fn drain_all(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.items.drain(..).map(|e| e.item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_up_to_capacity_then_applies_policy() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.offer(1, ShedPolicy::RejectNewest), Offer::Accepted);
        assert_eq!(q.offer(2, ShedPolicy::RejectNewest), Offer::Accepted);
        assert_eq!(q.offer(3, ShedPolicy::RejectNewest), Offer::Rejected(3));
        assert_eq!(q.offer(3, ShedPolicy::ShedOldest), Offer::AcceptedShedOldest(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_sees_fifo_order_and_timeout() {
        let q = BoundedQueue::new(4);
        q.offer(7, ShedPolicy::RejectNewest);
        q.offer(8, ShedPolicy::RejectNewest);
        let p = q.pop_timeout(None, Duration::from_millis(1));
        assert_eq!(p.kind, PopKind::Item(7));
        let p = q.pop_timeout(None, Duration::from_millis(1));
        assert_eq!(p.kind, PopKind::Item(8));
        let p = q.pop_timeout(None, Duration::from_millis(1));
        assert_eq!(p.kind, PopKind::TimedOut);
    }

    #[test]
    fn deadline_expiry_is_returned_not_dropped() {
        let q = BoundedQueue::new(4);
        q.offer(1, ShedPolicy::RejectNewest);
        q.offer(2, ShedPolicy::RejectNewest);
        std::thread::sleep(Duration::from_millis(5));
        q.offer(3, ShedPolicy::RejectNewest);
        let p = q.pop_timeout(Some(Duration::from_millis(2)), Duration::from_millis(1));
        assert_eq!(p.expired, vec![1, 2]);
        assert_eq!(p.kind, PopKind::Item(3));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.offer(5, ShedPolicy::RejectNewest);
        q.close();
        assert_eq!(q.offer(6, ShedPolicy::RejectNewest), Offer::Closed(6));
        let p = q.pop_timeout(None, Duration::from_millis(1));
        assert_eq!(p.kind, PopKind::Item(5));
        let p = q.pop_timeout(None, Duration::from_millis(1));
        assert_eq!(p.kind, PopKind::Closed);
    }

    #[test]
    fn drain_all_empties_the_queue() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.offer(i, ShedPolicy::RejectNewest);
        }
        assert_eq!(q.drain_all(), vec![0, 1, 2]);
        assert!(q.is_empty());
    }
}
