//! Per-link shard processing: the pure function every shard executes.
//!
//! A link's result depends only on `(fleet seed, link id, table, mode)` —
//! never on which shard processed it, how often it was requeued, or what
//! ran before it. That purity is the whole determinism story: the daemon
//! can shed, reroute, restart and resume freely, and the slot-ordered
//! final merge still reproduces the sequential batch pass byte for byte.
//! [`batch_reference`] *is* that sequential pass, exported as the oracle
//! the identity tests and the soak compare against.

use crate::config::ServeConfig;
use rwc_core::controller::{Controller, Decision};
use rwc_obs::{MetricsObserver, MetricsSnapshot, Observer};
use rwc_optics::Modulation;
use rwc_telemetry::{AnalysisMode, FleetAccumulator, FleetGenerator, FleetKernel, LinkAnalysis};
use rwc_topology::wan::LinkId;
use rwc_util::time::SimTime;
use std::sync::Arc;

/// Link ingest states (one atomic byte per link in the daemon).
pub(crate) const LINK_PENDING: u8 = 0;
/// Admitted to some shard's queue (or in flight on a worker).
pub(crate) const LINK_QUEUED: u8 = 1;
/// Completed; the collector holds its slot.
pub(crate) const LINK_DONE: u8 = 2;

/// One completed link, as handed to the collector.
#[derive(Debug)]
pub(crate) struct LinkDone {
    pub link: usize,
    /// Single-link accumulator partial (exactly one `push`).
    pub acc: FleetAccumulator,
    /// The link's pipeline metrics from a fresh per-attempt observer —
    /// failed attempts never pollute the merged snapshot.
    pub metrics: MetricsSnapshot,
    /// Feasible capacity served by `/capacity/<link>`.
    pub feasible_gbps: f64,
}

/// Analyses one link and runs the controller's pure decision over the
/// result. Identical no matter which shard (or the batch path) calls it.
pub(crate) fn process_link(
    kernel: &mut FleetKernel,
    controller: &Controller,
    gen: &FleetGenerator,
    cfg: &ServeConfig,
    link: usize,
) -> LinkDone {
    let obs = Arc::new(MetricsObserver::new());
    kernel.set_observer(obs.clone());
    let table = &cfg.controller.table;
    let analysis = match cfg.mode {
        AnalysisMode::Fused => kernel.analyze_generated(gen, link, table),
        AnalysisMode::Legacy => LinkAnalysis::new(&gen.link(link).trace, table),
    };
    // The run/walk/crawl decision at the link's observed feasibility
    // floor, from the fleet's static 100 G default. `decide` is `&self`
    // over untouched link state, so the outcome is a pure function of the
    // analysis — shard placement cannot change it.
    let decision = controller.decide(
        LinkId(link),
        Modulation::DpQpsk100,
        analysis.hdr.feasibility_floor(),
        SimTime::EPOCH,
    );
    obs.incr(
        match decision {
            Decision::Hold => "controller.decisions.hold",
            Decision::StepTo(_) => "controller.decisions.step",
            Decision::Down => "controller.decisions.down",
        },
        1,
    );
    let mut acc = FleetAccumulator::new();
    acc.push(&analysis);
    LinkDone {
        link,
        feasible_gbps: analysis.feasible_capacity.value(),
        acc,
        metrics: obs.snapshot(),
    }
}

/// A controller whose per-link state is untouched — the shared starting
/// point every shard (and the batch reference) decides from.
pub(crate) fn fresh_controller(cfg: &ServeConfig) -> Controller {
    Controller::new(cfg.controller.clone(), cfg.n_links(), cfg.fleet.seed)
}

/// The single-threaded batch pass over the whole fleet, in ascending link
/// order: the byte-identity oracle for every daemon configuration.
///
/// Returns the fleet accumulator and the merged pipeline metrics — both
/// must equal what [`crate::Daemon`] reports after serving the same fleet,
/// regardless of shard count, interleaving, shedding, panics, or resume
/// cycles.
pub fn batch_reference(cfg: &ServeConfig) -> (FleetAccumulator, MetricsSnapshot) {
    let gen = FleetGenerator::new(cfg.fleet.clone()).with_gen_mode(cfg.gen_mode);
    let mut kernel = FleetKernel::new();
    let controller = fresh_controller(cfg);
    let mut acc = FleetAccumulator::new();
    let mut metrics = MetricsObserver::new().snapshot();
    for link in 0..cfg.n_links() {
        let done = process_link(&mut kernel, &controller, &gen, cfg, link);
        acc.merge(done.acc);
        metrics.merge(&done.metrics);
    }
    (acc, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_reference_accumulator_matches_generator_sweep() {
        let cfg = {
            let mut c = ServeConfig::small();
            c.fleet.n_fibers = 2;
            c.fleet.wavelengths_per_fiber = 4;
            c
        };
        let (acc, metrics) = batch_reference(&cfg);
        let gen = FleetGenerator::new(cfg.fleet.clone()).with_gen_mode(cfg.gen_mode);
        let plain = gen.fleet_analysis_with(&cfg.controller.table, cfg.mode);
        assert_eq!(
            serde_json::to_string(&acc).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "per-link serve processing must not disturb the telemetry pipeline"
        );
        let n = cfg.n_links() as u64;
        let decisions = metrics.counters["controller.decisions.hold"]
            + metrics.counters["controller.decisions.step"]
            + metrics.counters["controller.decisions.down"];
        assert_eq!(decisions, n, "one decision per link");
        assert_eq!(metrics.counters["fleet.links"], n);
    }

    #[test]
    fn process_link_is_shard_agnostic() {
        let cfg = ServeConfig::small();
        let gen = FleetGenerator::new(cfg.fleet.clone()).with_gen_mode(cfg.gen_mode);
        let ctrl_a = fresh_controller(&cfg);
        let ctrl_b = fresh_controller(&cfg);
        let mut k_a = FleetKernel::new();
        let mut k_b = FleetKernel::new();
        // Same link through two different kernel/controller instances
        // (with unrelated history on one of them).
        let _ = process_link(&mut k_b, &ctrl_b, &gen, &cfg, 3);
        let a = process_link(&mut k_a, &ctrl_a, &gen, &cfg, 7);
        let b = process_link(&mut k_b, &ctrl_b, &gen, &cfg, 7);
        assert_eq!(
            serde_json::to_string(&a.acc).unwrap(),
            serde_json::to_string(&b.acc).unwrap()
        );
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.feasible_gbps, b.feasible_gbps);
    }
}
