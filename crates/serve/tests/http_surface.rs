//! The daemon's HTTP surface, exercised over real sockets.

use rwc_serve::{Daemon, HttpServer, ServeConfig};
use rwc_telemetry::FleetConfig;
use rwc_util::time::SimDuration;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply.split(' ').nth(1).unwrap().parse::<u16>().unwrap();
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn http_surface_serves_ingest_metrics_capacity_and_shutdown() {
    let mut cfg = ServeConfig::for_fleet(FleetConfig {
        seed: 77,
        n_fibers: 2,
        wavelengths_per_fiber: 4,
        horizon: SimDuration::from_days(7),
        ..FleetConfig::paper()
    });
    cfg.n_shards = 2;
    let shutdown = Arc::new(AtomicBool::new(false));
    cfg.shutdown = Some(shutdown.clone());
    let n_links = 8;

    let daemon = Daemon::start(cfg).unwrap();
    let server = HttpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let daemon = Arc::new(daemon);
    let server_thread = {
        let daemon = Arc::clone(&daemon);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || server.run(&daemon, &shutdown))
    };

    let (status, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    let (status, body) = request(&addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ready\":true"));
    assert!(body.contains(&format!("\"links_total\":{n_links}")));
    assert!(body.contains("\"shard\":1"));

    // Capacity before any work: known link is 404 (not yet analysed),
    // unknown link is 404 (outside fleet), junk is 400.
    assert_eq!(request(&addr, "GET", "/capacity/0", "").0, 404);
    assert_eq!(request(&addr, "GET", "/capacity/999", "").0, 404);
    assert_eq!(request(&addr, "GET", "/capacity/x", "").0, 400);

    let (status, body) = request(&addr, "POST", "/ingest", "0-3 4 5 6 7");
    assert_eq!(status, 200);
    assert!(body.contains("\"accepted\":8"), "got {body}");
    let (_, body) = request(&addr, "POST", "/ingest", "0-7");
    assert!(body.contains("\"duplicates\":8"), "got {body}");
    assert_eq!(request(&addr, "POST", "/ingest", "nonsense").0, 400);

    let start = Instant::now();
    loop {
        let (_, body) = request(&addr, "GET", "/readyz", "");
        if body.contains(&format!("\"links_completed\":{n_links}")) {
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(20), "fleet did not complete");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (status, body) = request(&addr, "GET", "/capacity/0", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"feasible_gbps\":"), "got {body}");

    let (status, body) = request(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"serve.links_completed\":8"), "got {body}");
    assert!(body.contains("\"serve.http_requests\":"));
    assert!(body.contains("\"fleet.links\":8"));

    assert_eq!(request(&addr, "GET", "/nope", "").0, 404);

    let (status, body) = request(&addr, "POST", "/shutdown", "");
    assert_eq!((status, body.as_str()), (200, "{\"draining\":true}"));
    server_thread.join().unwrap();
    assert!(shutdown.load(Ordering::Acquire));

    let daemon = Arc::into_inner(daemon).expect("server thread released its handle");
    let report = daemon.drain().unwrap();
    assert_eq!(report.links_completed, n_links as u64);
    assert_eq!(report.counter("serve.duplicates"), 8);
}
