//! Sharded-ingestion determinism properties.
//!
//! The daemon's whole value rests on one promise: *operational* choices —
//! shard count, queue sizing, shed policy, ingest order and chunking —
//! never change the *pipeline* result. These properties pin that promise
//! on randomized inputs with serialized JSON as the oracle (every f64 bit
//! participates), mirroring the harness's `resume_props` suite.

use proptest::prelude::*;
use rwc_serve::{batch_reference, Daemon, ServeConfig, ShedPolicy};
use rwc_telemetry::{FleetConfig, GenMode};
use rwc_util::rng::Xoshiro256;
use rwc_util::time::SimDuration;
use std::time::{Duration, Instant};

/// Small randomized fleets: a handful of links, short horizons.
fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    (0u64..1_000_000, 1usize..3, 2usize..7, 5u64..12).prop_map(
        |(seed, n_fibers, wavelengths_per_fiber, days)| FleetConfig {
            seed,
            n_fibers,
            wavelengths_per_fiber,
            horizon: SimDuration::from_days(days),
            ..FleetConfig::paper()
        },
    )
}

/// Re-offers the whole fleet until every link completes (duplicates are
/// idempotent; rejections under tiny queues retry on the next pass).
fn drive_to_completion(daemon: &Daemon, order: &[usize]) {
    let n = daemon.n_links() as u64;
    let start = Instant::now();
    while daemon.completed_links() < n {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon failed to converge: {}/{} links",
            daemon.completed_links(),
            n
        );
        daemon.ingest(order).expect("daemon accepts ingest while healthy");
        std::thread::sleep(Duration::from_millis(2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any shard count, queue capacity, shed policy and ingest order
    /// produces the byte-identical accumulator and merged pipeline
    /// metrics of the single-threaded batch pass.
    #[test]
    fn sharded_serving_is_byte_identical_to_batch(
        fleet in fleet_strategy(),
        n_shards in 1usize..6,
        queue_capacity in 1usize..9,
        shed_oldest in proptest::bool::ANY,
        batch_gen in proptest::bool::ANY,
        order_seed in 0u64..1_000_000,
    ) {
        let mut cfg = ServeConfig::for_fleet(fleet);
        cfg.n_shards = n_shards;
        cfg.queue_capacity = queue_capacity;
        cfg.shed_policy =
            if shed_oldest { ShedPolicy::ShedOldest } else { ShedPolicy::RejectNewest };
        cfg.gen_mode = if batch_gen { GenMode::Batch } else { GenMode::Legacy };
        let (want_acc, want_metrics) = batch_reference(&cfg);

        let daemon = Daemon::start(cfg).expect("valid config starts");
        let mut order: Vec<usize> = (0..daemon.n_links()).collect();
        Xoshiro256::seed_from_u64(order_seed).shuffle(&mut order);
        drive_to_completion(&daemon, &order);
        let report = daemon.drain().expect("clean drain");

        prop_assert_eq!(
            serde_json::to_string(&report.accumulator).unwrap(),
            serde_json::to_string(&want_acc).unwrap(),
            "accumulator must not depend on sharding"
        );
        prop_assert_eq!(
            report.pipeline_metrics.to_json(),
            want_metrics.to_json(),
            "pipeline metrics must not depend on sharding"
        );

        // The overload ledger closes exactly: every admission is either a
        // completion or an accounted shed/drop; queues are empty after a
        // drain. (Requeues keep the original admission open, so they are
        // deliberately absent from both sides.)
        let admissions = report.counter("serve.ingested");
        let removals = report.counter("serve.links_completed")
            + report.counter("serve.shed_oldest")
            + report.counter("serve.shed_deadline")
            + report.counter("serve.inflight_drops");
        prop_assert_eq!(admissions, removals, "overload ledger must close after drain");
        prop_assert_eq!(report.links_completed, report.accumulator.len() as u64);
    }
}

/// Counter-based batch generation through the daemon: the accumulator is
/// byte-identical across shard counts and to the single-threaded batch
/// reference — shard placement never perturbs the counter streams.
#[test]
fn batch_gen_serving_is_shard_count_invariant() {
    let mut cfg = ServeConfig::small();
    cfg.fleet.n_fibers = 2;
    cfg.fleet.wavelengths_per_fiber = 3;
    cfg.gen_mode = GenMode::Batch;
    let (want_acc, want_metrics) = batch_reference(&cfg);
    for n_shards in [1, 3, 5] {
        let mut c = cfg.clone();
        c.n_shards = n_shards;
        let daemon = Daemon::start(c).expect("valid config starts");
        let order: Vec<usize> = (0..daemon.n_links()).collect();
        drive_to_completion(&daemon, &order);
        let report = daemon.drain().expect("clean drain");
        assert_eq!(
            serde_json::to_string(&report.accumulator).unwrap(),
            serde_json::to_string(&want_acc).unwrap(),
            "batch-gen accumulator must not depend on shard count ({n_shards})"
        );
        assert_eq!(
            report.pipeline_metrics.to_json(),
            want_metrics.to_json(),
            "batch-gen metrics must not depend on shard count ({n_shards})"
        );
    }
}
