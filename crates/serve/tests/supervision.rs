//! Supervisor policy: restart budgets, checkpoint fallback, exact shed
//! accounting.
//!
//! Chaos panics are injected through the harness [`ChaosPlan`] — for the
//! daemon, `panic_chunks` holds *link ids* and `poison_attempts` bounds
//! how many processing attempts of a poisoned link panic the owning
//! shard. Because the per-link attempt counter is global (not per shard),
//! the failure scripts below are fully deterministic.

use rwc_harness::{chaos, ChaosPlan, RetryPolicy};
use rwc_serve::{
    batch_reference, Daemon, ServeCheckpointConfig, ServeConfig, ServeError, ShedPolicy,
};
use rwc_telemetry::FleetConfig;
use rwc_util::time::SimDuration;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A fleet small enough for millisecond tests (8 links).
fn tiny_fleet(seed: u64) -> FleetConfig {
    FleetConfig {
        seed,
        n_fibers: 2,
        wavelengths_per_fiber: 4,
        horizon: SimDuration::from_days(7),
        ..FleetConfig::paper()
    }
}

fn tiny_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::for_fleet(tiny_fleet(seed));
    cfg.n_shards = 2;
    cfg.restart = RetryPolicy {
        budget: 1,
        base_backoff: Duration::from_millis(1),
        jitter: 0.0,
        seed,
    };
    cfg
}

fn tmp_dir(tag: &str, seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rwc_serve_{tag}_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn all_links(daemon: &Daemon) -> Vec<usize> {
    (0..daemon.n_links()).collect()
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < Duration::from_secs(20), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn drive_to_completion(daemon: &Daemon) {
    let links = all_links(daemon);
    let n = links.len() as u64;
    wait_for("fleet completion", || {
        if daemon.completed_links() < n {
            daemon.ingest(&links).expect("ingest while converging");
            false
        } else {
            true
        }
    });
}

/// Completes the fleet one link at a time, offering only into empty
/// queues — so shed counters asserted exactly elsewhere in the test
/// cannot move (the test thread is the only producer).
fn drive_gently(daemon: &Daemon) {
    for link in 0..daemon.n_links() {
        wait_for("single-link completion", || {
            if daemon.capacity(link).is_some() {
                return true;
            }
            let queued: usize =
                daemon.shard_statuses().iter().map(|s| s.queue_depth).sum();
            if queued == 0 {
                daemon.ingest(&[link]).expect("single-link ingest");
            }
            false
        });
    }
}

fn chaos_on_link(link: u64, poison_attempts: u32, seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        panic_chunks: BTreeSet::from([link]),
        kill_after_chunks: None,
        poison_attempts,
    }
}

#[test]
fn one_panic_restarts_the_shard_and_converges() {
    let mut cfg = tiny_config(11);
    cfg.chaos = Some(chaos_on_link(3, 1, 11));
    let (want_acc, want_metrics) = batch_reference(&cfg);
    let daemon = Daemon::start(cfg).unwrap();
    drive_to_completion(&daemon);
    assert!(daemon.is_ready(), "one panic stays within the restart budget");
    let report = daemon.drain().unwrap();
    assert_eq!(report.counter("serve.shard_panics"), 1);
    assert_eq!(report.counter("serve.shard_restarts"), 1);
    assert_eq!(report.counter("serve.requeued"), 1);
    assert_eq!(report.counter("serve.shards_unhealthy"), 0);
    assert_eq!(
        serde_json::to_string(&report.accumulator).unwrap(),
        serde_json::to_string(&want_acc).unwrap()
    );
    assert_eq!(report.pipeline_metrics.to_json(), want_metrics.to_json());
}

#[test]
fn budget_exhaustion_marks_shard_unhealthy_and_reroutes() {
    let mut cfg = tiny_config(12);
    // Attempts 0 and 1 panic; the shard's budget of 1 is spent on the
    // first restart, so the second panic takes it out of rotation. The
    // orphaned link reroutes to the other shard, whose attempt 2 passes.
    cfg.chaos = Some(chaos_on_link(3, 2, 12));
    let (want_acc, _) = batch_reference(&cfg);
    let daemon = Daemon::start(cfg).unwrap();
    drive_to_completion(&daemon);
    wait_for("unhealthy shard in /readyz", || !daemon.is_ready());
    let statuses = daemon.shard_statuses();
    assert_eq!(statuses.iter().filter(|s| !s.healthy).count(), 1);
    assert!(daemon.readyz_json().contains("\"ready\":false"));
    let report = daemon.drain().unwrap();
    assert_eq!(report.counter("serve.shard_panics"), 2);
    assert_eq!(report.counter("serve.shard_restarts"), 1);
    assert_eq!(report.counter("serve.shards_unhealthy"), 1);
    // Result bytes are untouched by the whole failure script.
    assert_eq!(
        serde_json::to_string(&report.accumulator).unwrap(),
        serde_json::to_string(&want_acc).unwrap()
    );
}

#[test]
fn losing_every_shard_is_a_typed_failure() {
    let mut cfg = tiny_config(13);
    // A link that panics forever takes out both shards in turn.
    cfg.chaos = Some(chaos_on_link(3, u32::MAX, 13));
    let daemon = Daemon::start(cfg).unwrap();
    daemon.ingest(&all_links(&daemon)).unwrap();
    wait_for("both shards unhealthy", || {
        daemon.shard_statuses().iter().all(|s| !s.healthy)
    });
    match daemon.drain() {
        Err(ServeError::ShardFailed { .. }) => {}
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}

/// Every [`rwc_harness::CheckpointError`] variant, exercised through the
/// daemon's two-epoch fallback: corruption and version mutations reject
/// the current epoch and restore from `.prev`; a foreign fingerprint
/// rejects both; an unreadable file is a hard error.
#[test]
fn corrupt_checkpoints_fall_back_to_previous_epoch() {
    type Corruption = fn(&str) -> String;
    let corruptions: [(&str, Corruption); 3] = [
        ("bitflip", |t| chaos::corrupt_bit_flip(t, 7)),
        ("truncate", |t| chaos::corrupt_truncate(t, 7)),
        ("version", chaos::corrupt_version_bump),
    ];
    for (tag, corrupt) in corruptions {
        let dir = tmp_dir(tag, 14);
        let mut cfg = tiny_config(14);
        cfg.checkpoint = Some(ServeCheckpointConfig { dir: dir.clone(), every_links: 1 });
        let (want_acc, _) = batch_reference(&cfg);

        // Run to completion twice so both epochs exist, then corrupt the
        // current epoch of every shard.
        let daemon = Daemon::start(cfg.clone()).unwrap();
        drive_to_completion(&daemon);
        daemon.drain().unwrap();
        let daemon = Daemon::start(cfg.clone()).unwrap();
        daemon.drain().unwrap(); // rotates: current -> .prev
        for shard in 0..cfg.n_shards {
            let path = dir.join(format!("shard-{shard}.ckpt"));
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, corrupt(&text)).unwrap();
        }

        let daemon = Daemon::start(cfg.clone()).unwrap();
        assert_eq!(
            daemon.completed_links(),
            daemon.n_links() as u64,
            "{tag}: previous epoch restores the whole fleet"
        );
        let metrics = daemon.serve_metrics();
        assert_eq!(
            metrics.counters["serve.checkpoint_fallbacks"], cfg.n_shards as u64,
            "{tag}: every shard fell back"
        );
        assert_eq!(metrics.counters["serve.checkpoints_rejected"], cfg.n_shards as u64);
        let report = daemon.drain().unwrap();
        assert_eq!(
            serde_json::to_string(&report.accumulator).unwrap(),
            serde_json::to_string(&want_acc).unwrap(),
            "{tag}: fallback restores byte-identical results"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn foreign_fingerprint_rejects_both_epochs_and_starts_fresh() {
    let dir = tmp_dir("foreign", 15);
    let mut cfg = tiny_config(15);
    cfg.checkpoint = Some(ServeCheckpointConfig { dir: dir.clone(), every_links: 1 });
    let daemon = Daemon::start(cfg.clone()).unwrap();
    drive_to_completion(&daemon);
    daemon.drain().unwrap();
    let daemon = Daemon::start(cfg.clone()).unwrap();
    daemon.drain().unwrap(); // both epochs populated

    // Same directory, different fleet seed: ConfigMismatch on every file.
    let mut foreign = cfg.clone();
    foreign.fleet.seed = 999;
    let daemon = Daemon::start(foreign.clone()).unwrap();
    assert_eq!(daemon.completed_links(), 0, "nothing restores from a foreign sweep");
    let metrics = daemon.serve_metrics();
    assert_eq!(
        metrics.counters["serve.checkpoints_rejected"],
        2 * cfg.n_shards as u64,
        "both epochs of every shard are rejected"
    );
    drive_to_completion(&daemon);
    let report = daemon.drain().unwrap();
    let (want_acc, _) = batch_reference(&foreign);
    assert_eq!(
        serde_json::to_string(&report.accumulator).unwrap(),
        serde_json::to_string(&want_acc).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_checkpoint_is_a_hard_io_error() {
    let dir = tmp_dir("io", 16);
    let mut cfg = tiny_config(16);
    cfg.checkpoint = Some(ServeCheckpointConfig { dir: dir.clone(), every_links: 1 });
    // A directory where the checkpoint file should be: reads fail with a
    // real I/O error, which must propagate instead of "falling back".
    std::fs::create_dir_all(dir.join("shard-0.ckpt")).unwrap();
    match Daemon::start(cfg) {
        Err(ServeError::Checkpoint(rwc_harness::CheckpointError::Io(_))) => {}
        other => panic!("expected a checkpoint I/O error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reject_newest_counts_exactly_the_injected_overload() {
    let mut cfg = tiny_config(17);
    cfg.n_shards = 1;
    cfg.queue_capacity = 3;
    cfg.shed_policy = ShedPolicy::RejectNewest;
    let daemon = Daemon::start(cfg).unwrap();
    daemon.pause_processing();
    let receipt = daemon.ingest(&all_links(&daemon)).unwrap();
    assert_eq!(receipt.accepted, 3, "queue capacity bounds admissions");
    assert_eq!(receipt.rejected, 5, "the rest are rejected, not dropped");
    assert_eq!(receipt.shed, 0);
    let metrics = daemon.serve_metrics();
    assert_eq!(metrics.counters["serve.ingested"], 3);
    assert_eq!(metrics.counters["serve.rejected"], 5);
    daemon.resume_processing();
    drive_to_completion(&daemon);
    let report = daemon.drain().unwrap();
    assert_eq!(report.counter("serve.links_completed"), 8);
    assert_eq!(report.counter("serve.ingested"), 8, "rejected links re-ingested");
}

#[test]
fn shed_oldest_counts_exactly_the_evicted_links() {
    let mut cfg = tiny_config(18);
    cfg.n_shards = 1;
    cfg.queue_capacity = 3;
    cfg.shed_policy = ShedPolicy::ShedOldest;
    let daemon = Daemon::start(cfg).unwrap();
    daemon.pause_processing();
    let receipt = daemon.ingest(&all_links(&daemon)).unwrap();
    assert_eq!(receipt.accepted, 8, "shed-oldest always admits the newest");
    assert_eq!(receipt.shed, 5, "8 offers through a 3-deep queue evict 5");
    assert_eq!(receipt.rejected, 0);
    let metrics = daemon.serve_metrics();
    assert_eq!(metrics.counters["serve.shed_oldest"], 5);
    daemon.resume_processing();
    drive_gently(&daemon);
    let report = daemon.drain().unwrap();
    // Ledger: 8 first-pass + 5 re-ingested admissions = 8 completions + 5
    // sheds.
    assert_eq!(report.counter("serve.ingested"), 13);
    assert_eq!(report.counter("serve.links_completed"), 8);
    assert_eq!(report.counter("serve.shed_oldest"), 5);
}

#[test]
fn deadline_expiry_sheds_stale_work_exactly() {
    let mut cfg = tiny_config(19);
    cfg.n_shards = 1;
    cfg.queue_capacity = 16;
    cfg.deadline = Some(Duration::from_millis(5));
    let daemon = Daemon::start(cfg).unwrap();
    daemon.pause_processing();
    daemon.ingest(&all_links(&daemon)).unwrap();
    std::thread::sleep(Duration::from_millis(30)); // everything goes stale
    daemon.resume_processing();
    wait_for("stale queue drained", || {
        daemon.serve_metrics().counters["serve.shed_deadline"] == 8
    });
    assert_eq!(daemon.completed_links(), 0, "every first-pass link expired");
    drive_gently(&daemon);
    let report = daemon.drain().unwrap();
    assert_eq!(report.counter("serve.shed_deadline"), 8);
    assert_eq!(report.counter("serve.links_completed"), 8);
}
