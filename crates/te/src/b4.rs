//! B4-style max-min fair tunnel allocation.
//!
//! B4 (Jain et al., SIGCOMM'13) routes each flow group over a small set of
//! pre-computed tunnels and allocates bandwidth max-min fairly by
//! progressively filling all groups at the same rate, freezing a group when
//! its demand is met or all of its tunnels hit a bottleneck. We reproduce
//! that with k-shortest-path tunnel groups and quantised filling (B4
//! likewise quantises allocation into discrete steps).
//!
//! Tunnels are computed on the *flow network* (not the WAN), so the solver
//! remains oblivious to fake upgrade edges — the property §4 requires.

use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_flow::EPS;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// B4-style solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct B4Te {
    /// Tunnels per commodity.
    pub k_tunnels: usize,
    /// Allocation quantum (Gbps per filling round).
    pub quantum: f64,
}

impl Default for B4Te {
    fn default() -> Self {
        Self { k_tunnels: 4, quantum: 1.0 }
    }
}

#[derive(PartialEq)]
struct Entry {
    dist: f64,
    node: usize,
}

impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Edge-disjoint-ish k shortest paths by hop count: repeated Dijkstra,
/// suppressing the previous path's edges. (Cheaper than full Yen on flow
/// networks and gives well-spread tunnels, which is what B4 wants.)
fn tunnels(
    n: usize,
    edges: &[(usize, usize)],
    adj: &[Vec<usize>],
    usable: &[bool],
    src: usize,
    dst: usize,
    k: usize,
) -> Vec<Vec<usize>> {
    let mut suppressed = vec![false; edges.len()];
    let mut found = Vec::new();
    for _ in 0..k {
        // Dijkstra by hop count over non-suppressed, usable edges.
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Entry { dist: 0.0, node: src });
        while let Some(Entry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &ei in &adj[u] {
                if suppressed[ei] || !usable[ei] {
                    continue;
                }
                let v = edges[ei].1;
                if d + 1.0 < dist[v] {
                    dist[v] = d + 1.0;
                    parent[v] = Some(ei);
                    heap.push(Entry { dist: d + 1.0, node: v });
                }
            }
        }
        if !dist[dst].is_finite() {
            break;
        }
        let mut path = Vec::new();
        let mut v = dst;
        let mut complete = true;
        while v != src {
            let Some(ei) = parent[v] else {
                complete = false;
                break;
            };
            path.push(ei);
            suppressed[ei] = true;
            v = edges[ei].0;
        }
        if !complete {
            break;
        }
        path.reverse();
        found.push(path);
    }
    found
}

impl TeAlgorithm for B4Te {
    fn name(&self) -> &'static str {
        "b4"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if self.k_tunnels == 0 {
            return Err(TeError::InvalidConfig {
                algorithm: self.name(),
                detail: "need at least one tunnel".into(),
            });
        }
        if self.quantum <= 0.0 {
            return Err(TeError::InvalidConfig {
                algorithm: self.name(),
                detail: format!("quantum must be positive, got {}", self.quantum),
            });
        }
        let net = &problem.net;
        let n = net.n_nodes();
        let edges: Vec<(usize, usize)> = net.edges().iter().map(|e| (e.from, e.to)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(u, _)) in edges.iter().enumerate() {
            adj[u].push(i);
        }
        let usable: Vec<bool> = net.edges().iter().map(|e| e.capacity > EPS).collect();

        // Tunnel groups per commodity.
        let groups: Vec<Vec<Vec<usize>>> = problem
            .commodities
            .iter()
            .map(|c| tunnels(n, &edges, &adj, &usable, c.source, c.sink, self.k_tunnels))
            .collect();

        let mut residual: Vec<f64> = net.edges().iter().map(|e| e.capacity).collect();
        let mut routed = vec![0.0; problem.commodities.len()];
        let mut edge_flows = vec![0.0; net.n_edges()];
        let mut frozen: Vec<bool> = groups.iter().map(|g| g.is_empty()).collect();

        // Progressive filling: each round gives every unfrozen commodity
        // one quantum (or its remaining demand) along its first tunnel with
        // room. A commodity freezes when satisfied or when no tunnel has
        // residual capacity.
        loop {
            let mut progressed = false;
            for (ki, c) in problem.commodities.iter().enumerate() {
                if frozen[ki] {
                    continue;
                }
                let want = (c.demand - routed[ki]).min(self.quantum);
                if want <= EPS {
                    frozen[ki] = true;
                    continue;
                }
                // First tunnel with enough bottleneck for *some* progress.
                let mut placed = false;
                for tunnel in &groups[ki] {
                    let bottleneck =
                        tunnel.iter().map(|&ei| residual[ei]).fold(f64::INFINITY, f64::min);
                    if bottleneck > EPS {
                        let amount = want.min(bottleneck);
                        for &ei in tunnel {
                            residual[ei] -= amount;
                            edge_flows[ei] += amount;
                        }
                        routed[ki] += amount;
                        placed = true;
                        progressed = true;
                        break;
                    }
                }
                if !placed {
                    frozen[ki] = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let total = routed.iter().sum();
        Ok(TeSolution { routed, edge_flows, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn single_demand_fills_tunnels() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        // 250 G demand over a topology with 100 G direct + detours.
        dm.add(a, b, Gbps(250.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = B4Te::default().solve(&p);
        sol.validate(&p).unwrap();
        // Direct (100) + the edge-disjoint detour A-C-D-B (100) ⇒ 200.
        assert!(sol.total > 150.0, "total={}", sol.total);
    }

    #[test]
    fn max_min_fairness_between_competitors() {
        // Two equal demands sharing one bottleneck must split it evenly.
        let wan = builders::ring(3, 300.0);
        let r0 = wan.node_by_name("R0").unwrap();
        let r1 = wan.node_by_name("R1").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(r0, r1, Gbps(500.0), Priority::Elastic);
        dm.add(r0, r1, Gbps(500.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = B4Te::default().solve(&p);
        sol.validate(&p).unwrap();
        // 200 G total reachable (direct + detour); fairness ⇒ ~100 each.
        assert!((sol.routed[0] - sol.routed[1]).abs() <= 2.0 + 1e-9,
            "unfair split: {:?}", sol.routed);
        assert!(sol.total > 190.0, "total={}", sol.total);
    }

    #[test]
    fn small_demand_fully_satisfied() {
        let wan = builders::abilene();
        let sea = wan.node_by_name("SEA").unwrap();
        let nyc = wan.node_by_name("NYC").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(sea, nyc, Gbps(40.0), Priority::Interactive);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = B4Te::default().solve(&p);
        sol.validate(&p).unwrap();
        assert!((sol.routed[0] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_demand_freezes() {
        let mut wan = rwc_topology::wan::WanTopology::new();
        let a = wan.add_node("A", None);
        let b = wan.add_node("B", None);
        let c = wan.add_node("C", None);
        wan.add_link(a, b, 100.0);
        let mut dm = DemandMatrix::new();
        dm.add(a, c, Gbps(10.0), Priority::Elastic);
        dm.add(a, b, Gbps(10.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = B4Te::default().solve(&p);
        sol.validate(&p).unwrap();
        assert_eq!(sol.routed[0], 0.0);
        assert!((sol.routed[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn more_tunnels_never_hurt() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, d, Gbps(400.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let one = B4Te { k_tunnels: 1, quantum: 1.0 }.solve(&p);
        let four = B4Te { k_tunnels: 4, quantum: 1.0 }.solve(&p);
        assert!(four.total >= one.total - 1e-9, "k=4 {} vs k=1 {}", four.total, one.total);
        assert!(four.total > one.total + 10.0, "extra tunnels should add capacity");
    }
}
