//! MPLS-TE-style CSPF baseline.
//!
//! Distributed MPLS-TE places each LSP independently: constrained shortest
//! path first — take the shortest path (by hop count here) among links
//! with enough *remaining* bandwidth for the whole reservation, in demand
//! order, no coordination. This is the "before SDN" baseline the paper's
//! TE discussion starts from: it is order-dependent and leaves throughput
//! on the table under contention, which makes the gains of centralised TE
//! (and of dynamic capacity) visible in the experiments.

use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_flow::EPS;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// CSPF configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CspfTe {
    /// If true, a demand that cannot be placed whole is dropped entirely
    /// (classic single-LSP semantics). If false, it is split greedily
    /// across successive constrained shortest paths.
    pub unsplittable: bool,
}

#[derive(PartialEq)]
struct Entry {
    dist: f64,
    node: usize,
}

impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path among edges with residual ≥ `need`; returns edge list.
fn constrained_shortest_path(
    n: usize,
    edges: &[(usize, usize)],
    adj: &[Vec<usize>],
    residual: &[f64],
    need: f64,
    src: usize,
    dst: usize,
) -> Option<Vec<usize>> {
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Entry { dist: 0.0, node: src });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &ei in &adj[u] {
            // Unusable if it cannot fit the reservation or is exhausted.
            if residual[ei] + EPS < need || residual[ei] <= EPS {
                continue;
            }
            let v = edges[ei].1;
            if d + 1.0 < dist[v] {
                dist[v] = d + 1.0;
                parent[v] = Some(ei);
                heap.push(Entry { dist: d + 1.0, node: v });
            }
        }
    }
    if !dist[dst].is_finite() {
        return None;
    }
    let mut path = Vec::new();
    let mut v = dst;
    while v != src {
        let ei = parent[v]?;
        path.push(ei);
        v = edges[ei].0;
    }
    path.reverse();
    Some(path)
}

impl TeAlgorithm for CspfTe {
    fn name(&self) -> &'static str {
        "cspf"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        let net = &problem.net;
        let n = net.n_nodes();
        let edges: Vec<(usize, usize)> = net.edges().iter().map(|e| (e.from, e.to)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(u, _)) in edges.iter().enumerate() {
            adj[u].push(i);
        }
        let mut residual: Vec<f64> = net.edges().iter().map(|e| e.capacity).collect();
        let mut routed = vec![0.0; problem.commodities.len()];
        let mut edge_flows = vec![0.0; net.n_edges()];

        for (ki, c) in problem.commodities.iter().enumerate() {
            if c.demand <= EPS {
                continue;
            }
            if self.unsplittable {
                // One LSP carrying the full demand or nothing.
                if let Some(path) = constrained_shortest_path(
                    n, &edges, &adj, &residual, c.demand, c.source, c.sink,
                ) {
                    for &ei in &path {
                        residual[ei] -= c.demand;
                        edge_flows[ei] += c.demand;
                    }
                    routed[ki] = c.demand;
                }
            } else {
                let mut remaining = c.demand;
                while remaining > EPS {
                    // Any positive-residual path; reserve as much as fits.
                    let Some(path) = constrained_shortest_path(
                        n, &edges, &adj, &residual, EPS, c.source, c.sink,
                    ) else {
                        break;
                    };
                    let bottleneck =
                        path.iter().map(|&ei| residual[ei]).fold(remaining, f64::min);
                    if bottleneck <= EPS {
                        break;
                    }
                    for &ei in &path {
                        residual[ei] -= bottleneck;
                        edge_flows[ei] += bottleneck;
                    }
                    routed[ki] += bottleneck;
                    remaining -= bottleneck;
                }
            }
        }
        let total = routed.iter().sum();
        Ok(TeSolution { routed, edge_flows, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn ab_problem(volumes: &[f64]) -> TeProblem {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        for &v in volumes {
            dm.add(a, b, Gbps(v), Priority::Elastic);
        }
        TeProblem::from_wan(&wan, &dm)
    }

    #[test]
    fn splittable_fills_paths() {
        let p = ab_problem(&[250.0]);
        let sol = CspfTe { unsplittable: false }.solve(&p);
        sol.validate(&p).unwrap();
        assert!(sol.total > 150.0, "total={}", sol.total);
    }

    #[test]
    fn unsplittable_places_whole_or_nothing() {
        // 150 G cannot fit any single 100 G path: must be dropped.
        let p = ab_problem(&[150.0]);
        let sol = CspfTe { unsplittable: true }.solve(&p);
        sol.validate(&p).unwrap();
        assert_eq!(sol.total, 0.0);
        // 80 G fits on the direct link.
        let p = ab_problem(&[80.0]);
        let sol = CspfTe { unsplittable: true }.solve(&p);
        assert_eq!(sol.total, 80.0);
    }

    #[test]
    fn order_dependence_is_visible() {
        // First demand hogs the direct path; second detours.
        let p = ab_problem(&[100.0, 100.0]);
        let sol = CspfTe { unsplittable: true }.solve(&p);
        sol.validate(&p).unwrap();
        assert_eq!(sol.routed[0], 100.0);
        assert_eq!(sol.routed[1], 100.0, "detour via C exists");
        // Third demand of 100 must fail: no single remaining 100 G path.
        let p3 = ab_problem(&[100.0, 100.0, 100.0]);
        let sol3 = CspfTe { unsplittable: true }.solve(&p3);
        assert_eq!(sol3.routed[2], 0.0);
    }

    #[test]
    fn shortest_path_preferred() {
        let p = ab_problem(&[50.0]);
        let sol = CspfTe { unsplittable: true }.solve(&p);
        // Direct A→B edge is edge 0; all 50 G must ride it.
        assert_eq!(sol.edge_flows[0], 50.0);
        assert!(sol.edge_flows.iter().skip(1).all(|&f| f == 0.0));
    }

    #[test]
    fn zero_demand_skipped() {
        let p = ab_problem(&[0.0]);
        let sol = CspfTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
    }
}
