//! Traffic demands.
//!
//! A [`DemandMatrix`] is a list of `(from, to, volume, priority)` entries.
//! The gravity model generates realistic inter-site matrices: each site
//! gets a mass, and demand between two sites is proportional to the product
//! of their masses — the standard synthetic workload for WAN TE studies
//! (and the kind of workload SWAN/B4 report).

use rwc_topology::graph::NodeId;
use rwc_topology::wan::WanTopology;
use rwc_util::rng::Xoshiro256;
use rwc_util::units::Gbps;
use serde::{Deserialize, Serialize};

/// SWAN-style traffic priority classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive user-facing traffic (never throttled).
    Interactive,
    /// Throughput-sensitive transfers with deadlines.
    Elastic,
    /// Scavenger bulk replication.
    Background,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] =
        [Priority::Interactive, Priority::Elastic, Priority::Background];
}

/// One traffic demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Origin site.
    pub from: NodeId,
    /// Destination site.
    pub to: NodeId,
    /// Offered volume.
    pub volume: Gbps,
    /// Priority class.
    pub priority: Priority,
}

/// A set of demands.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DemandMatrix {
    demands: Vec<Demand>,
}

impl DemandMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a demand.
    pub fn add(&mut self, from: NodeId, to: NodeId, volume: Gbps, priority: Priority) {
        assert!(from != to, "self-demand");
        assert!(volume >= Gbps::ZERO, "negative demand");
        self.demands.push(Demand { from, to, volume, priority });
    }

    /// The demands.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Number of demands.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True when no demands exist.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Total offered volume.
    pub fn total(&self) -> Gbps {
        self.demands.iter().map(|d| d.volume).sum()
    }

    /// A copy with every volume multiplied by `factor` (diurnal scaling,
    /// demand-growth sweeps).
    pub fn scaled(&self, factor: f64) -> DemandMatrix {
        assert!(factor >= 0.0, "negative scale");
        DemandMatrix {
            demands: self
                .demands
                .iter()
                .map(|d| Demand { volume: d.volume * factor, ..*d })
                .collect(),
        }
    }

    /// Only the demands of one class.
    pub fn of_priority(&self, p: Priority) -> Vec<Demand> {
        self.demands.iter().copied().filter(|d| d.priority == p).collect()
    }

    /// Gravity-model matrix over a topology.
    ///
    /// Site masses are lognormal (a few big datacenters, many small PoPs);
    /// demand `i→j` is `total_volume · m_i·m_j / Σ m_a·m_b`. Every ordered
    /// pair gets an entry; the class mix is 20% interactive / 50% elastic /
    /// 30% background by volume, mirroring SWAN's reported mix.
    pub fn gravity(
        wan: &WanTopology,
        total_volume: Gbps,
        seed: u64,
    ) -> DemandMatrix {
        assert!(wan.n_nodes() >= 2, "need at least two sites");
        assert!(total_volume > Gbps::ZERO, "zero total volume");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let masses: Vec<f64> =
            (0..wan.n_nodes()).map(|_| rng.lognormal_median(1.0, 0.6)).collect();
        let mut weights = Vec::new();
        let mut pair_total = 0.0;
        for i in 0..wan.n_nodes() {
            for j in 0..wan.n_nodes() {
                if i != j {
                    let w = masses[i] * masses[j];
                    weights.push((NodeId(i), NodeId(j), w));
                    pair_total += w;
                }
            }
        }
        let mut m = DemandMatrix::new();
        for (from, to, w) in weights {
            let volume = total_volume * (w / pair_total);
            // Split the pair's volume across the three classes.
            m.add(from, to, volume * 0.2, Priority::Interactive);
            m.add(from, to, volume * 0.5, Priority::Elastic);
            m.add(from, to, volume * 0.3, Priority::Background);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;

    #[test]
    fn add_and_total() {
        let mut m = DemandMatrix::new();
        m.add(NodeId(0), NodeId(1), Gbps(100.0), Priority::Interactive);
        m.add(NodeId(1), NodeId(0), Gbps(50.0), Priority::Background);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total(), Gbps(150.0));
    }

    #[test]
    fn scaling() {
        let mut m = DemandMatrix::new();
        m.add(NodeId(0), NodeId(1), Gbps(100.0), Priority::Elastic);
        let s = m.scaled(1.25);
        assert_eq!(s.total(), Gbps(125.0));
        assert_eq!(m.total(), Gbps(100.0), "original untouched");
    }

    #[test]
    fn priority_filter() {
        let mut m = DemandMatrix::new();
        m.add(NodeId(0), NodeId(1), Gbps(10.0), Priority::Interactive);
        m.add(NodeId(0), NodeId(1), Gbps(20.0), Priority::Background);
        assert_eq!(m.of_priority(Priority::Interactive).len(), 1);
        assert_eq!(m.of_priority(Priority::Elastic).len(), 0);
    }

    #[test]
    fn gravity_totals_and_coverage() {
        let wan = builders::abilene();
        let m = DemandMatrix::gravity(&wan, Gbps(1_000.0), 42);
        // Total preserved (3 class entries per ordered pair).
        assert!((m.total().value() - 1_000.0).abs() < 1e-6);
        assert_eq!(m.len(), 11 * 10 * 3);
        // Class mix: 20/50/30.
        let vol = |p: Priority| -> f64 {
            m.of_priority(p).iter().map(|d| d.volume.value()).sum()
        };
        assert!((vol(Priority::Interactive) - 200.0).abs() < 1e-6);
        assert!((vol(Priority::Elastic) - 500.0).abs() < 1e-6);
        assert!((vol(Priority::Background) - 300.0).abs() < 1e-6);
    }

    #[test]
    fn gravity_deterministic_and_skewed() {
        let wan = builders::abilene();
        let a = DemandMatrix::gravity(&wan, Gbps(500.0), 7);
        let b = DemandMatrix::gravity(&wan, Gbps(500.0), 7);
        assert_eq!(a, b);
        // Lognormal masses ⇒ some pairs dominate.
        let mut volumes: Vec<f64> = a.demands().iter().map(|d| d.volume.value()).collect();
        volumes.sort_unstable_by(f64::total_cmp);
        let max = volumes.last().unwrap();
        let median = volumes[volumes.len() / 2];
        assert!(max / median > 3.0, "max={max} median={median}");
    }

    #[test]
    #[should_panic]
    fn self_demand_rejected() {
        let mut m = DemandMatrix::new();
        m.add(NodeId(3), NodeId(3), Gbps(1.0), Priority::Elastic);
    }
}
