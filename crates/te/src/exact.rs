//! LP-exact traffic engineering.
//!
//! Solves the maximum-total-throughput multicommodity problem exactly via
//! the simplex solver in `rwc-lp`. The LP has `K·E` variables, so this is
//! for small/medium instances — Abilene-scale topologies with tens of
//! demands — where it serves as the optimality reference for the heuristic
//! solvers and for the Theorem 1 cross-validation.

use crate::problem::{EdgeOrigin, TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_lp::model::{LinearProgram, LpBuilder, Relation};
use rwc_lp::simplex::{LpBackend, LpOutcome, SimplexSolver, Solution, SolverStats};
use rwc_lp::{SparseLp, SparseLpBuilder, SparseSimplexSolver};
use rwc_obs::{Event, Observer};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Exact LP-based solver.
///
/// With the default `throughput_weight`, edge costs act as a lexicographic
/// tie-breaker: the LP first maximises total throughput, then (among
/// optimal throughputs) minimises `Σ flow·cost`. This is exactly the
/// min-penalty behaviour the paper's Theorem 1 construction expects from
/// the TE algorithm on an augmented graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactTe {
    /// Objective weight of a routed unit relative to one unit of edge
    /// cost. Must dwarf any plausible per-unit cost.
    pub throughput_weight: f64,
    /// Which simplex core to run. Defaults to the sparse revised simplex;
    /// [`LpBackend::Dense`] is the legacy escape hatch.
    pub backend: LpBackend,
}

impl Default for ExactTe {
    fn default() -> Self {
        Self { throughput_weight: 1e6, backend: LpBackend::default() }
    }
}

/// Lowers a TE problem to the max-throughput multicommodity LP: variable
/// `(ki, ei)` at `ki*m + ei`, objective = weighted net outflow at each
/// commodity's source minus edge costs, with capacity, flow-conservation
/// and demand-cap constraints. Public so the benches can solve the exact
/// LP the round engine solves.
pub fn build_lp(problem: &TeProblem, throughput_weight: f64) -> LinearProgram {
    let net = &problem.net;
    let k = problem.commodities.len();
    let m = net.n_edges();
    let mut b = LpBuilder::new();
    for c in &problem.commodities {
        for e in net.edges() {
            let outflow = if e.from == c.source {
                1.0
            } else if e.to == c.source {
                -1.0
            } else {
                0.0
            };
            b.add_var(outflow * throughput_weight - e.cost);
        }
    }
    for (ei, e) in net.edges().iter().enumerate() {
        let terms: Vec<(usize, f64)> = (0..k).map(|ki| (ki * m + ei, 1.0)).collect();
        b.add_constraint(&terms, Relation::Le, e.capacity);
    }
    for (ki, c) in problem.commodities.iter().enumerate() {
        for node in 0..net.n_nodes() {
            if node == c.source || node == c.sink {
                continue;
            }
            let mut terms = Vec::new();
            for (ei, e) in net.edges().iter().enumerate() {
                if e.from == node {
                    terms.push((ki * m + ei, 1.0));
                }
                if e.to == node {
                    terms.push((ki * m + ei, -1.0));
                }
            }
            if !terms.is_empty() {
                b.add_constraint(&terms, Relation::Eq, 0.0);
            }
        }
        // Demand cap at the source.
        let mut terms = Vec::new();
        for (ei, e) in net.edges().iter().enumerate() {
            if e.from == c.source {
                terms.push((ki * m + ei, 1.0));
            }
            if e.to == c.source {
                terms.push((ki * m + ei, -1.0));
            }
        }
        b.add_constraint(&terms, Relation::Le, c.demand);
    }
    b.build()
}

/// Lowers a TE problem straight to sparse computational form, skipping the
/// dense intermediate entirely. The layout is chosen to stay *stable under
/// edge augmentation* so the structural-pattern warm key holds across
/// dirty-link rounds:
///
/// - columns are edge-major (`ei·k + ki`): fake edges appended by the
///   Theorem 1 augmentation add columns strictly at the end;
/// - rows are `[conservation (commodity-major, every non-terminal node)]
///   [demand (per commodity)][capacity (edge order; multi-commodity
///   only)]` — appending edges appends capacity rows without shifting any
///   existing row index;
/// - with a single commodity the capacity constraint of each edge is a
///   plain column bound, so capacity drift is a bounds-only change the
///   solver absorbs without even refactorising. Multi-commodity capacity
///   drift is rhs-only, which warm-resolves equally.
///
/// Fake (upgrade) edges additionally carry a tiny index-proportional
/// objective epsilon. Linear per-unit penalties cannot distinguish
/// "concentrate the overflow on one link's ladder" from "open a second
/// link" when the totals tie (Fig. 7's worked example is exactly such a
/// tie), so which co-optimal vertex a solver lands on — and therefore how
/// many *upgrades* the translation orders — would otherwise depend on
/// pivot order. The epsilon deterministically prefers earlier-appended
/// fake edges, i.e. lower-indexed links and their ladder rungs, making
/// the translated upgrade set backend-independent. At 1e-6 per index per
/// unit flow it is far below any real penalty difference and far above
/// solver tolerances.
pub fn build_sparse_lp(problem: &TeProblem, throughput_weight: f64) -> SparseLp {
    let net = &problem.net;
    let k = problem.commodities.len();
    let m = net.n_edges();
    let n_nodes = net.n_nodes();

    // Conservation rows: one per (commodity, non-terminal node), indexed
    // commodity-major. Allocated for every such node — even currently
    // isolated ones — so the row map never depends on the edge set.
    let mut cons_row = vec![usize::MAX; k * n_nodes];
    let mut next_row = 0usize;
    for (ki, c) in problem.commodities.iter().enumerate() {
        for node in 0..n_nodes {
            if node != c.source && node != c.sink {
                cons_row[ki * n_nodes + node] = next_row;
                next_row += 1;
            }
        }
    }
    let demand_row = |ki: usize| next_row + ki;
    let cap_base = next_row + k;
    let n_rows = if k > 1 { cap_base + m } else { cap_base };

    let mut b = SparseLpBuilder::new(n_rows);
    for (ki, c) in problem.commodities.iter().enumerate() {
        b.set_row(demand_row(ki), Relation::Le, c.demand);
    }
    if k > 1 {
        for (ei, e) in net.edges().iter().enumerate() {
            b.set_row(cap_base + ei, Relation::Le, e.capacity);
        }
    }
    for r in cons_row.iter().filter(|&&r| r != usize::MAX) {
        b.set_row(*r, Relation::Eq, 0.0);
    }

    let mut entries: Vec<(usize, f64)> = Vec::with_capacity(4);
    for (ei, e) in net.edges().iter().enumerate() {
        for (ki, c) in problem.commodities.iter().enumerate() {
            entries.clear();
            let push = |entries: &mut Vec<(usize, f64)>, row: usize, v: f64| {
                if let Some(slot) = entries.iter_mut().find(|(r, _)| *r == row) {
                    slot.1 += v;
                } else {
                    entries.push((row, v));
                }
            };
            let from_row = cons_row[ki * n_nodes + e.from];
            if from_row != usize::MAX {
                push(&mut entries, from_row, 1.0);
            }
            let to_row = cons_row[ki * n_nodes + e.to];
            if to_row != usize::MAX {
                push(&mut entries, to_row, -1.0);
            }
            let mut outflow = 0.0;
            if e.from == c.source {
                outflow += 1.0;
            }
            if e.to == c.source {
                outflow -= 1.0;
            }
            if outflow != 0.0 {
                push(&mut entries, demand_row(ki), outflow);
            }
            if k > 1 {
                push(&mut entries, cap_base + ei, 1.0);
            }
            entries.retain(|&(_, v)| v != 0.0);
            entries.sort_unstable_by_key(|&(r, _)| r);
            let tie_break = match problem.origins.get(ei) {
                Some(EdgeOrigin::Fake { .. }) => 1e-6 * ei as f64,
                _ => 0.0,
            };
            let objective = outflow * throughput_weight - e.cost - tie_break;
            b.push_col(objective, e.capacity, &entries);
        }
    }
    b.build()
}

/// Reorders an edge-major sparse LP point into the commodity-major layout
/// the shared extraction code expects.
fn remap_edge_major(outcome: LpOutcome, k: usize, m: usize) -> LpOutcome {
    match outcome {
        LpOutcome::Optimal(s) => {
            let mut x = vec![0.0; k * m];
            for ei in 0..m {
                for ki in 0..k {
                    x[ki * m + ei] = s.x[ei * k + ki];
                }
            }
            LpOutcome::Optimal(Solution { x, objective: s.objective })
        }
        other => other,
    }
}

/// Maps an LP outcome to a TE result, shared by the cold and warm solvers.
fn outcome_to_solution(
    outcome: LpOutcome,
    problem: &TeProblem,
    algorithm: &'static str,
) -> Result<TeSolution, TeError> {
    let k = problem.commodities.len();
    let m = problem.net.n_edges();
    let solution = match outcome {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Stalled => {
            return Err(TeError::SolverTimeout {
                algorithm,
                detail: format!("simplex exhausted its pivot budget ({k} commodities, {m} edges)"),
            })
        }
        other => {
            return Err(TeError::SolverAbort {
                algorithm,
                detail: format!("LP not optimal: {other:?}"),
            })
        }
    };
    Ok(extract_solution(&solution, problem))
}

/// Reads the per-commodity flows back out of the LP point.
fn extract_solution(solution: &Solution, problem: &TeProblem) -> TeSolution {
    let net = &problem.net;
    let k = problem.commodities.len();
    let m = net.n_edges();
    let mut routed = vec![0.0; k];
    let mut edge_flows = vec![0.0; m];
    for (ki, c) in problem.commodities.iter().enumerate() {
        let mut net_out = 0.0;
        for (ei, e) in net.edges().iter().enumerate() {
            let f = solution.x[ki * m + ei];
            edge_flows[ei] += f;
            if e.from == c.source {
                net_out += f;
            }
            if e.to == c.source {
                net_out -= f;
            }
        }
        routed[ki] = net_out.max(0.0);
    }
    let total = routed.iter().sum();
    TeSolution { routed, edge_flows, total }
}

impl TeAlgorithm for ExactTe {
    fn name(&self) -> &'static str {
        "exact-lp"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(TeSolution {
                routed: vec![],
                edge_flows: vec![0.0; problem.net.n_edges()],
                total: 0.0,
            });
        }
        let k = problem.commodities.len();
        let m = problem.net.n_edges();
        let outcome = match self.backend {
            LpBackend::Dense => {
                let lp = build_lp(problem, self.throughput_weight);
                SimplexSolver::new().solve(&lp)
            }
            LpBackend::Sparse => {
                let sp = build_sparse_lp(problem, self.throughput_weight);
                remap_edge_major(SparseSimplexSolver::new().solve_sparse(&sp), k, m)
            }
        };
        outcome_to_solution(outcome, problem, self.name())
    }
}

/// Warm-started LP-exact solver for *sequences* of similar problems.
///
/// Same LP as [`ExactTe`], but the simplex engine (and its last optimal
/// basis) persists across `try_solve` calls: when consecutive rounds see
/// the same problem shape with drifted capacities — exactly what the
/// dynamic-capacity round loop produces — the solve skips Phase I and
/// resumes from the previous basis, falling back to a cold solve when the
/// basis no longer refactorises feasible. Warm and cold solves agree on
/// the optimal objective to tolerance; among degenerate optima the argmax
/// may differ, so determinism-sensitive comparisons should pin objectives,
/// not flow vectors.
#[derive(Debug)]
pub struct IncrementalExactTe {
    /// The LP formulation knobs (including the backend), shared with the
    /// cold solver.
    pub base: ExactTe,
    solver: RefCell<SimplexSolver>,
    sparse_solver: RefCell<SparseSimplexSolver>,
    obs: Arc<dyn Observer>,
}

impl Default for IncrementalExactTe {
    fn default() -> Self {
        Self {
            base: ExactTe::default(),
            solver: RefCell::default(),
            sparse_solver: RefCell::default(),
            obs: rwc_obs::noop(),
        }
    }
}

impl IncrementalExactTe {
    /// A fresh solver with the default throughput weight and no basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh solver pinned to an explicit LP backend.
    pub fn with_backend(backend: LpBackend) -> Self {
        let mut te = Self::default();
        te.base.backend = backend;
        te
    }

    /// Attaches an observer: per-solve `lp.*` counters plus
    /// [`Event::WarmSolve`]/[`Event::ColdFallback`] events.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = obs;
    }

    /// Arms the solve-deadline watchdog on the underlying simplex engine:
    /// a warm attempt running past `timeout` is aborted into the existing
    /// cold-fallback path; a cold attempt running past it surfaces as
    /// [`TeError::SolverTimeout`] instead of hanging the round.
    pub fn set_solve_timeout(&self, timeout: Option<Duration>) {
        self.solver.borrow_mut().set_solve_timeout(timeout);
        self.sparse_solver.borrow_mut().set_solve_timeout(timeout);
    }

    /// Chaos hook: sleeps this long before every simplex pivot, forcing a
    /// slow solve so watchdog behaviour can be driven deterministically.
    pub fn set_pivot_delay(&self, delay: Option<Duration>) {
        self.solver.borrow_mut().set_pivot_delay(delay);
        self.sparse_solver.borrow_mut().set_pivot_delay(delay);
    }

    /// Publishes the delta between two [`SolverStats`] readings.
    fn publish_solve(&self, before: SolverStats, after: SolverStats) {
        let pivots = after.pivots - before.pivots;
        self.obs.incr("lp.pivots", pivots);
        self.obs.incr("lp.warm_attempts", after.warm_attempts - before.warm_attempts);
        self.obs.incr("lp.warm_hits", after.warm_hits - before.warm_hits);
        self.obs.incr("lp.cold_solves", after.cold_solves - before.cold_solves);
        self.obs.incr("lp.eta_updates", after.eta_updates - before.eta_updates);
        self.obs.incr("lp.refactorizations", after.refactorizations - before.refactorizations);
        self.obs.incr("lp.pricing_scans", after.pricing_scans - before.pricing_scans);
        if after.warm_hits > before.warm_hits {
            self.obs.event(&Event::WarmSolve { pivots });
        } else if after.cold_solves > before.cold_solves {
            self.obs.event(&Event::ColdFallback { pivots });
        }
        let aborts = after.watchdog_aborts - before.watchdog_aborts;
        if aborts > 0 {
            self.obs.incr("lp.watchdog_aborts", aborts);
            self.obs.event(&Event::WatchdogAbort { pivots });
        }
        let total = after.warm_attempts;
        if total > 0 {
            self.obs.gauge("te.warm_hit_rate", after.warm_hits as f64 / total as f64);
        }
    }
}

impl TeAlgorithm for IncrementalExactTe {
    fn name(&self) -> &'static str {
        "exact-lp-warm"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(TeSolution {
                routed: vec![],
                edge_flows: vec![0.0; problem.net.n_edges()],
                total: 0.0,
            });
        }
        let enabled = self.obs.enabled();
        let outcome = match self.base.backend {
            LpBackend::Dense => {
                let lp = build_lp(problem, self.base.throughput_weight);
                let before = enabled.then(|| self.solver.borrow().stats());
                let outcome = self.solver.borrow_mut().solve(&lp);
                if let Some(before) = before {
                    self.publish_solve(before, self.solver.borrow().stats());
                }
                outcome
            }
            LpBackend::Sparse => {
                let sp = build_sparse_lp(problem, self.base.throughput_weight);
                let before = enabled.then(|| self.sparse_solver.borrow().stats());
                let outcome = self.sparse_solver.borrow_mut().solve_sparse(&sp);
                if let Some(before) = before {
                    self.publish_solve(before, self.sparse_solver.borrow().stats());
                }
                remap_edge_major(outcome, problem.commodities.len(), problem.net.n_edges())
            }
        };
        outcome_to_solution(outcome, problem, self.name())
    }

    fn warm_stats(&self) -> Option<SolverStats> {
        Some(match self.base.backend {
            LpBackend::Dense => self.solver.borrow().stats(),
            LpBackend::Sparse => self.sparse_solver.borrow().stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn exact_on_fig7_saturates() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // Max flow A→B: direct 100 + via C (A-C then C-B 100) + A-C-D-B...
        // A's outgoing capacity = 200 (A-B + A-C) ⇒ optimum exactly 200.
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }

    #[test]
    fn exact_upper_bounds_heuristics() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let exact = ExactTe::default().solve(&p);
        exact.validate(&p).unwrap();
        let swan = SwanTe::default().solve(&p);
        assert!(exact.total >= swan.total - 1e-6,
            "exact {} must dominate swan {}", exact.total, swan.total);
    }

    #[test]
    fn exact_respects_demand_caps() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(30.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        assert!((sol.routed[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem() {
        let wan = builders::fig7_example();
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = ExactTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
    }

    #[test]
    fn warm_solver_matches_cold_across_capacity_drift() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let base = TeProblem::from_wan(&wan, &dm);
        let warm = IncrementalExactTe::new();
        let cold = ExactTe::default();
        // Drift one edge's capacity up and down across rounds; the warm
        // solver must track the cold optimum each time (total throughput
        // is the LP objective up to the cost tie-breaker, so compare it).
        for cap in [100.0, 80.0, 120.0, 60.0, 100.0, 40.0, 140.0] {
            let mut p = base.clone();
            p.net.set_capacity(0, cap);
            let w = warm.solve(&p);
            let cvec = cold.solve(&p);
            w.validate(&p).unwrap();
            assert!(
                (w.total - cvec.total).abs() < 1e-6,
                "warm {} vs cold {} at cap {cap}",
                w.total,
                cvec.total
            );
        }
        let stats = warm.warm_stats().unwrap();
        assert!(stats.warm_attempts >= 6, "expected warm attempts, got {stats:?}");
        assert!(stats.warm_hits >= 1, "expected at least one warm hit, got {stats:?}");
    }

    #[test]
    fn sparse_and_dense_backends_agree() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        dm.add(b, c, Gbps(40.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sparse = ExactTe::default().solve(&p);
        let dense =
            ExactTe { backend: LpBackend::Dense, ..ExactTe::default() }.solve(&p);
        sparse.validate(&p).unwrap();
        dense.validate(&p).unwrap();
        assert!(
            (sparse.total - dense.total).abs() < 1e-6,
            "sparse {} vs dense {}",
            sparse.total,
            dense.total
        );
    }

    #[test]
    fn sparse_counters_published() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        let base = TeProblem::from_wan(&wan, &dm);
        let mut warm = IncrementalExactTe::new();
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        warm.set_observer(metrics.clone());
        for cap in [100.0, 80.0, 120.0] {
            let mut p = base.clone();
            p.net.set_capacity(0, cap);
            warm.try_solve(&p).unwrap();
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.refactorizations"] >= 1, "{snap:?}");
        assert!(snap.counters.contains_key("lp.eta_updates"), "{snap:?}");
        assert!(snap.counters.contains_key("lp.pricing_scans"), "{snap:?}");
    }

    #[test]
    fn stateless_algorithms_report_no_warm_stats() {
        assert!(ExactTe::default().warm_stats().is_none());
        assert!(SwanTe::default().warm_stats().is_none());
    }

    #[test]
    fn watchdog_surfaces_stalled_solve_as_typed_timeout() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let mut warm = IncrementalExactTe::new();
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        warm.set_observer(metrics.clone());
        warm.set_solve_timeout(Some(Duration::from_millis(1)));
        warm.set_pivot_delay(Some(Duration::from_millis(10)));
        match warm.try_solve(&p) {
            Err(crate::TeError::SolverTimeout { algorithm, .. }) => {
                assert_eq!(algorithm, "exact-lp-warm");
            }
            other => panic!("expected SolverTimeout, got {other:?}"),
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.watchdog_aborts"] >= 1, "{snap:?}");
        // Disarmed, the same problem solves to the cold optimum.
        warm.set_solve_timeout(None);
        warm.set_pivot_delay(None);
        let sol = warm.try_solve(&p).expect("solves after disarm");
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }
}
