//! LP-exact traffic engineering — the legacy entry points.
//!
//! PR 10 generalised this module into the objective zoo: the lowering
//! lives in [`crate::formulation`] (max-throughput is one of five
//! [`crate::formulation::TeObjective`]s) and the configured solver in
//! [`crate::solver::TeSolver`]. Everything here is now a thin shim kept
//! for source compatibility:
//!
//! | deprecated                          | replacement                               |
//! |-------------------------------------|-------------------------------------------|
//! | `ExactTe { backend, .. }`           | `TeSolver::builder().backend(..).build()` |
//! | `IncrementalExactTe::with_backend`  | `TeSolver::builder().backend(..).build()` |
//! | `..::set_observer` / `set_solve_timeout` | builder's `.observer(..)` / `.solve_timeout(..)` |
//! | `build_lp` / `build_sparse_lp`      | `TeFormulation::lower` + `dense_lp`/`sparse_lp` |
//!
//! The shims preserve their exact pre-zoo behaviour — algorithm names
//! (`"exact-lp"`, `"exact-lp-warm"`), LP layouts (byte-identical to the
//! formulation's max-throughput lowering), error contexts and observer
//! streams — so existing reports, memo keys and baselines don't move.

use crate::formulation::{TeFormulation, TeObjective};
use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_lp::model::LinearProgram;
use rwc_lp::simplex::{LpBackend, SimplexSolver, SolverStats};
use rwc_lp::{SparseLp, SparseSimplexSolver};
use rwc_obs::{Event, Observer};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Exact LP-based solver.
///
/// With the default `throughput_weight`, edge costs act as a lexicographic
/// tie-breaker: the LP first maximises total throughput, then (among
/// optimal throughputs) minimises `Σ flow·cost`. This is exactly the
/// min-penalty behaviour the paper's Theorem 1 construction expects from
/// the TE algorithm on an augmented graph.
#[deprecated(
    since = "0.10.0",
    note = "use `TeSolver::builder()` — e.g. \
            `TeSolver::builder().backend(LpBackend::Dense).build()?`"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactTe {
    /// Objective weight of a routed unit relative to one unit of edge
    /// cost. Must dwarf any plausible per-unit cost.
    pub throughput_weight: f64,
    /// Which simplex core to run. Defaults to the sparse revised simplex;
    /// [`LpBackend::Dense`] is the legacy escape hatch.
    pub backend: LpBackend,
}

#[allow(deprecated)]
impl Default for ExactTe {
    fn default() -> Self {
        Self { throughput_weight: 1e6, backend: LpBackend::default() }
    }
}

fn max_throughput(throughput_weight: f64) -> TeFormulation {
    TeFormulation { objective: TeObjective::MaxThroughput, throughput_weight }
}

/// Lowers a TE problem to the max-throughput multicommodity LP (variable
/// `(ki, ei)` at `ki*m + ei`; see [`crate::formulation`] for the layout
/// contract).
#[deprecated(
    since = "0.10.0",
    note = "use `TeFormulation::lower(..)?.dense_lp()`"
)]
pub fn build_lp(problem: &TeProblem, throughput_weight: f64) -> LinearProgram {
    max_throughput(throughput_weight)
        .lower(problem)
        .expect("max-throughput lowering cannot fail validation")
        .dense_lp()
}

/// Lowers a TE problem straight to sparse computational form with the
/// augmentation-stable edge-major layout and the deterministic fake-edge
/// tie-break epsilon (see [`crate::formulation`] for the full rationale:
/// fake columns and capacity rows append strictly at the end so the
/// structural warm key holds across dirty-link rounds, and the epsilon
/// makes translated upgrade sets backend-independent).
#[deprecated(
    since = "0.10.0",
    note = "use `TeFormulation::lower(..)?.sparse_lp()`"
)]
pub fn build_sparse_lp(problem: &TeProblem, throughput_weight: f64) -> SparseLp {
    max_throughput(throughput_weight)
        .lower(problem)
        .expect("max-throughput lowering cannot fail validation")
        .sparse_lp()
}

fn empty_solution(problem: &TeProblem) -> TeSolution {
    TeSolution { routed: vec![], edge_flows: vec![0.0; problem.net.n_edges()], total: 0.0 }
}

#[allow(deprecated)]
impl TeAlgorithm for ExactTe {
    fn name(&self) -> &'static str {
        "exact-lp"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(empty_solution(problem));
        }
        let lowered = max_throughput(self.throughput_weight).lower(problem)?;
        let solve = match self.backend {
            LpBackend::Dense => {
                let outcome = SimplexSolver::new().solve(&lowered.dense_lp());
                lowered.extract_dense_as(outcome, self.name())?
            }
            LpBackend::Sparse => {
                let outcome = SparseSimplexSolver::new().solve_sparse(&lowered.sparse_lp());
                lowered.extract_sparse_as(outcome, self.name())?
            }
        };
        Ok(solve.solution)
    }
}

/// Warm-started LP-exact solver for *sequences* of similar problems.
///
/// Same LP as [`ExactTe`], but the simplex engine (and its last optimal
/// basis) persists across `try_solve` calls: when consecutive rounds see
/// the same problem shape with drifted capacities — exactly what the
/// dynamic-capacity round loop produces — the solve skips Phase I and
/// resumes from the previous basis, falling back to a cold solve when the
/// basis no longer refactorises feasible. Warm and cold solves agree on
/// the optimal objective to tolerance; among degenerate optima the argmax
/// may differ, so determinism-sensitive comparisons should pin objectives,
/// not flow vectors.
#[deprecated(
    since = "0.10.0",
    note = "use `TeSolver::builder()` — the builder covers `with_backend` \
            (`.backend(..)`), `set_observer` (`.observer(..)`) and \
            `set_solve_timeout` (`.solve_timeout(..)`) in one validated call"
)]
#[allow(deprecated)]
#[derive(Debug)]
pub struct IncrementalExactTe {
    /// The LP formulation knobs (including the backend), shared with the
    /// cold solver.
    pub base: ExactTe,
    solver: RefCell<SimplexSolver>,
    sparse_solver: RefCell<SparseSimplexSolver>,
    obs: Arc<dyn Observer>,
}

#[allow(deprecated)]
impl Default for IncrementalExactTe {
    fn default() -> Self {
        Self {
            base: ExactTe::default(),
            solver: RefCell::default(),
            sparse_solver: RefCell::default(),
            obs: rwc_obs::noop(),
        }
    }
}

#[allow(deprecated)]
impl IncrementalExactTe {
    /// A fresh solver with the default throughput weight and no basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh solver pinned to an explicit LP backend.
    pub fn with_backend(backend: LpBackend) -> Self {
        let mut te = Self::default();
        te.base.backend = backend;
        te
    }

    /// Attaches an observer: per-solve `lp.*` counters plus
    /// [`Event::WarmSolve`]/[`Event::ColdFallback`] events.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = obs;
    }

    /// Arms the solve-deadline watchdog on the underlying simplex engine:
    /// a warm attempt running past `timeout` is aborted into the existing
    /// cold-fallback path; a cold attempt running past it surfaces as
    /// [`TeError::SolverTimeout`] instead of hanging the round.
    pub fn set_solve_timeout(&self, timeout: Option<Duration>) {
        self.solver.borrow_mut().set_solve_timeout(timeout);
        self.sparse_solver.borrow_mut().set_solve_timeout(timeout);
    }

    /// Chaos hook: sleeps this long before every simplex pivot, forcing a
    /// slow solve so watchdog behaviour can be driven deterministically.
    pub fn set_pivot_delay(&self, delay: Option<Duration>) {
        self.solver.borrow_mut().set_pivot_delay(delay);
        self.sparse_solver.borrow_mut().set_pivot_delay(delay);
    }

    /// Publishes the delta between two [`SolverStats`] readings.
    fn publish_solve(&self, before: SolverStats, after: SolverStats) {
        let pivots = after.pivots - before.pivots;
        self.obs.incr("lp.pivots", pivots);
        self.obs.incr("lp.warm_attempts", after.warm_attempts - before.warm_attempts);
        self.obs.incr("lp.warm_hits", after.warm_hits - before.warm_hits);
        self.obs.incr("lp.cold_solves", after.cold_solves - before.cold_solves);
        self.obs.incr("lp.eta_updates", after.eta_updates - before.eta_updates);
        self.obs.incr("lp.refactorizations", after.refactorizations - before.refactorizations);
        self.obs.incr("lp.pricing_scans", after.pricing_scans - before.pricing_scans);
        if after.warm_hits > before.warm_hits {
            self.obs.event(&Event::WarmSolve { pivots });
        } else if after.cold_solves > before.cold_solves {
            self.obs.event(&Event::ColdFallback { pivots });
        }
        let aborts = after.watchdog_aborts - before.watchdog_aborts;
        if aborts > 0 {
            self.obs.incr("lp.watchdog_aborts", aborts);
            self.obs.event(&Event::WatchdogAbort { pivots });
        }
        let total = after.warm_attempts;
        if total > 0 {
            self.obs.gauge("te.warm_hit_rate", after.warm_hits as f64 / total as f64);
        }
    }
}

#[allow(deprecated)]
impl TeAlgorithm for IncrementalExactTe {
    fn name(&self) -> &'static str {
        "exact-lp-warm"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(empty_solution(problem));
        }
        let lowered = max_throughput(self.base.throughput_weight).lower(problem)?;
        let enabled = self.obs.enabled();
        let solve = match self.base.backend {
            LpBackend::Dense => {
                let lp = lowered.dense_lp();
                let before = enabled.then(|| self.solver.borrow().stats());
                let outcome = self.solver.borrow_mut().solve(&lp);
                if let Some(before) = before {
                    self.publish_solve(before, self.solver.borrow().stats());
                }
                lowered.extract_dense_as(outcome, self.name())?
            }
            LpBackend::Sparse => {
                let sp = lowered.sparse_lp();
                let before = enabled.then(|| self.sparse_solver.borrow().stats());
                let outcome = self.sparse_solver.borrow_mut().solve_sparse(&sp);
                if let Some(before) = before {
                    self.publish_solve(before, self.sparse_solver.borrow().stats());
                }
                lowered.extract_sparse_as(outcome, self.name())?
            }
        };
        Ok(solve.solution)
    }

    fn warm_stats(&self) -> Option<SolverStats> {
        Some(match self.base.backend {
            LpBackend::Dense => self.solver.borrow().stats(),
            LpBackend::Sparse => self.sparse_solver.borrow().stats(),
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn exact_on_fig7_saturates() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // Max flow A→B: direct 100 + via C (A-C then C-B 100) + A-C-D-B...
        // A's outgoing capacity = 200 (A-B + A-C) ⇒ optimum exactly 200.
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }

    #[test]
    fn exact_upper_bounds_heuristics() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let exact = ExactTe::default().solve(&p);
        exact.validate(&p).unwrap();
        let swan = SwanTe::default().solve(&p);
        assert!(exact.total >= swan.total - 1e-6,
            "exact {} must dominate swan {}", exact.total, swan.total);
    }

    #[test]
    fn exact_respects_demand_caps() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(30.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        assert!((sol.routed[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem() {
        let wan = builders::fig7_example();
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = ExactTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
    }

    #[test]
    fn warm_solver_matches_cold_across_capacity_drift() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let base = TeProblem::from_wan(&wan, &dm);
        let warm = IncrementalExactTe::new();
        let cold = ExactTe::default();
        // Drift one edge's capacity up and down across rounds; the warm
        // solver must track the cold optimum each time (total throughput
        // is the LP objective up to the cost tie-breaker, so compare it).
        for cap in [100.0, 80.0, 120.0, 60.0, 100.0, 40.0, 140.0] {
            let mut p = base.clone();
            p.net.set_capacity(0, cap);
            let w = warm.solve(&p);
            let cvec = cold.solve(&p);
            w.validate(&p).unwrap();
            assert!(
                (w.total - cvec.total).abs() < 1e-6,
                "warm {} vs cold {} at cap {cap}",
                w.total,
                cvec.total
            );
        }
        let stats = warm.warm_stats().unwrap();
        assert!(stats.warm_attempts >= 6, "expected warm attempts, got {stats:?}");
        assert!(stats.warm_hits >= 1, "expected at least one warm hit, got {stats:?}");
    }

    #[test]
    fn sparse_and_dense_backends_agree() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        dm.add(b, c, Gbps(40.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sparse = ExactTe::default().solve(&p);
        let dense =
            ExactTe { backend: LpBackend::Dense, ..ExactTe::default() }.solve(&p);
        sparse.validate(&p).unwrap();
        dense.validate(&p).unwrap();
        assert!(
            (sparse.total - dense.total).abs() < 1e-6,
            "sparse {} vs dense {}",
            sparse.total,
            dense.total
        );
    }

    #[test]
    fn sparse_counters_published() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        let base = TeProblem::from_wan(&wan, &dm);
        let mut warm = IncrementalExactTe::new();
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        warm.set_observer(metrics.clone());
        for cap in [100.0, 80.0, 120.0] {
            let mut p = base.clone();
            p.net.set_capacity(0, cap);
            warm.try_solve(&p).unwrap();
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.refactorizations"] >= 1, "{snap:?}");
        assert!(snap.counters.contains_key("lp.eta_updates"), "{snap:?}");
        assert!(snap.counters.contains_key("lp.pricing_scans"), "{snap:?}");
    }

    #[test]
    fn stateless_algorithms_report_no_warm_stats() {
        assert!(ExactTe::default().warm_stats().is_none());
        assert!(SwanTe::default().warm_stats().is_none());
    }

    #[test]
    fn watchdog_surfaces_stalled_solve_as_typed_timeout() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let mut warm = IncrementalExactTe::new();
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        warm.set_observer(metrics.clone());
        warm.set_solve_timeout(Some(Duration::from_millis(1)));
        warm.set_pivot_delay(Some(Duration::from_millis(10)));
        match warm.try_solve(&p) {
            Err(crate::TeError::SolverTimeout { algorithm, .. }) => {
                assert_eq!(algorithm, "exact-lp-warm");
            }
            other => panic!("expected SolverTimeout, got {other:?}"),
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.watchdog_aborts"] >= 1, "{snap:?}");
        // Disarmed, the same problem solves to the cold optimum.
        warm.set_solve_timeout(None);
        warm.set_pivot_delay(None);
        let sol = warm.try_solve(&p).expect("solves after disarm");
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }
}
