//! LP-exact traffic engineering.
//!
//! Solves the maximum-total-throughput multicommodity problem exactly via
//! the simplex solver in `rwc-lp`. The LP has `K·E` variables, so this is
//! for small/medium instances — Abilene-scale topologies with tens of
//! demands — where it serves as the optimality reference for the heuristic
//! solvers and for the Theorem 1 cross-validation.

use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_lp::model::{LinearProgram, LpBuilder, Relation};
use rwc_lp::simplex::{solve, LpOutcome, SimplexSolver, Solution, SolverStats};
use rwc_obs::{Event, Observer};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Exact LP-based solver.
///
/// With the default `throughput_weight`, edge costs act as a lexicographic
/// tie-breaker: the LP first maximises total throughput, then (among
/// optimal throughputs) minimises `Σ flow·cost`. This is exactly the
/// min-penalty behaviour the paper's Theorem 1 construction expects from
/// the TE algorithm on an augmented graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactTe {
    /// Objective weight of a routed unit relative to one unit of edge
    /// cost. Must dwarf any plausible per-unit cost.
    pub throughput_weight: f64,
}

impl Default for ExactTe {
    fn default() -> Self {
        Self { throughput_weight: 1e6 }
    }
}

/// Lowers a TE problem to the max-throughput multicommodity LP: variable
/// `(ki, ei)` at `ki*m + ei`, objective = weighted net outflow at each
/// commodity's source minus edge costs, with capacity, flow-conservation
/// and demand-cap constraints. Public so the benches can solve the exact
/// LP the round engine solves.
pub fn build_lp(problem: &TeProblem, throughput_weight: f64) -> LinearProgram {
    let net = &problem.net;
    let k = problem.commodities.len();
    let m = net.n_edges();
    let mut b = LpBuilder::new();
    for c in &problem.commodities {
        for e in net.edges() {
            let outflow = if e.from == c.source {
                1.0
            } else if e.to == c.source {
                -1.0
            } else {
                0.0
            };
            b.add_var(outflow * throughput_weight - e.cost);
        }
    }
    for (ei, e) in net.edges().iter().enumerate() {
        let terms: Vec<(usize, f64)> = (0..k).map(|ki| (ki * m + ei, 1.0)).collect();
        b.add_constraint(&terms, Relation::Le, e.capacity);
    }
    for (ki, c) in problem.commodities.iter().enumerate() {
        for node in 0..net.n_nodes() {
            if node == c.source || node == c.sink {
                continue;
            }
            let mut terms = Vec::new();
            for (ei, e) in net.edges().iter().enumerate() {
                if e.from == node {
                    terms.push((ki * m + ei, 1.0));
                }
                if e.to == node {
                    terms.push((ki * m + ei, -1.0));
                }
            }
            if !terms.is_empty() {
                b.add_constraint(&terms, Relation::Eq, 0.0);
            }
        }
        // Demand cap at the source.
        let mut terms = Vec::new();
        for (ei, e) in net.edges().iter().enumerate() {
            if e.from == c.source {
                terms.push((ki * m + ei, 1.0));
            }
            if e.to == c.source {
                terms.push((ki * m + ei, -1.0));
            }
        }
        b.add_constraint(&terms, Relation::Le, c.demand);
    }
    b.build()
}

/// Maps an LP outcome to a TE result, shared by the cold and warm solvers.
fn outcome_to_solution(
    outcome: LpOutcome,
    problem: &TeProblem,
    algorithm: &'static str,
) -> Result<TeSolution, TeError> {
    let k = problem.commodities.len();
    let m = problem.net.n_edges();
    let solution = match outcome {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Stalled => {
            return Err(TeError::SolverTimeout {
                algorithm,
                detail: format!("simplex exhausted its pivot budget ({k} commodities, {m} edges)"),
            })
        }
        other => {
            return Err(TeError::SolverAbort {
                algorithm,
                detail: format!("LP not optimal: {other:?}"),
            })
        }
    };
    Ok(extract_solution(&solution, problem))
}

/// Reads the per-commodity flows back out of the LP point.
fn extract_solution(solution: &Solution, problem: &TeProblem) -> TeSolution {
    let net = &problem.net;
    let k = problem.commodities.len();
    let m = net.n_edges();
    let mut routed = vec![0.0; k];
    let mut edge_flows = vec![0.0; m];
    for (ki, c) in problem.commodities.iter().enumerate() {
        let mut net_out = 0.0;
        for (ei, e) in net.edges().iter().enumerate() {
            let f = solution.x[ki * m + ei];
            edge_flows[ei] += f;
            if e.from == c.source {
                net_out += f;
            }
            if e.to == c.source {
                net_out -= f;
            }
        }
        routed[ki] = net_out.max(0.0);
    }
    let total = routed.iter().sum();
    TeSolution { routed, edge_flows, total }
}

impl TeAlgorithm for ExactTe {
    fn name(&self) -> &'static str {
        "exact-lp"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(TeSolution {
                routed: vec![],
                edge_flows: vec![0.0; problem.net.n_edges()],
                total: 0.0,
            });
        }
        let lp = build_lp(problem, self.throughput_weight);
        outcome_to_solution(solve(&lp), problem, self.name())
    }
}

/// Warm-started LP-exact solver for *sequences* of similar problems.
///
/// Same LP as [`ExactTe`], but the simplex engine (and its last optimal
/// basis) persists across `try_solve` calls: when consecutive rounds see
/// the same problem shape with drifted capacities — exactly what the
/// dynamic-capacity round loop produces — the solve skips Phase I and
/// resumes from the previous basis, falling back to a cold solve when the
/// basis no longer refactorises feasible. Warm and cold solves agree on
/// the optimal objective to tolerance; among degenerate optima the argmax
/// may differ, so determinism-sensitive comparisons should pin objectives,
/// not flow vectors.
#[derive(Debug)]
pub struct IncrementalExactTe {
    /// The LP formulation knobs, shared with the cold solver.
    pub base: ExactTe,
    solver: RefCell<SimplexSolver>,
    obs: Arc<dyn Observer>,
}

impl Default for IncrementalExactTe {
    fn default() -> Self {
        Self { base: ExactTe::default(), solver: RefCell::default(), obs: rwc_obs::noop() }
    }
}

impl IncrementalExactTe {
    /// A fresh solver with the default throughput weight and no basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observer: per-solve `lp.*` counters plus
    /// [`Event::WarmSolve`]/[`Event::ColdFallback`] events.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = obs;
    }

    /// Arms the solve-deadline watchdog on the underlying simplex engine:
    /// a warm attempt running past `timeout` is aborted into the existing
    /// cold-fallback path; a cold attempt running past it surfaces as
    /// [`TeError::SolverTimeout`] instead of hanging the round.
    pub fn set_solve_timeout(&self, timeout: Option<Duration>) {
        self.solver.borrow_mut().set_solve_timeout(timeout);
    }

    /// Chaos hook: sleeps this long before every simplex pivot, forcing a
    /// slow solve so watchdog behaviour can be driven deterministically.
    pub fn set_pivot_delay(&self, delay: Option<Duration>) {
        self.solver.borrow_mut().set_pivot_delay(delay);
    }

    /// Publishes the delta between two [`SolverStats`] readings.
    fn publish_solve(&self, before: SolverStats, after: SolverStats) {
        let pivots = after.pivots - before.pivots;
        self.obs.incr("lp.pivots", pivots);
        self.obs.incr("lp.warm_attempts", after.warm_attempts - before.warm_attempts);
        self.obs.incr("lp.warm_hits", after.warm_hits - before.warm_hits);
        self.obs.incr("lp.cold_solves", after.cold_solves - before.cold_solves);
        if after.warm_hits > before.warm_hits {
            self.obs.event(&Event::WarmSolve { pivots });
        } else if after.cold_solves > before.cold_solves {
            self.obs.event(&Event::ColdFallback { pivots });
        }
        let aborts = after.watchdog_aborts - before.watchdog_aborts;
        if aborts > 0 {
            self.obs.incr("lp.watchdog_aborts", aborts);
            self.obs.event(&Event::WatchdogAbort { pivots });
        }
        let total = after.warm_attempts;
        if total > 0 {
            self.obs.gauge("te.warm_hit_rate", after.warm_hits as f64 / total as f64);
        }
    }
}

impl TeAlgorithm for IncrementalExactTe {
    fn name(&self) -> &'static str {
        "exact-lp-warm"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if problem.commodities.is_empty() {
            return Ok(TeSolution {
                routed: vec![],
                edge_flows: vec![0.0; problem.net.n_edges()],
                total: 0.0,
            });
        }
        let lp = build_lp(problem, self.base.throughput_weight);
        let enabled = self.obs.enabled();
        let before = enabled.then(|| self.solver.borrow().stats());
        let outcome = self.solver.borrow_mut().solve(&lp);
        if let Some(before) = before {
            self.publish_solve(before, self.solver.borrow().stats());
        }
        outcome_to_solution(outcome, problem, self.name())
    }

    fn warm_stats(&self) -> Option<SolverStats> {
        Some(self.solver.borrow().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn exact_on_fig7_saturates() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // Max flow A→B: direct 100 + via C (A-C then C-B 100) + A-C-D-B...
        // A's outgoing capacity = 200 (A-B + A-C) ⇒ optimum exactly 200.
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }

    #[test]
    fn exact_upper_bounds_heuristics() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let exact = ExactTe::default().solve(&p);
        exact.validate(&p).unwrap();
        let swan = SwanTe::default().solve(&p);
        assert!(exact.total >= swan.total - 1e-6,
            "exact {} must dominate swan {}", exact.total, swan.total);
    }

    #[test]
    fn exact_respects_demand_caps() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(30.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        assert!((sol.routed[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem() {
        let wan = builders::fig7_example();
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = ExactTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
    }

    #[test]
    fn warm_solver_matches_cold_across_capacity_drift() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let base = TeProblem::from_wan(&wan, &dm);
        let warm = IncrementalExactTe::new();
        let cold = ExactTe::default();
        // Drift one edge's capacity up and down across rounds; the warm
        // solver must track the cold optimum each time (total throughput
        // is the LP objective up to the cost tie-breaker, so compare it).
        for cap in [100.0, 80.0, 120.0, 60.0, 100.0, 40.0, 140.0] {
            let mut p = base.clone();
            p.net.set_capacity(0, cap);
            let w = warm.solve(&p);
            let cvec = cold.solve(&p);
            w.validate(&p).unwrap();
            assert!(
                (w.total - cvec.total).abs() < 1e-6,
                "warm {} vs cold {} at cap {cap}",
                w.total,
                cvec.total
            );
        }
        let stats = warm.warm_stats().unwrap();
        assert!(stats.warm_attempts >= 6, "expected warm attempts, got {stats:?}");
        assert!(stats.warm_hits >= 1, "expected at least one warm hit, got {stats:?}");
    }

    #[test]
    fn stateless_algorithms_report_no_warm_stats() {
        assert!(ExactTe::default().warm_stats().is_none());
        assert!(SwanTe::default().warm_stats().is_none());
    }

    #[test]
    fn watchdog_surfaces_stalled_solve_as_typed_timeout() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let mut warm = IncrementalExactTe::new();
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        warm.set_observer(metrics.clone());
        warm.set_solve_timeout(Some(Duration::from_millis(1)));
        warm.set_pivot_delay(Some(Duration::from_millis(10)));
        match warm.try_solve(&p) {
            Err(crate::TeError::SolverTimeout { algorithm, .. }) => {
                assert_eq!(algorithm, "exact-lp-warm");
            }
            other => panic!("expected SolverTimeout, got {other:?}"),
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.watchdog_aborts"] >= 1, "{snap:?}");
        // Disarmed, the same problem solves to the cold optimum.
        warm.set_solve_timeout(None);
        warm.set_pivot_delay(None);
        let sol = warm.try_solve(&p).expect("solves after disarm");
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }
}
