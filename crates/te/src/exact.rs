//! LP-exact traffic engineering.
//!
//! Solves the maximum-total-throughput multicommodity problem exactly via
//! the simplex solver in `rwc-lp`. The LP has `K·E` variables, so this is
//! for small/medium instances — Abilene-scale topologies with tens of
//! demands — where it serves as the optimality reference for the heuristic
//! solvers and for the Theorem 1 cross-validation.

use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_lp::model::{LpBuilder, Relation};
use rwc_lp::simplex::{solve, LpOutcome};

/// Exact LP-based solver.
///
/// With the default `throughput_weight`, edge costs act as a lexicographic
/// tie-breaker: the LP first maximises total throughput, then (among
/// optimal throughputs) minimises `Σ flow·cost`. This is exactly the
/// min-penalty behaviour the paper's Theorem 1 construction expects from
/// the TE algorithm on an augmented graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactTe {
    /// Objective weight of a routed unit relative to one unit of edge
    /// cost. Must dwarf any plausible per-unit cost.
    pub throughput_weight: f64,
}

impl Default for ExactTe {
    fn default() -> Self {
        Self { throughput_weight: 1e6 }
    }
}

impl TeAlgorithm for ExactTe {
    fn name(&self) -> &'static str {
        "exact-lp"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        let net = &problem.net;
        let k = problem.commodities.len();
        let m = net.n_edges();
        if k == 0 {
            return Ok(TeSolution { routed: vec![], edge_flows: vec![0.0; m], total: 0.0 });
        }
        let mut b = LpBuilder::new();
        // Variable (ki, ei) at ki*m + ei; objective = net outflow at each
        // commodity's source.
        for c in &problem.commodities {
            for e in net.edges() {
                let outflow = if e.from == c.source {
                    1.0
                } else if e.to == c.source {
                    -1.0
                } else {
                    0.0
                };
                b.add_var(outflow * self.throughput_weight - e.cost);
            }
        }
        for (ei, e) in net.edges().iter().enumerate() {
            let terms: Vec<(usize, f64)> = (0..k).map(|ki| (ki * m + ei, 1.0)).collect();
            b.add_constraint(&terms, Relation::Le, e.capacity);
        }
        for (ki, c) in problem.commodities.iter().enumerate() {
            for node in 0..net.n_nodes() {
                if node == c.source || node == c.sink {
                    continue;
                }
                let mut terms = Vec::new();
                for (ei, e) in net.edges().iter().enumerate() {
                    if e.from == node {
                        terms.push((ki * m + ei, 1.0));
                    }
                    if e.to == node {
                        terms.push((ki * m + ei, -1.0));
                    }
                }
                if !terms.is_empty() {
                    b.add_constraint(&terms, Relation::Eq, 0.0);
                }
            }
            // Demand cap at the source.
            let mut terms = Vec::new();
            for (ei, e) in net.edges().iter().enumerate() {
                if e.from == c.source {
                    terms.push((ki * m + ei, 1.0));
                }
                if e.to == c.source {
                    terms.push((ki * m + ei, -1.0));
                }
            }
            b.add_constraint(&terms, Relation::Le, c.demand);
        }
        let solution = match solve(&b.build()) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Stalled => {
                return Err(TeError::SolverTimeout {
                    algorithm: self.name(),
                    detail: format!("simplex exhausted its pivot budget ({k} commodities, {m} edges)"),
                })
            }
            other => {
                return Err(TeError::SolverAbort {
                    algorithm: self.name(),
                    detail: format!("LP not optimal: {other:?}"),
                })
            }
        };
        let mut routed = vec![0.0; k];
        let mut edge_flows = vec![0.0; m];
        for (ki, c) in problem.commodities.iter().enumerate() {
            let mut net_out = 0.0;
            for (ei, e) in net.edges().iter().enumerate() {
                let f = solution.x[ki * m + ei];
                edge_flows[ei] += f;
                if e.from == c.source {
                    net_out += f;
                }
                if e.to == c.source {
                    net_out -= f;
                }
            }
            routed[ki] = net_out.max(0.0);
        }
        let total = routed.iter().sum();
        Ok(TeSolution { routed, edge_flows, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn exact_on_fig7_saturates() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // Max flow A→B: direct 100 + via C (A-C then C-B 100) + A-C-D-B...
        // A's outgoing capacity = 200 (A-B + A-C) ⇒ optimum exactly 200.
        assert!((sol.total - 200.0).abs() < 1e-6, "total={}", sol.total);
    }

    #[test]
    fn exact_upper_bounds_heuristics() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let exact = ExactTe::default().solve(&p);
        exact.validate(&p).unwrap();
        let swan = SwanTe::default().solve(&p);
        assert!(exact.total >= swan.total - 1e-6,
            "exact {} must dominate swan {}", exact.total, swan.total);
    }

    #[test]
    fn exact_respects_demand_caps() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(30.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = ExactTe::default().solve(&p);
        assert!((sol.routed[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem() {
        let wan = builders::fig7_example();
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = ExactTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
    }
}
