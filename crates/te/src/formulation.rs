//! The TE objective zoo: one formulation layer, many objectives.
//!
//! PR 9's sparse revised simplex gave the TE layer one *backend* with two
//! lowerings (`build_lp` / `build_sparse_lp`); this module generalises the
//! pair into a [`TeFormulation`] that owns, per [`TeObjective`]:
//!
//! - the **variable/row layout** of both the dense and the sparse LP,
//!   chosen to stay *augmentation-stable* where the objective permits it
//!   (fake-edge columns and capacity rows strictly appended, scalar
//!   columns pinned at index 0) so the revised simplex's structural warm
//!   key keeps matching across dirty-link rounds;
//! - the **translation back** from an LP point to a [`TeSolution`] (plus
//!   objective-specific extras in [`TeSolve`]);
//! - **deterministic tie-breaking** so the translated upgrade/reduction
//!   sets are backend-independent (see `build_sparse_lp`'s epsilon note).
//!
//! The objectives:
//!
//! | objective            | LP shape                                          |
//! |----------------------|---------------------------------------------------|
//! | [`MaxThroughput`]    | today's weighted max-flow MCF                     |
//! | [`MinMlu`]           | TROD-style min-`mlu` over per-TM envelopes `U`    |
//! | [`MaxConcurrentFlow`]| max `λ ≤ 1` with every demand routed at `λ·d_k`   |
//! | [`Unsplittable`]     | the paper's Fig. 8 node-splitting gadget          |
//! | [`CapacityReduction`]| max-throughput readout of *deletable* fake slices |
//!
//! [`MaxThroughput`]: TeObjective::MaxThroughput
//! [`MinMlu`]: TeObjective::MinMlu
//! [`MaxConcurrentFlow`]: TeObjective::MaxConcurrentFlow
//! [`Unsplittable`]: TeObjective::Unsplittable
//! [`CapacityReduction`]: TeObjective::CapacityReduction

use crate::problem::{EdgeOrigin, TeProblem, TeSolution};
use crate::TeError;
use rwc_flow::network::FlowNetwork;
use rwc_lp::model::{LinearProgram, LpBuilder, Relation};
use rwc_lp::simplex::{LpOutcome, Solution};
use rwc_lp::{SparseLp, SparseLpBuilder};
use rwc_topology::wan::LinkId;
use std::collections::BTreeMap;

/// Flow below this is "not using the slice" for capacity-reduction
/// readouts. Far above simplex tolerance, far below any real allocation.
const REDUCTION_EPS: f64 = 1e-6;

/// What the TE layer optimises for.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TeObjective {
    /// Maximise total routed volume (the original shape): throughput is
    /// rewarded at `throughput_weight` per unit, edge costs act as a
    /// lexicographic tie-breaker.
    #[default]
    MaxThroughput,
    /// Minimise the maximum link utilisation over a set of representative
    /// traffic matrices, TROD-style: each matrix is a per-commodity volume
    /// vector (parallel to `TeProblem::commodities`), the per-commodity
    /// *envelope* `U_k = max over matrices` is routed exactly, and every
    /// edge constrains `Σ flow ≤ mlu · capacity`. An empty list means
    /// "use the problem's own demands as the single matrix".
    MinMlu {
        /// Representative traffic matrices; each entry is a volume vector
        /// with one element per commodity.
        traffic_matrices: Vec<Vec<f64>>,
    },
    /// Max-concurrent-flow fairness: maximise `λ ∈ [0, 1]` such that every
    /// commodity routes exactly `λ · demand` — no commodity is starved to
    /// fatten the total.
    MaxConcurrentFlow,
    /// The paper's Fig. 8 unsplittable-upgrade gadget: every real edge
    /// with fake upgrade rungs is split through an auxiliary node whose
    /// guard edge carries the *combined* (current + upgraded) capacity, so
    /// the LP prices an upgrade as a whole-link decision rather than a
    /// freely divisible top-up.
    Unsplittable,
    /// Capacity *reduction* (fake-edge deletion instead of addition): the
    /// same max-throughput LP, but the fake edges model currently-lit
    /// capacity slices that cost to keep; slices left unused by the
    /// optimum are reported as deletable in [`TeSolve::reductions`].
    CapacityReduction,
}

impl TeObjective {
    /// Stable algorithm name for reports, memo keys and error contexts.
    pub fn algorithm_name(&self) -> &'static str {
        match self {
            TeObjective::MaxThroughput => "exact-lp:max-throughput",
            TeObjective::MinMlu { .. } => "exact-lp:min-mlu",
            TeObjective::MaxConcurrentFlow => "exact-lp:max-concurrent-flow",
            TeObjective::Unsplittable => "exact-lp:unsplittable",
            TeObjective::CapacityReduction => "exact-lp:capacity-reduction",
        }
    }
}

/// An objective-specific LP result: the shared [`TeSolution`] plus the
/// extras only some objectives produce.
#[derive(Debug, Clone, PartialEq)]
pub struct TeSolve {
    /// Flows and routed volumes on the *original* problem's edges (gadget
    /// plumbing is already folded back for [`TeObjective::Unsplittable`]).
    pub solution: TeSolution,
    /// The optimal maximum link utilisation ([`TeObjective::MinMlu`]).
    pub mlu: Option<f64>,
    /// The optimal concurrency factor ([`TeObjective::MaxConcurrentFlow`]).
    pub lambda: Option<f64>,
    /// Links whose fake capacity slices the optimum leaves unused in both
    /// directions — safely deletable ([`TeObjective::CapacityReduction`]).
    /// Sorted ascending, deterministic across backends (the fake-edge
    /// objective epsilon breaks co-optimal ties the same way everywhere).
    pub reductions: Option<Vec<LinkId>>,
}

/// A TE objective plus the lowering knobs: builds both LP backends' inputs
/// and translates their outputs back. Stateless — solvers own the simplex
/// engines, the formulation owns the shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct TeFormulation {
    /// The objective to lower.
    pub objective: TeObjective,
    /// Objective weight of the headline quantity (routed unit, `−mlu`,
    /// `λ`) relative to one unit of edge cost. Must dwarf any plausible
    /// per-unit cost so costs stay a lexicographic tie-breaker.
    pub throughput_weight: f64,
}

impl Default for TeFormulation {
    fn default() -> Self {
        Self::new(TeObjective::MaxThroughput)
    }
}

impl TeFormulation {
    /// A formulation with the default throughput weight (`1e6`).
    pub fn new(objective: TeObjective) -> Self {
        Self { objective, throughput_weight: 1e6 }
    }

    /// Stable algorithm name for reports, memo keys and error contexts.
    pub fn name(&self) -> &'static str {
        self.objective.algorithm_name()
    }

    /// Problem-independent configuration checks: finite positive weight,
    /// self-consistent traffic matrices. (Per-problem shape checks happen
    /// in [`TeFormulation::lower`].)
    pub fn validate(&self) -> Result<(), TeError> {
        let fail = |detail: String| {
            Err(TeError::InvalidConfig { algorithm: self.name(), detail })
        };
        if !self.throughput_weight.is_finite() || self.throughput_weight <= 0.0 {
            return fail(format!(
                "throughput_weight must be finite and positive, got {}",
                self.throughput_weight
            ));
        }
        if let TeObjective::MinMlu { traffic_matrices } = &self.objective {
            for (i, tm) in traffic_matrices.iter().enumerate() {
                if tm.len() != traffic_matrices[0].len() {
                    return fail(format!(
                        "traffic matrix {i} has {} commodities, matrix 0 has {}",
                        tm.len(),
                        traffic_matrices[0].len()
                    ));
                }
                if let Some(v) = tm.iter().find(|v| !v.is_finite() || **v < 0.0) {
                    return fail(format!("traffic matrix {i} has invalid volume {v}"));
                }
            }
        }
        Ok(())
    }

    /// A 64-bit FNV-1a fingerprint of everything that changes what a solve
    /// *means*: objective discriminant, weight, and (for min-MLU) the full
    /// traffic-matrix contents. The round engine folds this into its memo
    /// key so cached baselines never leak across objectives.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.throughput_weight.to_bits());
        match &self.objective {
            TeObjective::MaxThroughput => fold(1),
            TeObjective::MinMlu { traffic_matrices } => {
                fold(2);
                fold(traffic_matrices.len() as u64);
                for tm in traffic_matrices {
                    fold(tm.len() as u64);
                    for v in tm {
                        fold(v.to_bits());
                    }
                }
            }
            TeObjective::MaxConcurrentFlow => fold(3),
            TeObjective::Unsplittable => fold(4),
            TeObjective::CapacityReduction => fold(5),
        }
        h
    }

    /// Lowers the problem: resolves min-MLU envelopes, expands the Fig. 8
    /// gadget for [`TeObjective::Unsplittable`], and returns a handle that
    /// builds either backend's LP and translates its outcome back.
    pub fn lower<'p>(&self, problem: &'p TeProblem) -> Result<LoweredTe<'p>, TeError> {
        self.validate()?;
        let kind = match &self.objective {
            TeObjective::MaxThroughput => LoweredKind::Throughput { reduction: false },
            TeObjective::CapacityReduction => LoweredKind::Throughput { reduction: true },
            TeObjective::Unsplittable => LoweredKind::Throughput { reduction: false },
            TeObjective::MinMlu { traffic_matrices } => {
                let k = problem.commodities.len();
                for (i, tm) in traffic_matrices.iter().enumerate() {
                    if tm.len() != k {
                        return Err(TeError::InvalidConfig {
                            algorithm: self.name(),
                            detail: format!(
                                "traffic matrix {i} has {} volumes for {k} commodities",
                                tm.len()
                            ),
                        });
                    }
                }
                let envelopes = (0..k)
                    .map(|ki| {
                        traffic_matrices
                            .iter()
                            .map(|tm| tm[ki])
                            .fold(f64::NEG_INFINITY, f64::max)
                            .max(if traffic_matrices.is_empty() {
                                problem.commodities[ki].demand
                            } else {
                                0.0
                            })
                    })
                    .collect();
                LoweredKind::MinMlu { envelopes }
            }
            TeObjective::MaxConcurrentFlow => LoweredKind::ConcurrentFlow,
        };
        let gadget = match self.objective {
            TeObjective::Unsplittable => Some(GadgetLowering::build(problem)),
            _ => None,
        };
        Ok(LoweredTe { problem, gadget, kind, weight: self.throughput_weight, name: self.name() })
    }
}

/// Which LP shape a [`LoweredTe`] carries.
#[derive(Debug, Clone)]
enum LoweredKind {
    /// Weighted max-flow (also the unsplittable gadget's inner shape and
    /// the capacity-reduction readout).
    Throughput {
        /// Report deletable fake slices after extraction.
        reduction: bool,
    },
    /// Scalar `mlu` column plus exact-envelope demand rows.
    MinMlu {
        /// `U_k`: the per-commodity max over traffic matrices.
        envelopes: Vec<f64>,
    },
    /// Scalar `λ` column tied into every demand row.
    ConcurrentFlow,
}

/// A problem lowered under one objective: builds the dense or sparse LP
/// and translates the solver's outcome back to the original problem.
#[derive(Debug)]
pub struct LoweredTe<'p> {
    problem: &'p TeProblem,
    gadget: Option<GadgetLowering>,
    kind: LoweredKind,
    weight: f64,
    name: &'static str,
}

impl LoweredTe<'_> {
    /// The problem the LP actually routes on: the gadget expansion for
    /// unsplittable, the original otherwise.
    pub fn routing_problem(&self) -> &TeProblem {
        match &self.gadget {
            Some(g) => &g.inner,
            None => self.problem,
        }
    }

    /// Leading scalar (non-flow) variables: `mlu` or `λ`.
    fn scalar_vars(&self) -> usize {
        match self.kind {
            LoweredKind::Throughput { .. } => 0,
            LoweredKind::MinMlu { .. } | LoweredKind::ConcurrentFlow => 1,
        }
    }

    /// Lowers to the dense tableau form: scalar variables first, then flow
    /// variables commodity-major at `scalar + ki·m + ei`.
    pub fn dense_lp(&self) -> LinearProgram {
        let rp = self.routing_problem();
        match &self.kind {
            LoweredKind::Throughput { .. } => dense_throughput(rp, self.weight),
            LoweredKind::MinMlu { envelopes } => dense_min_mlu(rp, envelopes, self.weight),
            LoweredKind::ConcurrentFlow => dense_concurrent(rp, self.weight),
        }
    }

    /// Lowers straight to sparse computational form: scalar variables
    /// first, then flow variables edge-major at `scalar + ei·k + ki` (the
    /// augmentation-stable order — fake edges append columns and capacity
    /// rows strictly at the end, so the structural warm key survives
    /// dirty-link updates; the `mlu` column is the one deliberate
    /// exception, since it spans every capacity row).
    pub fn sparse_lp(&self) -> SparseLp {
        let rp = self.routing_problem();
        match &self.kind {
            LoweredKind::Throughput { .. } => sparse_throughput(rp, self.weight),
            LoweredKind::MinMlu { envelopes } => sparse_min_mlu(rp, envelopes, self.weight),
            LoweredKind::ConcurrentFlow => sparse_concurrent(rp, self.weight),
        }
    }

    /// Translates a dense-backend outcome back to the original problem.
    pub fn extract_dense(&self, outcome: LpOutcome) -> Result<TeSolve, TeError> {
        self.extract_dense_as(outcome, self.name)
    }

    /// [`LoweredTe::extract_dense`] with an explicit algorithm name in
    /// error contexts — for front-ends (the deprecated `ExactTe` shims)
    /// that report under their own name.
    pub fn extract_dense_as(
        &self,
        outcome: LpOutcome,
        algorithm: &'static str,
    ) -> Result<TeSolve, TeError> {
        let rp = self.routing_problem();
        let k = rp.commodities.len();
        let m = rp.net.n_edges();
        let point = match outcome {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Stalled => {
                return Err(TeError::SolverTimeout {
                    algorithm,
                    detail: format!(
                        "simplex exhausted its pivot budget ({k} commodities, {m} edges)"
                    ),
                })
            }
            other => {
                return Err(TeError::SolverAbort {
                    algorithm,
                    detail: format!("LP not optimal: {other:?}"),
                })
            }
        };
        let offset = self.scalar_vars();
        let (routed, inner_flows) = flows_from_point(&point.x, offset, rp);
        let edge_flows = match &self.gadget {
            Some(g) => g.map_back(&inner_flows, self.problem),
            None => inner_flows,
        };
        let total = routed.iter().sum();
        let solution = TeSolution { routed, edge_flows, total };
        let (mlu, lambda, reductions) = match &self.kind {
            LoweredKind::Throughput { reduction: false } => (None, None, None),
            LoweredKind::Throughput { reduction: true } => {
                (None, None, Some(deletable_links(self.problem, &solution.edge_flows)))
            }
            LoweredKind::MinMlu { .. } => (Some(point.x[0]), None, None),
            LoweredKind::ConcurrentFlow => (None, Some(point.x[0]), None),
        };
        Ok(TeSolve { solution, mlu, lambda, reductions })
    }

    /// Translates a sparse-backend outcome: reorders the edge-major point
    /// into the dense commodity-major layout, then extracts identically.
    pub fn extract_sparse(&self, outcome: LpOutcome) -> Result<TeSolve, TeError> {
        self.extract_sparse_as(outcome, self.name)
    }

    /// [`LoweredTe::extract_sparse`] with an explicit algorithm name in
    /// error contexts.
    pub fn extract_sparse_as(
        &self,
        outcome: LpOutcome,
        algorithm: &'static str,
    ) -> Result<TeSolve, TeError> {
        let rp = self.routing_problem();
        let k = rp.commodities.len();
        let m = rp.net.n_edges();
        self.extract_dense_as(remap_edge_major(outcome, self.scalar_vars(), k, m), algorithm)
    }
}

/// Reads per-commodity routed volumes and aggregate edge flows out of an
/// LP point whose flow variables sit commodity-major after `offset`
/// scalar variables.
fn flows_from_point(x: &[f64], offset: usize, rp: &TeProblem) -> (Vec<f64>, Vec<f64>) {
    let k = rp.commodities.len();
    let m = rp.net.n_edges();
    let mut routed = vec![0.0; k];
    let mut edge_flows = vec![0.0; m];
    for (ki, c) in rp.commodities.iter().enumerate() {
        let mut net_out = 0.0;
        for (ei, e) in rp.net.edges().iter().enumerate() {
            let f = x[offset + ki * m + ei];
            edge_flows[ei] += f;
            if e.from == c.source {
                net_out += f;
            }
            if e.to == c.source {
                net_out -= f;
            }
        }
        routed[ki] = net_out.max(0.0);
    }
    (routed, edge_flows)
}

/// Reorders a sparse (scalar-prefix + edge-major) LP point into the dense
/// (scalar-prefix + commodity-major) layout the shared extraction expects.
fn remap_edge_major(outcome: LpOutcome, scalar: usize, k: usize, m: usize) -> LpOutcome {
    match outcome {
        LpOutcome::Optimal(s) => {
            let mut x = vec![0.0; scalar + k * m];
            x[..scalar].copy_from_slice(&s.x[..scalar]);
            for ei in 0..m {
                for ki in 0..k {
                    x[scalar + ki * m + ei] = s.x[scalar + ei * k + ki];
                }
            }
            LpOutcome::Optimal(Solution { x, objective: s.objective })
        }
        other => other,
    }
}

/// Links whose every fake capacity slice carries (numerically) zero flow —
/// the capacity-reduction readout. Sorted ascending by construction.
fn deletable_links(problem: &TeProblem, edge_flows: &[f64]) -> Vec<LinkId> {
    let mut used: BTreeMap<usize, bool> = BTreeMap::new();
    for (ei, origin) in problem.origins.iter().enumerate() {
        if let EdgeOrigin::Fake { link, .. } = origin {
            let entry = used.entry(link.0).or_insert(false);
            *entry |= edge_flows[ei] > REDUCTION_EPS;
        }
    }
    used.into_iter().filter(|&(_, u)| !u).map(|(l, _)| LinkId(l)).collect()
}

// ---------------------------------------------------------------------------
// Dense lowerings (the tableau escape hatch; row order is free).
// ---------------------------------------------------------------------------

/// The original `build_lp` shape: flow variables at `ki·m + ei`, objective
/// `net-outflow·weight − cost`, capacity rows then per-commodity
/// conservation + demand-cap rows.
fn dense_throughput(rp: &TeProblem, weight: f64) -> LinearProgram {
    let net = &rp.net;
    let k = rp.commodities.len();
    let m = net.n_edges();
    let mut b = LpBuilder::new();
    for c in &rp.commodities {
        for e in net.edges() {
            b.add_var(outflow_of(e.from, e.to, c.source) * weight - e.cost);
        }
    }
    for (ei, e) in net.edges().iter().enumerate() {
        let terms: Vec<(usize, f64)> = (0..k).map(|ki| (ki * m + ei, 1.0)).collect();
        b.add_constraint(&terms, Relation::Le, e.capacity);
    }
    for (ki, c) in rp.commodities.iter().enumerate() {
        dense_conservation_rows(&mut b, rp, ki, 0);
        let terms = dense_outflow_terms(rp, ki, 0);
        b.add_constraint(&terms, Relation::Le, c.demand);
    }
    b.build()
}

/// TROD-style min-MLU: variable 0 is `mlu`, flows at `1 + ki·m + ei`;
/// every edge gets `Σ flow − cap·mlu ≤ 0`, every commodity routes its
/// envelope `U_k` exactly.
fn dense_min_mlu(rp: &TeProblem, envelopes: &[f64], weight: f64) -> LinearProgram {
    let k = rp.commodities.len();
    let m = rp.net.n_edges();
    let mut b = LpBuilder::new();
    let mlu = b.add_var(-weight);
    for _ in &rp.commodities {
        for e in rp.net.edges() {
            b.add_var(-e.cost);
        }
    }
    for (ei, e) in rp.net.edges().iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = (0..k).map(|ki| (1 + ki * m + ei, 1.0)).collect();
        terms.push((mlu, -e.capacity));
        b.add_constraint(&terms, Relation::Le, 0.0);
    }
    for (ki, &envelope) in envelopes.iter().enumerate().take(k) {
        dense_conservation_rows(&mut b, rp, ki, 1);
        let terms = dense_outflow_terms(rp, ki, 1);
        b.add_constraint(&terms, Relation::Eq, envelope);
    }
    b.build()
}

/// Max-concurrent-flow: variable 0 is `λ ≤ 1`, flows at `1 + ki·m + ei`;
/// each commodity's net outflow is pinned to `λ·d_k`.
fn dense_concurrent(rp: &TeProblem, weight: f64) -> LinearProgram {
    let k = rp.commodities.len();
    let m = rp.net.n_edges();
    let mut b = LpBuilder::new();
    let lambda = b.add_var(weight);
    for _ in &rp.commodities {
        for e in rp.net.edges() {
            b.add_var(-e.cost);
        }
    }
    b.add_constraint(&[(lambda, 1.0)], Relation::Le, 1.0);
    for (ei, e) in rp.net.edges().iter().enumerate() {
        let terms: Vec<(usize, f64)> = (0..k).map(|ki| (1 + ki * m + ei, 1.0)).collect();
        b.add_constraint(&terms, Relation::Le, e.capacity);
    }
    for (ki, c) in rp.commodities.iter().enumerate() {
        dense_conservation_rows(&mut b, rp, ki, 1);
        let mut terms = dense_outflow_terms(rp, ki, 1);
        terms.push((lambda, -c.demand));
        b.add_constraint(&terms, Relation::Eq, 0.0);
    }
    b.build()
}

/// `+1/−1` net-outflow coefficient of an edge at a commodity's source.
fn outflow_of(from: usize, to: usize, source: usize) -> f64 {
    let mut v = 0.0;
    if from == source {
        v += 1.0;
    }
    if to == source {
        v -= 1.0;
    }
    v
}

/// Adds the `inflow == outflow` equality at every non-terminal node of
/// one commodity, with flow variables offset by `offset` scalars.
fn dense_conservation_rows(b: &mut LpBuilder, rp: &TeProblem, ki: usize, offset: usize) {
    let m = rp.net.n_edges();
    let c = &rp.commodities[ki];
    for node in 0..rp.net.n_nodes() {
        if node == c.source || node == c.sink {
            continue;
        }
        let mut terms = Vec::new();
        for (ei, e) in rp.net.edges().iter().enumerate() {
            if e.from == node {
                terms.push((offset + ki * m + ei, 1.0));
            }
            if e.to == node {
                terms.push((offset + ki * m + ei, -1.0));
            }
        }
        if !terms.is_empty() {
            b.add_constraint(&terms, Relation::Eq, 0.0);
        }
    }
}

/// Net-outflow terms of one commodity at its source.
fn dense_outflow_terms(rp: &TeProblem, ki: usize, offset: usize) -> Vec<(usize, f64)> {
    let m = rp.net.n_edges();
    let c = &rp.commodities[ki];
    let mut terms = Vec::new();
    for (ei, e) in rp.net.edges().iter().enumerate() {
        if e.from == c.source {
            terms.push((offset + ki * m + ei, 1.0));
        }
        if e.to == c.source {
            terms.push((offset + ki * m + ei, -1.0));
        }
    }
    terms
}

// ---------------------------------------------------------------------------
// Sparse lowerings (augmentation-stable layouts; see `sparse_lp`'s note).
// ---------------------------------------------------------------------------

/// Conservation-row map shared by every sparse lowering: one row per
/// (commodity, non-terminal node), commodity-major, allocated for every
/// such node so the row map never depends on the edge set. Returns the
/// map (with `usize::MAX` for terminals) and the next free row index.
fn sparse_conservation_rows(rp: &TeProblem) -> (Vec<usize>, usize) {
    let n_nodes = rp.net.n_nodes();
    let k = rp.commodities.len();
    let mut cons_row = vec![usize::MAX; k * n_nodes];
    let mut next_row = 0usize;
    for (ki, c) in rp.commodities.iter().enumerate() {
        for node in 0..n_nodes {
            if node != c.source && node != c.sink {
                cons_row[ki * n_nodes + node] = next_row;
                next_row += 1;
            }
        }
    }
    (cons_row, next_row)
}

/// Accumulates an entry into a tiny per-column buffer, merging duplicates.
fn push_entry(entries: &mut Vec<(usize, f64)>, row: usize, v: f64) {
    if let Some(slot) = entries.iter_mut().find(|(r, _)| *r == row) {
        slot.1 += v;
    } else {
        entries.push((row, v));
    }
}

/// The deterministic fake-edge tie-break epsilon (see the module docs of
/// [`crate::exact`] for the full rationale): prefers earlier-appended fake
/// edges among cost-tied optima so translated upgrade/reduction sets are
/// backend-independent.
fn fake_tie_break(rp: &TeProblem, ei: usize) -> f64 {
    match rp.origins.get(ei) {
        Some(EdgeOrigin::Fake { .. }) => 1e-6 * ei as f64,
        _ => 0.0,
    }
}

/// Builds one flow column (conservation ± demand-outflow ± capacity
/// entries, sorted, deduped, zero-free) and pushes it.
#[allow(clippy::too_many_arguments)]
fn push_flow_col(
    b: &mut SparseLpBuilder,
    rp: &TeProblem,
    cons_row: &[usize],
    ei: usize,
    ki: usize,
    demand_row: usize,
    cap_row: Option<usize>,
    upper: f64,
    objective: f64,
) {
    let n_nodes = rp.net.n_nodes();
    let e = rp.net.edge(ei);
    let c = &rp.commodities[ki];
    let mut entries: Vec<(usize, f64)> = Vec::with_capacity(4);
    let from_row = cons_row[ki * n_nodes + e.from];
    if from_row != usize::MAX {
        push_entry(&mut entries, from_row, 1.0);
    }
    let to_row = cons_row[ki * n_nodes + e.to];
    if to_row != usize::MAX {
        push_entry(&mut entries, to_row, -1.0);
    }
    let outflow = outflow_of(e.from, e.to, c.source);
    if outflow != 0.0 {
        push_entry(&mut entries, demand_row, outflow);
    }
    if let Some(cap_row) = cap_row {
        push_entry(&mut entries, cap_row, 1.0);
    }
    entries.retain(|&(_, v)| v != 0.0);
    entries.sort_unstable_by_key(|&(r, _)| r);
    b.push_col(objective, upper, &entries);
}

/// The original `build_sparse_lp` shape (see [`crate::exact`]'s docs):
/// edge-major columns, `[conservation][demand][capacity (k>1)]` rows,
/// single-commodity capacities as column bounds.
fn sparse_throughput(rp: &TeProblem, weight: f64) -> SparseLp {
    let net = &rp.net;
    let k = rp.commodities.len();
    let m = net.n_edges();
    let (cons_row, next_row) = sparse_conservation_rows(rp);
    let demand_row = |ki: usize| next_row + ki;
    let cap_base = next_row + k;
    let n_rows = if k > 1 { cap_base + m } else { cap_base };

    let mut b = SparseLpBuilder::new(n_rows);
    for (ki, c) in rp.commodities.iter().enumerate() {
        b.set_row(demand_row(ki), Relation::Le, c.demand);
    }
    if k > 1 {
        for (ei, e) in net.edges().iter().enumerate() {
            b.set_row(cap_base + ei, Relation::Le, e.capacity);
        }
    }
    for r in cons_row.iter().filter(|&&r| r != usize::MAX) {
        b.set_row(*r, Relation::Eq, 0.0);
    }

    for (ei, e) in net.edges().iter().enumerate() {
        for (ki, c) in rp.commodities.iter().enumerate() {
            let outflow = outflow_of(e.from, e.to, c.source);
            let objective = outflow * weight - e.cost - fake_tie_break(rp, ei);
            let cap_row = (k > 1).then_some(cap_base + ei);
            push_flow_col(
                &mut b,
                rp,
                &cons_row,
                ei,
                ki,
                demand_row(ki),
                cap_row,
                e.capacity,
                objective,
            );
        }
    }
    b.build()
}

/// Sparse min-MLU: column 0 is `mlu` (entries `−cap_e` in every capacity
/// row), then edge-major *unbounded* flow columns; rows are
/// `[conservation][demand = U_k (Eq)][capacity ≤ 0 (always, all edges)]`.
/// Traffic-matrix drift only moves demand-row rhs values, so it rides the
/// fast-resolve warm path; capacity drift rewrites the `mlu` column's
/// values and takes the structural warm plan instead. Augmentation grows
/// the `mlu` column's pattern, so augmented rounds go cold by design.
fn sparse_min_mlu(rp: &TeProblem, envelopes: &[f64], weight: f64) -> SparseLp {
    let net = &rp.net;
    let k = rp.commodities.len();
    let m = net.n_edges();
    let (cons_row, next_row) = sparse_conservation_rows(rp);
    let demand_row = |ki: usize| next_row + ki;
    let cap_base = next_row + k;
    let n_rows = cap_base + m;

    let mut b = SparseLpBuilder::new(n_rows);
    for (ki, &envelope) in envelopes.iter().enumerate().take(k) {
        b.set_row(demand_row(ki), Relation::Eq, envelope);
    }
    for ei in 0..m {
        b.set_row(cap_base + ei, Relation::Le, 0.0);
    }
    for r in cons_row.iter().filter(|&&r| r != usize::MAX) {
        b.set_row(*r, Relation::Eq, 0.0);
    }

    // Column 0: mlu. Capacity rows are contiguous and ascending.
    let mlu_entries: Vec<(usize, f64)> = net
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.capacity != 0.0)
        .map(|(ei, e)| (cap_base + ei, -e.capacity))
        .collect();
    b.push_col(-weight, f64::INFINITY, &mlu_entries);

    for (ei, e) in net.edges().iter().enumerate() {
        for ki in 0..k {
            let objective = -e.cost - fake_tie_break(rp, ei);
            push_flow_col(
                &mut b,
                rp,
                &cons_row,
                ei,
                ki,
                demand_row(ki),
                Some(cap_base + ei),
                f64::INFINITY,
                objective,
            );
        }
    }
    b.build()
}

/// Sparse max-concurrent-flow: column 0 is `λ` (upper bound `1`, entries
/// `−d_k` in every demand row), then the usual edge-major flow columns;
/// demand rows become `net outflow − λ·d_k = 0` equalities. The `λ`
/// column's pattern touches only demand rows, so — like max-throughput —
/// the layout is fully augmentation-stable.
fn sparse_concurrent(rp: &TeProblem, weight: f64) -> SparseLp {
    let net = &rp.net;
    let k = rp.commodities.len();
    let m = net.n_edges();
    let (cons_row, next_row) = sparse_conservation_rows(rp);
    let demand_row = |ki: usize| next_row + ki;
    let cap_base = next_row + k;
    let n_rows = if k > 1 { cap_base + m } else { cap_base };

    let mut b = SparseLpBuilder::new(n_rows);
    for ki in 0..k {
        b.set_row(demand_row(ki), Relation::Eq, 0.0);
    }
    if k > 1 {
        for (ei, e) in net.edges().iter().enumerate() {
            b.set_row(cap_base + ei, Relation::Le, e.capacity);
        }
    }
    for r in cons_row.iter().filter(|&&r| r != usize::MAX) {
        b.set_row(*r, Relation::Eq, 0.0);
    }

    // Column 0: λ, bounded by 1.
    let lambda_entries: Vec<(usize, f64)> = rp
        .commodities
        .iter()
        .enumerate()
        .filter(|(_, c)| c.demand != 0.0)
        .map(|(ki, c)| (demand_row(ki), -c.demand))
        .collect();
    b.push_col(weight, 1.0, &lambda_entries);

    for (ei, e) in net.edges().iter().enumerate() {
        for ki in 0..k {
            let objective = -e.cost - fake_tie_break(rp, ei);
            let cap_row = (k > 1).then_some(cap_base + ei);
            push_flow_col(
                &mut b,
                rp,
                &cons_row,
                ei,
                ki,
                demand_row(ki),
                cap_row,
                e.capacity,
                objective,
            );
        }
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Fig. 8 unsplittable gadget.
// ---------------------------------------------------------------------------

/// Where an original edge's flow is read back from the gadget solution.
#[derive(Debug, Clone, Copy)]
enum FlowReadback {
    /// Copied straight from an inner edge.
    Copy(usize),
    /// The real member of a gadget group: `min(combined, capacity)`.
    GroupReal(usize),
    /// Fake rung `slot` of a gadget group: its share of the remainder.
    GroupFake(usize, usize),
}

/// One split link direction: guard `u→w`, internal real `w→v`, internal
/// fake rungs `w→v`.
#[derive(Debug, Clone)]
struct GadgetGroup {
    /// Inner index of the zero-cost internal real edge.
    real: usize,
    /// Inner indices of the internal fake rungs, original-index order.
    fakes: Vec<usize>,
    /// Capacity of the original real edge.
    real_cap: f64,
    /// Capacities of the original fake rungs, same order as `fakes`.
    fake_caps: Vec<f64>,
}

/// The Fig. 8 node-splitting expansion of an augmented problem.
#[derive(Debug)]
struct GadgetLowering {
    inner: TeProblem,
    groups: Vec<GadgetGroup>,
    /// Per original edge: how to read its flow out of the inner solution.
    readback: Vec<FlowReadback>,
}

impl GadgetLowering {
    /// Splits every real edge that carries fake upgrade rungs through an
    /// auxiliary node: a guard `u→w` at the *combined* capacity (current +
    /// all rungs) with the real edge's cost, a zero-cost internal real
    /// `w→v` at current capacity, and one internal fake `w→v` per rung at
    /// its capacity and penalty. The guard caps the total so an upgrade
    /// is priced against the whole link's traffic — the paper's
    /// unsplittable-upgrade semantics — while edges without rungs copy
    /// through unchanged. Deterministic: original edge order drives
    /// construction, so the inner layout (and the LP tie-breaks) never
    /// depend on map iteration order.
    fn build(problem: &TeProblem) -> GadgetLowering {
        // Fake rungs per (link, forward), in original edge order.
        let mut rungs: BTreeMap<(usize, bool), Vec<usize>> = BTreeMap::new();
        for (ei, origin) in problem.origins.iter().enumerate() {
            if let EdgeOrigin::Fake { link, forward } = origin {
                rungs.entry((link.0, *forward)).or_default().push(ei);
            }
        }
        // The real edge each rung group attaches to (first occurrence).
        let mut real_of: BTreeMap<(usize, bool), usize> = BTreeMap::new();
        for (ei, origin) in problem.origins.iter().enumerate() {
            if let EdgeOrigin::Real { link, forward } = origin {
                real_of.entry((link.0, *forward)).or_insert(ei);
            }
        }

        let mut inner = FlowNetwork::new(problem.net.n_nodes());
        let mut origins = Vec::new();
        let mut groups: Vec<GadgetGroup> = Vec::new();
        let mut readback = vec![FlowReadback::Copy(usize::MAX); problem.net.n_edges()];
        for (ei, origin) in problem.origins.iter().enumerate() {
            let e = problem.net.edge(ei);
            match origin {
                EdgeOrigin::Real { link, forward }
                    if rungs.contains_key(&(link.0, *forward))
                        && real_of[&(link.0, *forward)] == ei =>
                {
                    let fake_idx = &rungs[&(link.0, *forward)];
                    let fake_caps: Vec<f64> =
                        fake_idx.iter().map(|&fi| problem.net.edge(fi).capacity).collect();
                    let combined = e.capacity + fake_caps.iter().sum::<f64>();
                    let aux = inner.add_node();
                    inner.add_edge(e.from, aux, combined, e.cost);
                    origins.push(EdgeOrigin::Auxiliary);
                    let real = inner.add_edge(aux, e.to, e.capacity, 0.0);
                    origins.push(EdgeOrigin::Real { link: *link, forward: *forward });
                    let mut fakes = Vec::with_capacity(fake_idx.len());
                    for (slot, &fi) in fake_idx.iter().enumerate() {
                        let f = problem.net.edge(fi);
                        let inner_fake = inner.add_edge(aux, e.to, f.capacity, f.cost);
                        origins.push(EdgeOrigin::Fake { link: *link, forward: *forward });
                        fakes.push(inner_fake);
                        readback[fi] = FlowReadback::GroupFake(groups.len(), slot);
                    }
                    readback[ei] = FlowReadback::GroupReal(groups.len());
                    groups.push(GadgetGroup {
                        real,
                        fakes,
                        real_cap: e.capacity,
                        fake_caps,
                    });
                }
                EdgeOrigin::Fake { link, forward } if real_of.contains_key(&(link.0, *forward)) => {
                    // Represented inside its group; readback set above (or
                    // below, if the real edge comes later — it never does
                    // in `from_wan` + augmentation order, but the group
                    // construction keys on the real edge either way).
                }
                _ => {
                    let idx = inner.add_edge(e.from, e.to, e.capacity, e.cost);
                    origins.push(*origin);
                    readback[ei] = FlowReadback::Copy(idx);
                }
            }
        }
        let inner = TeProblem {
            net: inner,
            origins,
            commodities: problem.commodities.clone(),
            demands: problem.demands.clone(),
        };
        GadgetLowering { inner, groups, readback }
    }

    /// Folds inner-edge flows back onto the original edge set: each
    /// group's combined flow fills the real edge up to its capacity, and
    /// the remainder fills the fake rungs in ladder order (the guard edge
    /// guarantees the remainder fits). Guard/aux flows vanish.
    fn map_back(&self, inner_flows: &[f64], problem: &TeProblem) -> Vec<f64> {
        let combined: Vec<f64> = self
            .groups
            .iter()
            .map(|g| {
                inner_flows[g.real] + g.fakes.iter().map(|&fi| inner_flows[fi]).sum::<f64>()
            })
            .collect();
        let mut flows = vec![0.0; problem.net.n_edges()];
        for (ei, rb) in self.readback.iter().enumerate() {
            flows[ei] = match *rb {
                FlowReadback::Copy(idx) => {
                    if idx == usize::MAX {
                        0.0
                    } else {
                        inner_flows[idx]
                    }
                }
                FlowReadback::GroupReal(gi) => combined[gi].min(self.groups[gi].real_cap),
                FlowReadback::GroupFake(gi, slot) => {
                    let g = &self.groups[gi];
                    let mut leftover = (combined[gi] - g.real_cap).max(0.0);
                    for s in 0..slot {
                        leftover = (leftover - g.fake_caps[s]).max(0.0);
                    }
                    if slot + 1 == g.fake_caps.len() {
                        // Last rung absorbs any numerical residue so the
                        // folded flows conserve exactly.
                        leftover
                    } else {
                        leftover.min(g.fake_caps[slot])
                    }
                }
            };
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::solver::TeSolver;
    use rwc_lp::LpBackend;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn fig7_two_commodities() -> TeProblem {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(125.0), Priority::Elastic);
        dm.add(c, d, Gbps(125.0), Priority::Elastic);
        TeProblem::from_wan(&wan, &dm)
    }

    /// Adds a fake upgrade rung parallel to real edge `2·link + dir`.
    fn add_fake(p: &mut TeProblem, link: usize, forward: bool, capacity: f64, cost: f64) {
        let ei = 2 * link + usize::from(!forward);
        let e = p.net.edge(ei);
        p.net.add_edge(e.from, e.to, capacity, cost);
        p.origins.push(EdgeOrigin::Fake { link: LinkId(link), forward });
    }

    fn solve_both(objective: TeObjective, p: &TeProblem) -> (TeSolve, TeSolve) {
        let sparse = TeSolver::builder()
            .objective(objective.clone())
            .backend(LpBackend::Sparse)
            .build()
            .unwrap()
            .solve_detailed(p)
            .unwrap();
        let dense = TeSolver::builder()
            .objective(objective)
            .backend(LpBackend::Dense)
            .build()
            .unwrap()
            .solve_detailed(p)
            .unwrap();
        (sparse, dense)
    }

    #[test]
    fn min_mlu_fig7_matches_hand_optimum() {
        // One A→B envelope of 150 against A's outgoing capacity of 200
        // (A-B 100 + A-C 100): splitting 100/50 leaves the bottleneck on
        // the direct A-B link at 100/100?? No: the optimum balances at
        // A-B 85.714.. vs paths through C. The true optimum is governed by
        // the max-flow structure; assert the LP invariants instead of a
        // brittle constant, plus sparse==dense.
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(150.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let objective = TeObjective::MinMlu { traffic_matrices: vec![vec![150.0]] };
        let (s, d) = solve_both(objective, &p);
        let mlu = s.mlu.unwrap();
        assert!((mlu - d.mlu.unwrap()).abs() < 1e-6, "sparse {mlu} vs dense {:?}", d.mlu);
        // The envelope is routed exactly.
        assert!((s.solution.routed[0] - 150.0).abs() < 1e-6);
        // Realised utilisation never exceeds the reported mlu.
        let worst = s
            .solution
            .edge_flows
            .iter()
            .zip(p.net.edges())
            .filter(|(_, e)| e.capacity > 0.0)
            .map(|(f, e)| f / e.capacity)
            .fold(0.0f64, f64::max);
        assert!(worst <= mlu + 1e-6, "worst {worst} vs mlu {mlu}");
        // 150 through a 200-capacity cut needs mlu ≥ 0.75; it is exactly
        // 0.75 when the flow balances both A-exits.
        assert!((mlu - 0.75).abs() < 1e-6, "mlu {mlu}");
    }

    #[test]
    fn min_mlu_envelope_dominates_single_matrices() {
        let p = fig7_two_commodities();
        let tms = vec![vec![80.0, 20.0], vec![30.0, 90.0]];
        let objective = TeObjective::MinMlu { traffic_matrices: tms.clone() };
        let (s, d) = solve_both(objective, &p);
        let envelope_mlu = s.mlu.unwrap();
        assert!((envelope_mlu - d.mlu.unwrap()).abs() < 1e-6);
        // Envelope routes max(80,30)=80 and max(20,90)=90.
        assert!((s.solution.routed[0] - 80.0).abs() < 1e-6);
        assert!((s.solution.routed[1] - 90.0).abs() < 1e-6);
        // Each individual matrix fits within the envelope's mlu.
        for tm in &tms {
            let single = TeObjective::MinMlu { traffic_matrices: vec![tm.clone()] };
            let (st, _) = solve_both(single, &p);
            assert!(
                st.mlu.unwrap() <= envelope_mlu + 1e-6,
                "single-TM mlu {} above envelope {envelope_mlu}",
                st.mlu.unwrap()
            );
        }
    }

    #[test]
    fn concurrent_flow_shares_shortfall() {
        let p = fig7_two_commodities();
        let (s, d) = solve_both(TeObjective::MaxConcurrentFlow, &p);
        let lambda = s.lambda.unwrap();
        assert!((lambda - d.lambda.unwrap()).abs() < 1e-6);
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda {lambda}");
        // Every commodity routes exactly λ·demand — that's the fairness.
        for (ki, c) in p.commodities.iter().enumerate() {
            assert!(
                (s.solution.routed[ki] - lambda * c.demand).abs() < 1e-6,
                "commodity {ki} routed {} at lambda {lambda}",
                s.solution.routed[ki]
            );
        }
        s.solution.validate(&p).unwrap();
    }

    #[test]
    fn concurrent_flow_hits_one_when_demands_fit() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(50.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let (s, _) = solve_both(TeObjective::MaxConcurrentFlow, &p);
        assert!((s.lambda.unwrap() - 1.0).abs() < 1e-6);
        assert!((s.solution.routed[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn unsplittable_gadget_respects_guard_capacity() {
        // One link A–B (cap 100) with a fake 100-rung at penalty 1/unit:
        // the splittable LP would route 200; the gadget agrees here (the
        // guard is 200) — the *difference* shows when the gadget caps the
        // combined flow below the sum of parallel edges. Build that case:
        // real cap 100, rung 100, but guard-combined still 200 vs a
        // 300-unit demand: both objectives route 200, flows must fold back
        // onto the original edges and validate.
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(300.0), Priority::Elastic);
        let mut p = TeProblem::from_wan(&wan, &dm);
        add_fake(&mut p, 0, true, 100.0, 1.0);
        let (s, d) = solve_both(TeObjective::Unsplittable, &p);
        assert!((s.solution.total - d.solution.total).abs() < 1e-6);
        s.solution.validate(&p).unwrap();
        d.solution.validate(&p).unwrap();
        // A's outgoing cut is 300 with the rung (A-B 100 + rung 100 + A-C
        // 100): the whole demand routes, 100 of it on the fake rung.
        assert!((s.solution.total - 300.0).abs() < 1e-6, "total {}", s.solution.total);
        let fake_ei = p.net.n_edges() - 1;
        assert!((s.solution.edge_flows[fake_ei] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn unsplittable_matches_max_throughput_without_fakes() {
        // With no fake edges the gadget is the identity.
        let p = fig7_two_commodities();
        let (s, _) = solve_both(TeObjective::Unsplittable, &p);
        let (t, _) = solve_both(TeObjective::MaxThroughput, &p);
        assert!((s.solution.total - t.solution.total).abs() < 1e-6);
        s.solution.validate(&p).unwrap();
    }

    #[test]
    fn capacity_reduction_reports_unused_slices() {
        // Two links carry deletable slices; demand only needs one of them.
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(150.0), Priority::Elastic);
        let mut p = TeProblem::from_wan(&wan, &dm);
        // Slice on link 0 (A–B direct, forward) and on link 4 (C–D).
        add_fake(&mut p, 0, true, 100.0, 0.5);
        add_fake(&mut p, 4, true, 100.0, 0.5);
        let (s, d) = solve_both(TeObjective::CapacityReduction, &p);
        assert!((s.solution.total - d.solution.total).abs() < 1e-6);
        let sr = s.reductions.unwrap();
        let dr = d.reductions.unwrap();
        assert_eq!(sr, dr, "reduction sets must be backend-independent");
        // 150 fits through A's 200-capacity cut without either slice —
        // costs push flow off the fakes, so both slices are deletable.
        assert_eq!(sr, vec![LinkId(0), LinkId(4)]);
        // Raise demand to 250: the A–B slice becomes load-bearing while
        // the C–D slice stays idle.
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(250.0), Priority::Elastic);
        let mut p2 = TeProblem::from_wan(&wan, &dm);
        add_fake(&mut p2, 0, true, 100.0, 0.5);
        add_fake(&mut p2, 4, true, 100.0, 0.5);
        let (s2, d2) = solve_both(TeObjective::CapacityReduction, &p2);
        assert_eq!(s2.reductions, d2.reductions);
        assert_eq!(s2.reductions.unwrap(), vec![LinkId(4)]);
    }

    #[test]
    fn every_objective_agrees_across_backends_on_fig7() {
        let p = fig7_two_commodities();
        let objectives = [
            TeObjective::MaxThroughput,
            TeObjective::MinMlu { traffic_matrices: vec![vec![60.0, 40.0], vec![20.0, 80.0]] },
            TeObjective::MaxConcurrentFlow,
            TeObjective::Unsplittable,
            TeObjective::CapacityReduction,
        ];
        for objective in objectives {
            let name = objective.algorithm_name();
            let (s, d) = solve_both(objective, &p);
            assert!(
                (s.solution.total - d.solution.total).abs() < 1e-6,
                "{name}: sparse {} vs dense {}",
                s.solution.total,
                d.solution.total
            );
            match (s.mlu, d.mlu) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "{name}: mlu {a} vs {b}"),
                (None, None) => {}
                other => panic!("{name}: mlu mismatch {other:?}"),
            }
            match (s.lambda, d.lambda) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-6, "{name}: lambda {a} vs {b}")
                }
                (None, None) => {}
                other => panic!("{name}: lambda mismatch {other:?}"),
            }
            assert_eq!(s.reductions, d.reductions, "{name}: reduction sets differ");
        }
    }

    #[test]
    fn fingerprints_separate_objectives_and_traffic() {
        let base = TeFormulation::default();
        let mlu_a = TeFormulation::new(TeObjective::MinMlu {
            traffic_matrices: vec![vec![1.0, 2.0]],
        });
        let mlu_b = TeFormulation::new(TeObjective::MinMlu {
            traffic_matrices: vec![vec![1.0, 3.0]],
        });
        let fair = TeFormulation::new(TeObjective::MaxConcurrentFlow);
        let prints = [
            base.fingerprint(),
            mlu_a.fingerprint(),
            mlu_b.fingerprint(),
            fair.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b, "fingerprint collision");
            }
        }
        // Stable across calls.
        assert_eq!(base.fingerprint(), TeFormulation::default().fingerprint());
    }

    #[test]
    fn invalid_configs_rejected() {
        let ragged = TeFormulation::new(TeObjective::MinMlu {
            traffic_matrices: vec![vec![1.0, 2.0], vec![1.0]],
        });
        assert!(matches!(ragged.validate(), Err(TeError::InvalidConfig { .. })));
        let negative = TeFormulation::new(TeObjective::MinMlu {
            traffic_matrices: vec![vec![-1.0]],
        });
        assert!(matches!(negative.validate(), Err(TeError::InvalidConfig { .. })));
        let bad_weight =
            TeFormulation { objective: TeObjective::MaxThroughput, throughput_weight: f64::NAN };
        assert!(matches!(bad_weight.validate(), Err(TeError::InvalidConfig { .. })));
        // Shape mismatch against a concrete problem surfaces at lower().
        let p = fig7_two_commodities();
        let wrong_k =
            TeFormulation::new(TeObjective::MinMlu { traffic_matrices: vec![vec![1.0]] });
        assert!(matches!(wrong_k.lower(&p), Err(TeError::InvalidConfig { .. })));
    }

    #[test]
    fn max_throughput_lowering_matches_legacy_builders() {
        // The formulation's MaxThroughput shape must be *identical* to the
        // PR-9 `build_lp`/`build_sparse_lp` output — warm-start keys and
        // the committed perf baselines depend on it.
        let mut p = fig7_two_commodities();
        add_fake(&mut p, 0, true, 50.0, 2.0);
        let lowered = TeFormulation::default().lower(&p).unwrap();
        #[allow(deprecated)]
        {
            assert_eq!(lowered.dense_lp(), crate::exact::build_lp(&p, 1e6));
            let a = lowered.sparse_lp();
            let b = crate::exact::build_sparse_lp(&p, 1e6);
            assert_eq!(a.objective, b.objective);
            assert_eq!(a.rhs, b.rhs);
            assert_eq!(a.upper, b.upper);
        }
    }
}
