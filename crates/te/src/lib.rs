//! # rwc-te
//!
//! Traffic-engineering layer for the *Run, Walk, Crawl* reproduction.
//!
//! §4's entire point is that TE algorithms stay **unmodified**: they
//! consume a topology + demands and emit flow, never knowing whether an
//! edge is real or one of Algorithm 1's fake upgrade links. This crate
//! provides faithful reconstructions of the controllers the paper names:
//!
//! - [`swan`]: SWAN-style priority-class multicommodity allocation
//!   (interactive > elastic > background), each class solved as MCF on the
//!   residual of the classes above it;
//! - [`b4`]: B4-style max-min fair allocation over k-shortest-path tunnel
//!   groups with quantised progressive filling;
//! - [`cspf`]: an MPLS-TE-like constrained-shortest-path-first baseline
//!   (sequential, order-dependent);
//! - [`formulation`]: the TE objective zoo — max-throughput, TROD-style
//!   min-MLU over traffic-matrix envelopes, max-concurrent-flow fairness,
//!   the paper's Fig. 8 unsplittable gadget, and capacity reduction —
//!   each lowered to both LP backends;
//! - [`solver`]: the unified [`solver::TeSolver`] front-end (builder,
//!   warm-start policy, watchdog, observer) over the whole zoo;
//! - [`exact`]: the legacy LP-exact entry points, now deprecated shims
//!   over [`formulation`]/[`solver`];
//! - [`demand`]: demand matrices and a gravity-model generator;
//! - [`problem`]: the topology→flow-network bridge all solvers share;
//! - [`updates`]: a consistent-update planner for draining links whose
//!   capacity is about to change;
//! - [`metrics`]: throughput/utilisation/churn accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b4;
pub mod cspf;
pub mod demand;
pub mod exact;
pub mod formulation;
pub mod metrics;
pub mod problem;
pub mod solver;
pub mod srlg;
pub mod swan;
pub mod updates;

pub use demand::{Demand, DemandMatrix, Priority};
pub use formulation::{LoweredTe, TeFormulation, TeObjective, TeSolve};
pub use problem::{TeProblem, TeSolution, TeValidationError};
pub use solver::{TeSolver, TeSolverBuilder, WarmStartPolicy};

use std::fmt;

/// A typed solver failure — what used to be a panic in the hot path.
///
/// The run/walk/crawl controller reacts to these by falling back to the
/// last feasible allocation instead of tearing the network down, so every
/// variant carries enough context to log the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeError {
    /// The optimiser exhausted its iteration/pivot budget without
    /// converging (e.g. simplex stalling on a degenerate basis).
    SolverTimeout {
        /// Name of the algorithm that timed out.
        algorithm: &'static str,
        /// Human-readable context.
        detail: String,
    },
    /// The solver aborted: the instance was infeasible or unbounded, or an
    /// internal invariant failed.
    SolverAbort {
        /// Name of the algorithm that aborted.
        algorithm: &'static str,
        /// Human-readable context.
        detail: String,
    },
    /// The algorithm was constructed with parameters it cannot run with.
    InvalidConfig {
        /// Name of the misconfigured algorithm.
        algorithm: &'static str,
        /// Human-readable context.
        detail: String,
    },
}

impl fmt::Display for TeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeError::SolverTimeout { algorithm, detail } => {
                write!(f, "{algorithm}: solver timed out: {detail}")
            }
            TeError::SolverAbort { algorithm, detail } => {
                write!(f, "{algorithm}: solver aborted: {detail}")
            }
            TeError::InvalidConfig { algorithm, detail } => {
                write!(f, "{algorithm}: invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for TeError {}

/// A traffic-engineering algorithm: topology + demands in, flows out.
///
/// Implementations must treat the problem as opaque — no peeking at which
/// edges are "real", which is exactly the property the paper's abstraction
/// relies on.
pub trait TeAlgorithm {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Solves the problem, surfacing solver failures as [`TeError`]
    /// instead of panicking. This is the entry point the fault-tolerant
    /// pipeline uses.
    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError>;
    /// Solves the problem, panicking on solver failure. Convenience for
    /// callers (tests, examples, offline studies) that treat a failed
    /// solve as fatal.
    fn solve(&self, problem: &TeProblem) -> TeSolution {
        match self.try_solve(problem) {
            Ok(s) => s,
            Err(e) => panic!("TE solve failed: {e}"),
        }
    }
    /// Warm-start counters, for algorithms that keep solver state across
    /// rounds (see [`solver::TeSolver`]). Stateless algorithms return
    /// `None`.
    fn warm_stats(&self) -> Option<rwc_lp::SolverStats> {
        None
    }
    /// Fingerprint of everything beyond the algorithm *name* that changes
    /// what a solve means — objective, weights, backend. The round
    /// engine's memo key folds this in so cached solutions never leak
    /// across differently-configured solvers sharing a name. Algorithms
    /// with exactly one configuration keep the default `0`.
    fn solve_fingerprint(&self) -> u64 {
        0
    }
}
