//! # rwc-te
//!
//! Traffic-engineering layer for the *Run, Walk, Crawl* reproduction.
//!
//! §4's entire point is that TE algorithms stay **unmodified**: they
//! consume a topology + demands and emit flow, never knowing whether an
//! edge is real or one of Algorithm 1's fake upgrade links. This crate
//! provides faithful reconstructions of the controllers the paper names:
//!
//! - [`swan`]: SWAN-style priority-class multicommodity allocation
//!   (interactive > elastic > background), each class solved as MCF on the
//!   residual of the classes above it;
//! - [`b4`]: B4-style max-min fair allocation over k-shortest-path tunnel
//!   groups with quantised progressive filling;
//! - [`cspf`]: an MPLS-TE-like constrained-shortest-path-first baseline
//!   (sequential, order-dependent);
//! - [`exact`]: an LP-exact solver (via `rwc-lp`) for small networks and
//!   for benchmarking the others' optimality gaps;
//! - [`demand`]: demand matrices and a gravity-model generator;
//! - [`problem`]: the topology→flow-network bridge all solvers share;
//! - [`updates`]: a consistent-update planner for draining links whose
//!   capacity is about to change;
//! - [`metrics`]: throughput/utilisation/churn accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b4;
pub mod cspf;
pub mod demand;
pub mod exact;
pub mod metrics;
pub mod problem;
pub mod srlg;
pub mod swan;
pub mod updates;

pub use demand::{Demand, DemandMatrix, Priority};
pub use problem::{TeProblem, TeSolution};

/// A traffic-engineering algorithm: topology + demands in, flows out.
///
/// Implementations must treat the problem as opaque — no peeking at which
/// edges are "real", which is exactly the property the paper's abstraction
/// relies on.
pub trait TeAlgorithm {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Solves the problem.
    fn solve(&self, problem: &TeProblem) -> TeSolution;
}
