//! TE solution metrics: utilisation, churn, fairness.

use crate::problem::{TeProblem, TeSolution};

/// Per-edge utilisation (`flow / capacity`; 0 for zero-capacity edges).
pub fn utilisation(problem: &TeProblem, sol: &TeSolution) -> Vec<f64> {
    sol.edge_flows
        .iter()
        .zip(problem.net.edges())
        .map(|(&f, e)| if e.capacity > 0.0 { f / e.capacity } else { 0.0 })
        .collect()
}

/// Maximum link utilisation — the congestion figure of merit.
pub fn max_utilisation(problem: &TeProblem, sol: &TeSolution) -> f64 {
    utilisation(problem, sol).into_iter().fold(0.0, f64::max)
}

/// Traffic churn between two allocations over the same edge set: the total
/// volume that must move, `Σ_e |a(e) − b(e)| / 2`.
///
/// The paper's penalty function is "the amount of traffic disrupted when
/// the link switches to a higher bandwidth" — this is how that disruption
/// is measured after the fact.
pub fn churn(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "allocations over different edge sets");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 2.0
}

/// Jain's fairness index over per-commodity satisfaction ratios.
///
/// 1.0 = perfectly even; `1/n` = one commodity takes everything.
pub fn jain_fairness(problem: &TeProblem, sol: &TeSolution) -> f64 {
    let ratios: Vec<f64> = sol
        .routed
        .iter()
        .zip(&problem.commodities)
        .filter(|(_, c)| c.demand > 0.0)
        .map(|(&r, c)| r / c.demand)
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sum_sq: f64 = ratios.iter().map(|r| r * r).sum();
    if sum_sq == 0.0 {
        return 1.0; // nothing routed for anyone: degenerately even
    }
    sum * sum / (ratios.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn simple_problem() -> TeProblem {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(50.0), Priority::Elastic);
        dm.add(b, a, Gbps(100.0), Priority::Elastic);
        TeProblem::from_wan(&wan, &dm)
    }

    #[test]
    fn utilisation_and_max() {
        let p = simple_problem();
        let mut flows = vec![0.0; p.net.n_edges()];
        flows[0] = 50.0; // A→B direct, capacity 100
        flows[1] = 100.0; // B→A direct, capacity 100
        let sol = TeSolution { routed: vec![50.0, 100.0], edge_flows: flows, total: 150.0 };
        let u = utilisation(&p, &sol);
        assert_eq!(u[0], 0.5);
        assert_eq!(u[1], 1.0);
        assert_eq!(max_utilisation(&p, &sol), 1.0);
    }

    #[test]
    fn churn_is_symmetric_half_l1() {
        let a = vec![100.0, 0.0, 50.0];
        let b = vec![0.0, 100.0, 50.0];
        assert_eq!(churn(&a, &b), 100.0);
        assert_eq!(churn(&b, &a), 100.0);
        assert_eq!(churn(&a, &a), 0.0);
    }

    #[test]
    fn fairness_extremes() {
        let p = simple_problem();
        let even = TeSolution {
            routed: vec![25.0, 50.0], // both at 50% satisfaction
            edge_flows: vec![0.0; p.net.n_edges()],
            total: 75.0,
        };
        assert!((jain_fairness(&p, &even) - 1.0).abs() < 1e-12);
        let skewed = TeSolution {
            routed: vec![50.0, 0.0],
            edge_flows: vec![0.0; p.net.n_edges()],
            total: 50.0,
        };
        assert!((jain_fairness(&p, &skewed) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn churn_rejects_mismatched_lengths() {
        churn(&[1.0], &[1.0, 2.0]);
    }
}
