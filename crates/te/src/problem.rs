//! The shared TE problem representation.
//!
//! All solvers consume a [`TeProblem`]: a [`FlowNetwork`] (whose edges may
//! include fake upgrade links injected by `rwc-core` — solvers cannot
//! tell), a commodity list derived from a [`DemandMatrix`], and bookkeeping
//! that maps flow edges back to WAN links for reporting.

use crate::demand::{Demand, DemandMatrix, Priority};
use rwc_flow::mcf::Commodity;
use rwc_flow::network::FlowNetwork;
use rwc_topology::wan::{LinkId, WanTopology};
use std::fmt;

/// Where a flow edge came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeOrigin {
    /// Direction `a→b` (`forward = true`) or `b→a` of a real WAN link.
    Real {
        /// The WAN link.
        link: LinkId,
        /// True for the `a→b` direction.
        forward: bool,
    },
    /// A fake upgrade edge injected by the graph abstraction.
    Fake {
        /// The WAN link this fake edge would upgrade.
        link: LinkId,
        /// True for the `a→b` direction.
        forward: bool,
    },
    /// Gadget plumbing (e.g. the unsplittable-flow intermediate nodes).
    Auxiliary,
}

/// A TE problem instance.
#[derive(Debug, Clone)]
pub struct TeProblem {
    /// The (possibly augmented) flow network.
    pub net: FlowNetwork,
    /// Origin of each flow edge, parallel to `net.edges()`.
    pub origins: Vec<EdgeOrigin>,
    /// Commodities, parallel to `demands`.
    pub commodities: Vec<Commodity>,
    /// The demands the commodities came from.
    pub demands: Vec<Demand>,
}

impl TeProblem {
    /// Builds the unaugmented problem: two directed flow edges per WAN
    /// link at its current capacity, one commodity per demand.
    pub fn from_wan(wan: &WanTopology, demands: &DemandMatrix) -> TeProblem {
        let mut net = FlowNetwork::new(wan.n_nodes());
        let mut origins = Vec::with_capacity(wan.n_links() * 2);
        for (id, l) in wan.links() {
            net.add_edge(l.a.0, l.b.0, l.capacity().value(), 0.0);
            origins.push(EdgeOrigin::Real { link: id, forward: true });
            net.add_edge(l.b.0, l.a.0, l.capacity().value(), 0.0);
            origins.push(EdgeOrigin::Real { link: id, forward: false });
        }
        let commodities = demands
            .demands()
            .iter()
            .map(|d| Commodity { source: d.from.0, sink: d.to.0, demand: d.volume.value() })
            .collect();
        TeProblem { net, origins, commodities, demands: demands.demands().to_vec() }
    }

    /// Overrides the capacity of both directed edges of a WAN link
    /// (edges `2·link` and `2·link + 1` in the `from_wan` layout). Used to
    /// model drained or failed links without touching the topology.
    pub fn override_link_capacity(&mut self, link: LinkId, capacity: f64) {
        assert!(2 * link.0 + 1 < self.net.n_edges(), "link out of range");
        let mut net = FlowNetwork::new(self.net.n_nodes());
        for (i, e) in self.net.edges().iter().enumerate() {
            let cap = if i / 2 == link.0 { capacity } else { e.capacity };
            net.add_edge(e.from, e.to, cap, e.cost);
        }
        self.net = net;
    }

    /// Indices of commodities in a priority class.
    pub fn commodities_of(&self, p: Priority) -> Vec<usize> {
        self.demands
            .iter()
            .enumerate()
            .filter(|(_, d)| d.priority == p)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A TE solution: per-commodity routed volume plus aggregate edge flows.
#[derive(Debug, Clone, PartialEq)]
pub struct TeSolution {
    /// Routed volume per commodity (same order as `TeProblem::commodities`).
    pub routed: Vec<f64>,
    /// Aggregate flow per edge (same order as the problem's network edges).
    pub edge_flows: Vec<f64>,
    /// Total routed volume.
    pub total: f64,
}

/// Why a [`TeSolution`] failed validation against its problem.
///
/// Typed so callers (and the `RwcError` hierarchy in `rwc-core`) can react
/// per-violation — e.g. a capacity overrun after a drift round is a solver
/// bug, while an edge-count mismatch means the solution is being checked
/// against the wrong (augmented vs. unaugmented) problem.
#[derive(Debug, Clone, PartialEq)]
pub enum TeValidationError {
    /// `edge_flows` is not parallel to the problem's edge list.
    EdgeCountMismatch {
        /// Edge count of the problem's flow network.
        expected: usize,
        /// Length of the solution's `edge_flows`.
        actual: usize,
    },
    /// An edge carries (beyond tolerance) negative flow.
    NegativeFlow {
        /// Offending edge index.
        edge: usize,
        /// The negative flow value.
        flow: f64,
    },
    /// An edge carries more flow than its capacity (beyond tolerance).
    CapacityExceeded {
        /// Offending edge index.
        edge: usize,
        /// Flow on the edge.
        flow: f64,
        /// The edge's capacity.
        capacity: f64,
    },
    /// A commodity routes more than it asked for (beyond tolerance).
    DemandExceeded {
        /// Offending commodity index.
        commodity: usize,
        /// Routed volume.
        routed: f64,
        /// The commodity's demand.
        demand: f64,
    },
    /// The declared `total` disagrees with the sum of `routed`.
    TotalMismatch {
        /// The declared total.
        total: f64,
        /// What `routed` actually sums to.
        routed_sum: f64,
    },
}

impl fmt::Display for TeValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeValidationError::EdgeCountMismatch { expected, actual } => {
                write!(f, "edge flow length mismatch: expected {expected}, got {actual}")
            }
            TeValidationError::NegativeFlow { edge, flow } => {
                write!(f, "edge {edge}: negative flow {flow}")
            }
            TeValidationError::CapacityExceeded { edge, flow, capacity } => {
                write!(f, "edge {edge}: {flow} exceeds capacity {capacity}")
            }
            TeValidationError::DemandExceeded { commodity, routed, demand } => {
                write!(f, "commodity {commodity}: routed {routed} above demand {demand}")
            }
            TeValidationError::TotalMismatch { total, routed_sum } => {
                write!(f, "total {total} but routed sums to {routed_sum}")
            }
        }
    }
}

impl std::error::Error for TeValidationError {}

impl TeSolution {
    /// Validates against the problem: capacities, demand caps, and (for the
    /// aggregate) per-node balance of total in/out adjusted for terminals.
    pub fn validate(&self, problem: &TeProblem) -> Result<(), TeValidationError> {
        if self.edge_flows.len() != problem.net.n_edges() {
            return Err(TeValidationError::EdgeCountMismatch {
                expected: problem.net.n_edges(),
                actual: self.edge_flows.len(),
            });
        }
        for (i, (&f, e)) in self.edge_flows.iter().zip(problem.net.edges()).enumerate() {
            if f < -1e-6 {
                return Err(TeValidationError::NegativeFlow { edge: i, flow: f });
            }
            if f > e.capacity + 1e-6 {
                return Err(TeValidationError::CapacityExceeded {
                    edge: i,
                    flow: f,
                    capacity: e.capacity,
                });
            }
        }
        for (k, (&r, c)) in self.routed.iter().zip(&problem.commodities).enumerate() {
            if r > c.demand + 1e-6 {
                return Err(TeValidationError::DemandExceeded {
                    commodity: k,
                    routed: r,
                    demand: c.demand,
                });
            }
        }
        let declared: f64 = self.routed.iter().sum();
        if (declared - self.total).abs() > 1e-6 {
            return Err(TeValidationError::TotalMismatch { total: self.total, routed_sum: declared });
        }
        Ok(())
    }

    /// Fraction of offered demand satisfied.
    pub fn satisfaction(&self, problem: &TeProblem) -> f64 {
        let offered: f64 = problem.commodities.iter().map(|c| c.demand).sum();
        if offered <= 0.0 {
            1.0
        } else {
            self.total / offered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    #[test]
    fn from_wan_shape() {
        let wan = builders::fig7_example();
        let mut dm = DemandMatrix::new();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        dm.add(a, b, Gbps(100.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        assert_eq!(p.net.n_nodes(), 4);
        assert_eq!(p.net.n_edges(), 8, "two directions per link");
        assert_eq!(p.commodities.len(), 1);
        assert_eq!(p.commodities[0].demand, 100.0);
        assert!(matches!(p.origins[0], EdgeOrigin::Real { forward: true, .. }));
        assert!(matches!(p.origins[1], EdgeOrigin::Real { forward: false, .. }));
    }

    #[test]
    fn capacities_follow_modulation() {
        let mut wan = builders::fig7_example();
        wan.set_modulation(rwc_topology::wan::LinkId(0), rwc_optics::Modulation::Dp16Qam200);
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        assert_eq!(p.net.edge(0).capacity, 200.0);
        assert_eq!(p.net.edge(2).capacity, 100.0);
    }

    #[test]
    fn priority_partition() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(10.0), Priority::Interactive);
        dm.add(a, b, Gbps(20.0), Priority::Background);
        dm.add(b, a, Gbps(5.0), Priority::Interactive);
        let p = TeProblem::from_wan(&wan, &dm);
        assert_eq!(p.commodities_of(Priority::Interactive), vec![0, 2]);
        assert_eq!(p.commodities_of(Priority::Background), vec![1]);
        assert!(p.commodities_of(Priority::Elastic).is_empty());
    }

    #[test]
    fn solution_validation() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(50.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let mut flows = vec![0.0; p.net.n_edges()];
        // Direct A→B edge is edge 0 (link 0 forward).
        flows[0] = 50.0;
        let sol = TeSolution { routed: vec![50.0], edge_flows: flows, total: 50.0 };
        sol.validate(&p).unwrap();
        assert!((sol.satisfaction(&p) - 1.0).abs() < 1e-12);
        let bad = TeSolution { routed: vec![200.0], edge_flows: vec![0.0; 10], total: 200.0 };
        assert_eq!(
            bad.validate(&p),
            Err(TeValidationError::EdgeCountMismatch { expected: 8, actual: 10 })
        );
    }

    #[test]
    fn validation_errors_are_typed_per_violation() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(50.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let m = p.net.n_edges();

        let mut over = vec![0.0; m];
        over[0] = 150.0; // edge 0 capacity is 100
        let sol = TeSolution { routed: vec![50.0], edge_flows: over, total: 50.0 };
        assert_eq!(
            sol.validate(&p),
            Err(TeValidationError::CapacityExceeded { edge: 0, flow: 150.0, capacity: 100.0 })
        );

        let mut neg = vec![0.0; m];
        neg[3] = -1.0;
        let sol = TeSolution { routed: vec![0.0], edge_flows: neg, total: 0.0 };
        assert_eq!(sol.validate(&p), Err(TeValidationError::NegativeFlow { edge: 3, flow: -1.0 }));

        let sol = TeSolution { routed: vec![60.0], edge_flows: vec![0.0; m], total: 60.0 };
        assert_eq!(
            sol.validate(&p),
            Err(TeValidationError::DemandExceeded { commodity: 0, routed: 60.0, demand: 50.0 })
        );

        let sol = TeSolution { routed: vec![40.0], edge_flows: vec![0.0; m], total: 41.0 };
        assert_eq!(
            sol.validate(&p),
            Err(TeValidationError::TotalMismatch { total: 41.0, routed_sum: 40.0 })
        );
        let msg = TeValidationError::TotalMismatch { total: 41.0, routed_sum: 40.0 }.to_string();
        assert!(msg.contains("41") && msg.contains("40"), "{msg}");
    }
}
