//! The unified TE solver front-end.
//!
//! [`TeSolver::builder()`] replaces the scattered PR-3/PR-9 configuration
//! dance (`ExactTe.backend` field pokes, the `IncrementalExactTe::with_backend`
//! / `set_solve_timeout` / `set_observer` call sequences) with one
//! validating builder:
//!
//! ```
//! use rwc_te::solver::{TeSolver, WarmStartPolicy};
//! use rwc_te::formulation::TeObjective;
//! use rwc_lp::LpBackend;
//! use std::time::Duration;
//!
//! let solver = TeSolver::builder()
//!     .objective(TeObjective::MaxConcurrentFlow)
//!     .backend(LpBackend::Sparse)
//!     .solve_timeout(Duration::from_secs(5))
//!     .warm_start(WarmStartPolicy::Retain)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(rwc_te::TeAlgorithm::name(&solver), "exact-lp:max-concurrent-flow");
//! ```
//!
//! One `TeSolver` owns both simplex engines (dense tableau + sparse
//! revised) and the warm-start state that persists across `try_solve`
//! calls, exactly like the deprecated `IncrementalExactTe` — plus the
//! whole objective zoo of [`crate::formulation`].

use crate::formulation::{TeFormulation, TeObjective, TeSolve};
use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_lp::simplex::{LpBackend, SimplexSolver, SolverStats};
use rwc_lp::SparseSimplexSolver;
use rwc_obs::{Event, Observer};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Whether solver state (the last optimal basis) survives across solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStartPolicy {
    /// Keep the basis: consecutive similar problems warm-resolve. The
    /// default, and what the incremental round engine wants.
    #[default]
    Retain,
    /// Reset the engine before every solve: every round is a cold solve.
    /// For A/B benchmarking and for workloads whose successive problems
    /// share nothing.
    AlwaysCold,
}

/// Builder for [`TeSolver`] — collect the configuration, validate once.
#[derive(Debug, Clone)]
pub struct TeSolverBuilder {
    objective: TeObjective,
    backend: LpBackend,
    throughput_weight: f64,
    solve_timeout: Option<Duration>,
    warm_start: WarmStartPolicy,
    observer: Arc<dyn Observer>,
}

impl Default for TeSolverBuilder {
    fn default() -> Self {
        Self {
            objective: TeObjective::MaxThroughput,
            backend: LpBackend::default(),
            throughput_weight: 1e6,
            solve_timeout: None,
            warm_start: WarmStartPolicy::Retain,
            observer: rwc_obs::noop(),
        }
    }
}

impl TeSolverBuilder {
    /// Sets the objective (default [`TeObjective::MaxThroughput`]).
    pub fn objective(mut self, objective: TeObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the LP backend (default sparse revised simplex).
    pub fn backend(mut self, backend: LpBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the headline-quantity weight relative to one unit of edge
    /// cost (default `1e6`). Validated finite and positive.
    pub fn throughput_weight(mut self, weight: f64) -> Self {
        self.throughput_weight = weight;
        self
    }

    /// Arms the solve-deadline watchdog: a warm attempt past the deadline
    /// aborts into the cold-fallback path, a cold attempt past it surfaces
    /// as [`TeError::SolverTimeout`] instead of hanging the round.
    pub fn solve_timeout(mut self, timeout: Duration) -> Self {
        self.solve_timeout = Some(timeout);
        self
    }

    /// Sets the warm-start policy (default [`WarmStartPolicy::Retain`]).
    pub fn warm_start(mut self, policy: WarmStartPolicy) -> Self {
        self.warm_start = policy;
        self
    }

    /// Attaches an observer: per-solve `lp.*` counters plus
    /// [`Event::WarmSolve`]/[`Event::ColdFallback`] events. Observation is
    /// a pure sidecar — solutions are byte-identical with it on or off.
    pub fn observer(mut self, obs: Arc<dyn Observer>) -> Self {
        self.observer = obs;
        self
    }

    /// Validates the configuration and builds the solver.
    pub fn build(self) -> Result<TeSolver, TeError> {
        let formulation = TeFormulation {
            objective: self.objective,
            throughput_weight: self.throughput_weight,
        };
        formulation.validate()?;
        let solver = TeSolver {
            formulation,
            backend: self.backend,
            warm_start: self.warm_start,
            solver: RefCell::default(),
            sparse_solver: RefCell::default(),
            obs: self.observer,
        };
        solver.set_solve_timeout(self.solve_timeout);
        Ok(solver)
    }
}

/// The unified TE solver: one objective, one backend, persistent
/// warm-start state, optional observer and watchdog.
#[derive(Debug)]
pub struct TeSolver {
    formulation: TeFormulation,
    backend: LpBackend,
    warm_start: WarmStartPolicy,
    solver: RefCell<SimplexSolver>,
    sparse_solver: RefCell<SparseSimplexSolver>,
    obs: Arc<dyn Observer>,
}

impl Default for TeSolver {
    fn default() -> Self {
        TeSolver::builder().build().expect("default configuration is valid")
    }
}

impl TeSolver {
    /// Starts a builder with the defaults: max-throughput objective,
    /// sparse backend, weight `1e6`, no watchdog, warm starts retained.
    pub fn builder() -> TeSolverBuilder {
        TeSolverBuilder::default()
    }

    /// The objective this solver optimises.
    pub fn objective(&self) -> &TeObjective {
        &self.formulation.objective
    }

    /// The LP backend this solver runs.
    pub fn backend(&self) -> LpBackend {
        self.backend
    }

    /// The formulation (objective + weight) this solver lowers through.
    pub fn formulation(&self) -> &TeFormulation {
        &self.formulation
    }

    /// Re-arms (or disarms, with `None`) the solve-deadline watchdog on
    /// both simplex engines.
    pub fn set_solve_timeout(&self, timeout: Option<Duration>) {
        self.solver.borrow_mut().set_solve_timeout(timeout);
        self.sparse_solver.borrow_mut().set_solve_timeout(timeout);
    }

    /// Chaos hook: sleeps this long before every simplex pivot, forcing a
    /// slow solve so watchdog behaviour can be driven deterministically.
    pub fn set_pivot_delay(&self, delay: Option<Duration>) {
        self.solver.borrow_mut().set_pivot_delay(delay);
        self.sparse_solver.borrow_mut().set_pivot_delay(delay);
    }

    /// Replaces the observer after construction.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = obs;
    }

    /// Replaces the objective *without* dropping warm-start state — the
    /// round-loop entry point for drifting inputs that live inside the
    /// objective (min-MLU traffic matrices above all). A same-shaped
    /// objective (e.g. new TM volumes) keeps the fast-resolve path alive;
    /// a different shape changes the LP layout and the next solve falls
    /// back to cold via the ordinary structural-mismatch route.
    pub fn set_objective(&mut self, objective: TeObjective) -> Result<(), TeError> {
        let next = TeFormulation { objective, throughput_weight: self.formulation.throughput_weight };
        next.validate()?;
        self.formulation = next;
        Ok(())
    }

    /// Solves and returns the full objective-specific result (`mlu`, `λ`,
    /// reduction sets) alongside the [`TeSolution`].
    pub fn solve_detailed(&self, problem: &TeProblem) -> Result<TeSolve, TeError> {
        if problem.commodities.is_empty() {
            return Ok(TeSolve {
                solution: TeSolution {
                    routed: vec![],
                    edge_flows: vec![0.0; problem.net.n_edges()],
                    total: 0.0,
                },
                mlu: None,
                lambda: None,
                reductions: None,
            });
        }
        let lowered = self.formulation.lower(problem)?;
        let enabled = self.obs.enabled();
        match self.backend {
            LpBackend::Dense => {
                let lp = lowered.dense_lp();
                let mut solver = self.solver.borrow_mut();
                if self.warm_start == WarmStartPolicy::AlwaysCold {
                    solver.reset();
                }
                let before = enabled.then(|| solver.stats());
                let outcome = solver.solve(&lp);
                if let Some(before) = before {
                    let after = solver.stats();
                    drop(solver);
                    self.publish_solve(before, after);
                }
                lowered.extract_dense(outcome)
            }
            LpBackend::Sparse => {
                let sp = lowered.sparse_lp();
                let mut solver = self.sparse_solver.borrow_mut();
                if self.warm_start == WarmStartPolicy::AlwaysCold {
                    solver.reset();
                }
                let before = enabled.then(|| solver.stats());
                let outcome = solver.solve_sparse(&sp);
                if let Some(before) = before {
                    let after = solver.stats();
                    drop(solver);
                    self.publish_solve(before, after);
                }
                lowered.extract_sparse(outcome)
            }
        }
    }

    /// Publishes the delta between two [`SolverStats`] readings.
    fn publish_solve(&self, before: SolverStats, after: SolverStats) {
        let pivots = after.pivots - before.pivots;
        self.obs.incr("lp.pivots", pivots);
        self.obs.incr("lp.warm_attempts", after.warm_attempts - before.warm_attempts);
        self.obs.incr("lp.warm_hits", after.warm_hits - before.warm_hits);
        self.obs.incr("lp.cold_solves", after.cold_solves - before.cold_solves);
        self.obs.incr("lp.eta_updates", after.eta_updates - before.eta_updates);
        self.obs.incr("lp.refactorizations", after.refactorizations - before.refactorizations);
        self.obs.incr("lp.pricing_scans", after.pricing_scans - before.pricing_scans);
        if after.warm_hits > before.warm_hits {
            self.obs.event(&Event::WarmSolve { pivots });
        } else if after.cold_solves > before.cold_solves {
            self.obs.event(&Event::ColdFallback { pivots });
        }
        let aborts = after.watchdog_aborts - before.watchdog_aborts;
        if aborts > 0 {
            self.obs.incr("lp.watchdog_aborts", aborts);
            self.obs.event(&Event::WatchdogAbort { pivots });
        }
        let total = after.warm_attempts;
        if total > 0 {
            self.obs.gauge("te.warm_hit_rate", after.warm_hits as f64 / total as f64);
        }
    }
}

impl TeAlgorithm for TeSolver {
    fn name(&self) -> &'static str {
        self.formulation.name()
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        self.solve_detailed(problem).map(|d| d.solution)
    }

    fn warm_stats(&self) -> Option<SolverStats> {
        Some(match self.backend {
            LpBackend::Dense => self.solver.borrow().stats(),
            LpBackend::Sparse => self.sparse_solver.borrow().stats(),
        })
    }

    fn solve_fingerprint(&self) -> u64 {
        // Backend folded in because warm/cold vertices of co-optimal LPs
        // may differ between backends; memoized baselines must not leak
        // across them.
        self.formulation.fingerprint() ^ match self.backend {
            LpBackend::Dense => 0x9e37_79b9_7f4a_7c15,
            LpBackend::Sparse => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn fig7_problem(volume: f64) -> TeProblem {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(volume), Priority::Elastic);
        TeProblem::from_wan(&wan, &dm)
    }

    #[test]
    fn builder_defaults_match_legacy_exact_te() {
        let p = fig7_problem(300.0);
        let new = TeSolver::default().solve(&p);
        #[allow(deprecated)]
        let old = crate::exact::ExactTe::default().solve(&p);
        assert_eq!(new, old, "default TeSolver must reproduce ExactTe exactly");
        assert!((new.total - 200.0).abs() < 1e-6);
    }

    #[test]
    fn builder_rejects_invalid_weight() {
        for w in [f64::NAN, 0.0, -3.0, f64::INFINITY] {
            let res = TeSolver::builder().throughput_weight(w).build();
            assert!(
                matches!(res, Err(TeError::InvalidConfig { .. })),
                "weight {w} must be rejected"
            );
        }
    }

    #[test]
    fn builder_rejects_ragged_traffic_matrices() {
        let res = TeSolver::builder()
            .objective(TeObjective::MinMlu {
                traffic_matrices: vec![vec![1.0, 2.0], vec![3.0]],
            })
            .build();
        assert!(matches!(res, Err(TeError::InvalidConfig { .. })));
    }

    #[test]
    fn warm_start_policy_always_cold_never_warms() {
        let p = fig7_problem(120.0);
        let cold = TeSolver::builder().warm_start(WarmStartPolicy::AlwaysCold).build().unwrap();
        let retain = TeSolver::builder().build().unwrap();
        for cap in [100.0, 90.0, 110.0, 95.0] {
            let mut round = p.clone();
            round.net.set_capacity(0, cap);
            let a = cold.solve(&round);
            let b = retain.solve(&round);
            assert!((a.total - b.total).abs() < 1e-6);
        }
        let cold_stats = cold.warm_stats().unwrap();
        assert_eq!(cold_stats.warm_attempts, 0, "{cold_stats:?}");
        assert_eq!(cold_stats.cold_solves, 4, "{cold_stats:?}");
        let retain_stats = retain.warm_stats().unwrap();
        assert!(retain_stats.warm_attempts >= 3, "{retain_stats:?}");
    }

    #[test]
    fn watchdog_surfaces_typed_timeout_per_objective() {
        let p = fig7_problem(300.0);
        for objective in [TeObjective::MaxThroughput, TeObjective::MaxConcurrentFlow] {
            let name = objective.algorithm_name();
            let solver = TeSolver::builder().objective(objective).build().unwrap();
            solver.set_solve_timeout(Some(Duration::ZERO));
            solver.set_pivot_delay(Some(Duration::from_millis(10)));
            match solver.try_solve(&p) {
                Err(TeError::SolverTimeout { algorithm, .. }) => assert_eq!(algorithm, name),
                other => panic!("{name}: expected SolverTimeout, got {other:?}"),
            }
            solver.set_solve_timeout(None);
            solver.set_pivot_delay(None);
            solver.try_solve(&p).expect("solves after disarm");
        }
    }

    #[test]
    fn observer_counters_published() {
        let p = fig7_problem(120.0);
        let metrics = Arc::new(rwc_obs::MetricsObserver::new());
        let solver = TeSolver::builder().observer(metrics.clone()).build().unwrap();
        for cap in [100.0, 80.0, 120.0] {
            let mut round = p.clone();
            round.net.set_capacity(0, cap);
            solver.try_solve(&round).unwrap();
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["lp.refactorizations"] >= 1, "{snap:?}");
        assert!(snap.counters.contains_key("lp.eta_updates"), "{snap:?}");
    }

    #[test]
    fn fingerprints_depend_on_objective_and_backend() {
        let a = TeSolver::builder().build().unwrap();
        let b = TeSolver::builder().backend(LpBackend::Dense).build().unwrap();
        let c = TeSolver::builder().objective(TeObjective::MaxConcurrentFlow).build().unwrap();
        assert_ne!(a.solve_fingerprint(), b.solve_fingerprint());
        assert_ne!(a.solve_fingerprint(), c.solve_fingerprint());
        // Stateless heuristics keep the default 0.
        assert_eq!(crate::swan::SwanTe::default().solve_fingerprint(), 0);
    }

    #[test]
    fn min_mlu_warm_hit_rate_under_tm_drift_matches_fast_resolve() {
        // Rhs-only traffic-matrix drift must ride the same fast-resolve
        // path as max-throughput capacity drift: every post-cold round a
        // warm attempt, every attempt a hit.
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let c = wan.node_by_name("C").unwrap();
        let d = wan.node_by_name("D").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(100.0), Priority::Elastic);
        dm.add(c, d, Gbps(100.0), Priority::Elastic);
        let p = TeProblem::from_wan(&wan, &dm);
        let rounds = 8usize;
        let round_objective = |round: usize| {
            let scale = 0.6 + 0.05 * round as f64;
            TeObjective::MinMlu {
                traffic_matrices: vec![
                    vec![100.0 * scale, 40.0],
                    vec![30.0, 100.0 * scale],
                ],
            }
        };
        let mut warm = TeSolver::builder().objective(round_objective(0)).build().unwrap();
        let mut results = Vec::new();
        for round in 0..rounds {
            warm.set_objective(round_objective(round)).unwrap();
            results.push(warm.solve_detailed(&p).unwrap().mlu.unwrap());
        }
        let stats = warm.warm_stats().unwrap();
        assert_eq!(stats.cold_solves, 1, "only the first round may go cold: {stats:?}");
        assert_eq!(stats.warm_attempts, (rounds - 1) as u64, "{stats:?}");
        assert_eq!(stats.warm_hits, (rounds - 1) as u64, "tm drift must fast-resolve: {stats:?}");
        // And the answers track the drift (monotone non-decreasing load).
        for w in results.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "mlu should grow with the load: {results:?}");
        }
    }
}
