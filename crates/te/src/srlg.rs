//! Shared-risk link groups (SRLGs).
//!
//! The paper's measurement model makes fiber-level risk explicit: one
//! cable carries many wavelengths, and a fiber cut extinguishes all of
//! them at once (that is why Fig. 1's wavelengths dip together). For TE
//! this means two IP links on the same cable are *not* independent
//! failure domains. This module derives SRLGs from the topology's fiber
//! ids and offers the two standard consumers:
//!
//! - [`srlg_disjoint_paths`]: primary/backup path pairs that share no
//!   fiber (survive any single cut);
//! - [`cut_impact`]: what a given fiber cut does to the topology and to a
//!   TE solution.

use crate::problem::{TeProblem, TeSolution};
use rwc_topology::paths::{k_shortest_paths, Path};
use rwc_topology::graph::NodeId;
use rwc_topology::wan::{LinkId, WanTopology};
use std::collections::{BTreeMap, BTreeSet};

/// Groups link ids by the fiber cable they ride.
pub fn shared_risk_groups(wan: &WanTopology) -> BTreeMap<usize, Vec<LinkId>> {
    let mut groups: BTreeMap<usize, Vec<LinkId>> = BTreeMap::new();
    for (id, link) in wan.links() {
        groups.entry(link.fiber_id).or_default().push(id);
    }
    groups
}

/// The set of fibers a path touches.
pub fn fibers_of(wan: &WanTopology, path: &Path) -> BTreeSet<usize> {
    path.links.iter().map(|&l| wan.link(l).fiber_id).collect()
}

/// Finds a primary/backup pair between `src` and `dst` whose fiber sets
/// are disjoint, searching the `k` shortest candidates for each role.
///
/// Returns `None` when no fiber-disjoint pair exists within the candidate
/// budget (e.g. a topology where every route crosses one shared conduit).
pub fn srlg_disjoint_paths(
    wan: &WanTopology,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Option<(Path, Path)> {
    let candidates = k_shortest_paths(wan, src, dst, k, |l| wan.link(l).length_km);
    for (i, primary) in candidates.iter().enumerate() {
        let primary_fibers = fibers_of(wan, primary);
        for backup in candidates.iter().skip(i + 1) {
            if fibers_of(wan, backup).is_disjoint(&primary_fibers) {
                return Some((primary.clone(), backup.clone()));
            }
        }
    }
    None
}

/// Consequences of one fiber cut.
#[derive(Debug, Clone, PartialEq)]
pub struct CutImpact {
    /// Links extinguished by the cut.
    pub links_down: Vec<LinkId>,
    /// Capacity removed from the topology.
    pub capacity_lost: rwc_util::units::Gbps,
    /// Traffic (from the given solution) that was riding the cut links.
    pub traffic_stranded: f64,
}

/// Evaluates a fiber cut against a topology and a current TE solution
/// (whose edge flows must follow the `TeProblem::from_wan` layout:
/// edges `2·link` and `2·link + 1`).
pub fn cut_impact(
    wan: &WanTopology,
    problem: &TeProblem,
    solution: &TeSolution,
    fiber_id: usize,
) -> CutImpact {
    let links_down: Vec<LinkId> = wan
        .links()
        .filter(|(_, l)| l.fiber_id == fiber_id)
        .map(|(id, _)| id)
        .collect();
    let capacity_lost = links_down.iter().map(|&id| wan.link(id).capacity()).sum();
    let mut stranded = 0.0;
    for &id in &links_down {
        let fwd = 2 * id.0;
        let bwd = fwd + 1;
        if bwd < solution.edge_flows.len() && problem.net.n_edges() == solution.edge_flows.len() {
            stranded += solution.edge_flows[fwd] + solution.edge_flows[bwd];
        }
    }
    CutImpact { links_down, capacity_lost, traffic_stranded: stranded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandMatrix, Priority};
    use crate::swan::SwanTe;
    use crate::TeAlgorithm;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    /// A square where both "horizontal" links share one cable.
    fn shared_conduit_square() -> WanTopology {
        let mut wan = builders::fig7_example();
        // Links 0 (A–B) and 2 (A–C) ride the same fiber.
        wan.link_mut(LinkId(2)).fiber_id = wan.link(LinkId(0)).fiber_id;
        wan
    }

    #[test]
    fn groups_follow_fiber_ids() {
        let wan = shared_conduit_square();
        let groups = shared_risk_groups(&wan);
        // 4 links on 3 cables.
        assert_eq!(groups.len(), 3);
        let shared = groups.get(&wan.link(LinkId(0)).fiber_id).unwrap();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn disjoint_pair_on_abilene() {
        let wan = builders::abilene();
        let sea = wan.node_by_name("SEA").unwrap();
        let nyc = wan.node_by_name("NYC").unwrap();
        let (primary, backup) = srlg_disjoint_paths(&wan, sea, nyc, 8).expect("pair exists");
        assert!(fibers_of(&wan, &primary).is_disjoint(&fibers_of(&wan, &backup)));
        assert_eq!(primary.source(), sea);
        assert_eq!(backup.sink(), nyc);
        // Primary is the shorter of the two.
        assert!(primary.weight <= backup.weight);
    }

    #[test]
    fn no_disjoint_pair_through_shared_conduit() {
        // A→C in the modified square: direct A–C shares a cable with A–B,
        // and the only alternative A-B-D-C uses A–B — every pair of A→C
        // paths intersects in fiber space.
        let wan = shared_conduit_square();
        let a = wan.node_by_name("A").unwrap();
        let c = wan.node_by_name("C").unwrap();
        assert!(srlg_disjoint_paths(&wan, a, c, 10).is_none());
    }

    #[test]
    fn cut_impact_counts_capacity_and_traffic() {
        let wan = shared_conduit_square();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(80.0), Priority::Elastic);
        let problem = TeProblem::from_wan(&wan, &dm);
        let sol = SwanTe::default().solve(&problem);
        let fiber = wan.link(LinkId(0)).fiber_id;
        let impact = cut_impact(&wan, &problem, &sol, fiber);
        assert_eq!(impact.links_down.len(), 2);
        assert_eq!(impact.capacity_lost, Gbps(200.0));
        // The 80 G rode the direct A–B link, which is on the cut cable.
        assert!(impact.traffic_stranded >= 79.0, "{}", impact.traffic_stranded);
    }

    #[test]
    fn cut_of_unknown_fiber_is_empty() {
        let wan = builders::fig7_example();
        let problem = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = SwanTe::default().solve(&problem);
        let impact = cut_impact(&wan, &problem, &sol, 999);
        assert!(impact.links_down.is_empty());
        assert_eq!(impact.capacity_lost, Gbps(0.0));
    }
}
