//! SWAN-style traffic engineering.
//!
//! SWAN (Hong et al., SIGCOMM'13) allocates priority classes strictly in
//! order: interactive traffic is routed first; elastic traffic sees only
//! the residual capacity; background traffic scavenges what is left. Each
//! class is a multicommodity-flow problem, solved here with the hybrid
//! FPTAS/greedy solver from `rwc-flow`. A headroom (scratch) fraction can
//! be reserved on every link, mirroring SWAN's congestion-free update
//! slack.

use crate::demand::Priority;
use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_flow::mcf::{max_multicommodity_flow, Commodity};
use rwc_flow::network::FlowNetwork;

/// SWAN-style solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SwanTe {
    /// FPTAS accuracy (0.05–0.15 typical).
    pub epsilon: f64,
    /// Fraction of every link reserved as update scratch (SWAN used ~10%;
    /// 0 disables).
    pub scratch_fraction: f64,
}

impl Default for SwanTe {
    fn default() -> Self {
        Self { epsilon: 0.05, scratch_fraction: 0.0 }
    }
}

impl TeAlgorithm for SwanTe {
    fn name(&self) -> &'static str {
        "swan"
    }

    fn try_solve(&self, problem: &TeProblem) -> Result<TeSolution, TeError> {
        if !(0.0..1.0).contains(&self.scratch_fraction) {
            return Err(TeError::InvalidConfig {
                algorithm: self.name(),
                detail: format!(
                    "scratch fraction must lie in [0,1), got {}",
                    self.scratch_fraction
                ),
            });
        }
        let n_edges = problem.net.n_edges();
        let mut residual: Vec<f64> = problem
            .net
            .edges()
            .iter()
            .map(|e| e.capacity * (1.0 - self.scratch_fraction))
            .collect();
        let mut routed = vec![0.0; problem.commodities.len()];
        let mut edge_flows = vec![0.0; n_edges];

        for class in Priority::ALL {
            let indices = problem.commodities_of(class);
            if indices.is_empty() {
                continue;
            }
            // Build the class sub-problem on residual capacity.
            let mut net = FlowNetwork::new(problem.net.n_nodes());
            for (e, &res) in problem.net.edges().iter().zip(&residual) {
                net.add_edge(e.from, e.to, res, e.cost);
            }
            let commodities: Vec<Commodity> =
                indices.iter().map(|&i| problem.commodities[i]).collect();
            if commodities.iter().all(|c| c.demand <= 0.0) {
                continue;
            }
            let result = max_multicommodity_flow(&net, &commodities, self.epsilon);
            for (pos, &idx) in indices.iter().enumerate() {
                routed[idx] = result.routed[pos];
            }
            let agg = result.aggregate_edge_flows(n_edges);
            for ((flow, used), res) in
                edge_flows.iter_mut().zip(&agg).zip(residual.iter_mut())
            {
                *flow += used;
                *res = (*res - used).max(0.0);
            }
        }
        let total = routed.iter().sum();
        Ok(TeSolution { routed, edge_flows, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandMatrix;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn contended_problem() -> TeProblem {
        // A 3-node line: both demands fight over the single B–C link.
        let wan = builders::ring(3, 400.0);
        let mut wan = wan;
        // Use ring(3): nodes R0,R1,R2, links R0-R1, R1-R2, R2-R0.
        let r0 = wan.node_by_name("R0").unwrap();
        let r1 = wan.node_by_name("R1").unwrap();
        let mut dm = DemandMatrix::new();
        // 150 G of interactive + 150 G of background between the same pair:
        // capacity (direct 100 + detour 100) = 200 total.
        dm.add(r0, r1, Gbps(150.0), Priority::Interactive);
        dm.add(r0, r1, Gbps(150.0), Priority::Background);
        let _ = &mut wan;
        TeProblem::from_wan(&wan, &dm)
    }

    #[test]
    fn interactive_wins_contention() {
        let p = contended_problem();
        let sol = SwanTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // ~200 G total is routable; interactive must get its 150 first.
        assert!(sol.routed[0] > 140.0, "interactive={}", sol.routed[0]);
        assert!(
            sol.routed[1] < sol.routed[0],
            "background {} must trail interactive {}",
            sol.routed[1],
            sol.routed[0]
        );
        assert!(sol.total > 180.0, "total={}", sol.total);
    }

    #[test]
    fn uncontended_routes_all_classes() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(30.0), Priority::Interactive);
        dm.add(a, b, Gbps(30.0), Priority::Elastic);
        dm.add(a, b, Gbps(30.0), Priority::Background);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = SwanTe::default().solve(&p);
        sol.validate(&p).unwrap();
        assert!((sol.satisfaction(&p) - 1.0).abs() < 0.02, "sat={}", sol.satisfaction(&p));
    }

    #[test]
    fn scratch_reserves_headroom() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(1_000.0), Priority::Elastic); // saturating
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = SwanTe { epsilon: 0.05, scratch_fraction: 0.1 }.solve(&p);
        sol.validate(&p).unwrap();
        // No edge may exceed 90% of capacity.
        for (f, e) in sol.edge_flows.iter().zip(p.net.edges()) {
            assert!(*f <= e.capacity * 0.9 + 1e-6, "{f} vs {}", e.capacity);
        }
    }

    #[test]
    fn empty_matrix_is_zero() {
        let wan = builders::fig7_example();
        let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
        let sol = SwanTe::default().solve(&p);
        assert_eq!(sol.total, 0.0);
        assert!(sol.edge_flows.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn gravity_workload_on_abilene() {
        let wan = builders::abilene();
        let dm = DemandMatrix::gravity(&wan, Gbps(600.0), 3);
        let p = TeProblem::from_wan(&wan, &dm);
        let sol = SwanTe::default().solve(&p);
        sol.validate(&p).unwrap();
        // A light load (600 G over a 1.4 T network) should be mostly
        // satisfiable.
        assert!(sol.satisfaction(&p) > 0.8, "sat={}", sol.satisfaction(&p));
    }
}
