//! Consistent network updates around capacity changes.
//!
//! §4.2(ii): a flow that may be rerouted but not disrupted is handled with
//! the consistent-updates toolkit — identify the links to be updated `E_U`,
//! drain them (recompute TE with their capacity reduced), apply the
//! reconfiguration, then move to the final allocation. This module builds
//! that three-step plan and accounts for the churn each step causes.
//!
//! The drain capacity depends on the BVT procedure: the *legacy* procedure
//! takes the link fully down (~68 s), so the interim state must treat it
//! as capacity 0; the *efficient* procedure (~35 ms) keeps the link alive
//! at the lower of the two rates.

use crate::demand::DemandMatrix;
use crate::metrics::churn;
use crate::problem::{TeProblem, TeSolution};
use crate::{TeAlgorithm, TeError};
use rwc_optics::Modulation;
use rwc_topology::wan::{LinkId, WanTopology};

/// One planned capacity change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityChange {
    /// Which link.
    pub link: LinkId,
    /// Target modulation.
    pub to: Modulation,
}

/// A three-step consistent-update plan.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Allocation while the changing links are drained/reduced.
    pub interim: TeSolution,
    /// Allocation after all changes are applied.
    pub final_solution: TeSolution,
    /// Traffic moved entering the interim state.
    pub churn_into_interim: f64,
    /// Traffic moved from interim to final.
    pub churn_into_final: f64,
    /// Throughput lost during the interim relative to the final state.
    pub interim_throughput_gap: f64,
}

impl UpdatePlan {
    /// Total traffic moved across both transitions.
    pub fn total_churn(&self) -> f64 {
        self.churn_into_interim + self.churn_into_final
    }
}

/// Builds a consistent-update plan for a set of capacity changes.
///
/// `current` is the allocation in force before the update (used for churn
/// accounting of the first transition); pass `None` to start from an idle
/// network. `hitless` selects the efficient BVT procedure (links stay up
/// at `min(old, new)` during the change) vs the legacy one (links drop to
/// zero).
pub fn plan_capacity_changes(
    wan: &WanTopology,
    demands: &DemandMatrix,
    changes: &[CapacityChange],
    algorithm: &dyn TeAlgorithm,
    hitless: bool,
    current: Option<&TeSolution>,
) -> UpdatePlan {
    match try_plan_capacity_changes(wan, demands, changes, algorithm, hitless, current) {
        Ok(plan) => plan,
        Err(e) => panic!("update planning failed: {e}"),
    }
}

/// Fallible variant of [`plan_capacity_changes`] for the fault-tolerant
/// pipeline: an empty change set or a solver failure comes back as a
/// [`TeError`] instead of a panic, so the caller can keep the previous
/// allocation in force.
pub fn try_plan_capacity_changes(
    wan: &WanTopology,
    demands: &DemandMatrix,
    changes: &[CapacityChange],
    algorithm: &dyn TeAlgorithm,
    hitless: bool,
    current: Option<&TeSolution>,
) -> Result<UpdatePlan, TeError> {
    if changes.is_empty() {
        return Err(TeError::InvalidConfig {
            algorithm: algorithm.name(),
            detail: "no changes to plan".into(),
        });
    }

    // Interim problem: changing links at their transition capacity.
    let mut interim_problem = TeProblem::from_wan(wan, demands);
    for change in changes {
        let old_cap = wan.link(change.link).capacity();
        let transition = if hitless {
            old_cap.min(change.to.capacity()).value()
        } else {
            0.0
        };
        // from_wan lays out edges as (2·link, 2·link+1).
        interim_problem.override_link_capacity(change.link, transition);
    }
    let interim = algorithm.try_solve(&interim_problem)?;

    // Final problem: changes applied.
    let mut final_wan = wan.clone();
    for change in changes {
        final_wan.set_modulation(change.link, change.to);
    }
    let final_problem = TeProblem::from_wan(&final_wan, demands);
    let final_solution = algorithm.try_solve(&final_problem)?;

    let zero = vec![0.0; interim.edge_flows.len()];
    let before = current.map(|s| s.edge_flows.as_slice()).unwrap_or(&zero);
    Ok(UpdatePlan {
        churn_into_interim: churn(before, &interim.edge_flows),
        churn_into_final: churn(&interim.edge_flows, &final_solution.edge_flows),
        interim_throughput_gap: (final_solution.total - interim.total).max(0.0),
        interim,
        final_solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Priority;
    use crate::swan::SwanTe;
    use rwc_topology::builders;
    use rwc_util::units::Gbps;

    fn setup() -> (WanTopology, DemandMatrix, CapacityChange) {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let mut dm = DemandMatrix::new();
        dm.add(a, b, Gbps(120.0), Priority::Elastic);
        // Upgrade the direct A–B link (link 0) to 200 G.
        (wan, dm, CapacityChange { link: LinkId(0), to: Modulation::Dp16Qam200 })
    }

    use rwc_topology::wan::LinkId;

    #[test]
    fn hitless_keeps_interim_throughput() {
        let (wan, dm, change) = setup();
        let algo = SwanTe::default();
        let plan = plan_capacity_changes(&wan, &dm, &[change], &algo, true, None);
        // Hitless: link stays at 100 G during the change; the 120 G demand
        // still routes (100 direct + detour).
        assert!(plan.interim.total > 110.0, "interim={}", plan.interim.total);
        // Final: 200 G direct link satisfies everything.
        assert!((plan.final_solution.total - 120.0).abs() < 2.0);
    }

    #[test]
    fn legacy_drain_hurts_interim() {
        let (wan, dm, change) = setup();
        let algo = SwanTe::default();
        let hitless = plan_capacity_changes(&wan, &dm, &[change], &algo, true, None);
        let legacy = plan_capacity_changes(&wan, &dm, &[change], &algo, false, None);
        // With the direct link dark, only the detour capacity remains.
        assert!(
            legacy.interim.total < hitless.interim.total,
            "legacy interim {} must trail hitless {}",
            legacy.interim.total,
            hitless.interim.total
        );
        assert!(legacy.interim_throughput_gap > hitless.interim_throughput_gap);
    }

    #[test]
    fn churn_accounting() {
        let (wan, dm, change) = setup();
        let algo = SwanTe::default();
        // Starting from the current (pre-update) allocation.
        let current = algo.solve(&TeProblem::from_wan(&wan, &dm));
        let plan =
            plan_capacity_changes(&wan, &dm, &[change], &algo, true, Some(&current));
        assert!(plan.total_churn() >= 0.0);
        assert_eq!(
            plan.total_churn(),
            plan.churn_into_interim + plan.churn_into_final
        );
        // Final state routes at least as much as the start.
        assert!(plan.final_solution.total >= current.total - 1e-6);
    }

    #[test]
    fn multiple_simultaneous_changes() {
        let (wan, dm, _) = setup();
        let algo = SwanTe::default();
        let changes = [
            CapacityChange { link: LinkId(0), to: Modulation::Dp16Qam200 },
            CapacityChange { link: LinkId(1), to: Modulation::Hybrid175 },
        ];
        let plan = plan_capacity_changes(&wan, &dm, &changes, &algo, false, None);
        // Both links dark in the interim: solution must still validate.
        assert!(plan.interim.total >= 0.0);
        assert!(plan.final_solution.total >= plan.interim.total);
    }

    #[test]
    #[should_panic]
    fn empty_changes_rejected() {
        let (wan, dm, _) = setup();
        plan_capacity_changes(&wan, &dm, &[], &SwanTe::default(), true, None);
    }
}
