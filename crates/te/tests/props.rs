//! Property tests: every TE solver emits feasible, demand-capped solutions
//! on random topologies and workloads, and the solver hierarchy holds.

use proptest::prelude::*;
use rwc_te::b4::B4Te;
use rwc_te::cspf::CspfTe;
use rwc_te::demand::{DemandMatrix, Priority};
use rwc_te::problem::TeProblem;
use rwc_te::swan::SwanTe;
use rwc_te::{TeAlgorithm, TeSolver};
use rwc_topology::random::{waxman, WaxmanConfig};
use rwc_topology::WanTopology;
use rwc_util::units::Gbps;

fn arb_case() -> impl Strategy<Value = (WanTopology, DemandMatrix)> {
    (4usize..9, 0u64..200, 50.0f64..900.0, 0u64..50).prop_map(|(n, seed, volume, dseed)| {
        let wan = waxman(&WaxmanConfig { n_nodes: n, seed, ..Default::default() });
        let dm = DemandMatrix::gravity(&wan, Gbps(volume), dseed);
        (wan, dm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heuristic solvers always produce valid solutions; the exact LP
    /// upper-bounds them all.
    #[test]
    fn solver_hierarchy((wan, dm) in arb_case()) {
        let problem = TeProblem::from_wan(&wan, &dm);
        let exact = TeSolver::builder().build().unwrap().solve(&problem);
        prop_assert!(exact.validate(&problem).is_ok(), "exact invalid");
        for algo in [
            Box::new(SwanTe::default()) as Box<dyn TeAlgorithm>,
            Box::new(B4Te::default()),
            Box::new(CspfTe::default()),
        ] {
            let sol = algo.solve(&problem);
            prop_assert!(sol.validate(&problem).is_ok(), "{} invalid", algo.name());
            prop_assert!(sol.total <= exact.total + 1e-4,
                "{} ({}) beat the LP optimum ({})", algo.name(), sol.total, exact.total);
        }
    }

    /// SWAN's priority order is strict: shrinking background demand never
    /// reduces what interactive traffic receives.
    #[test]
    fn swan_priority_isolation((wan, dm) in arb_case()) {
        let problem = TeProblem::from_wan(&wan, &dm);
        let full = SwanTe::default().solve(&problem);
        // Drop all background demands.
        let mut reduced = DemandMatrix::new();
        for d in dm.demands() {
            if d.priority != Priority::Background {
                reduced.add(d.from, d.to, d.volume, d.priority);
            }
        }
        prop_assume!(!reduced.is_empty());
        let reduced_problem = TeProblem::from_wan(&wan, &reduced);
        let without_bg = SwanTe::default().solve(&reduced_problem);
        let interactive_full: f64 = problem
            .commodities_of(Priority::Interactive)
            .iter()
            .map(|&i| full.routed[i])
            .sum();
        let interactive_without: f64 = reduced_problem
            .commodities_of(Priority::Interactive)
            .iter()
            .map(|&i| without_bg.routed[i])
            .sum();
        // Background traffic is invisible to the interactive allocation.
        prop_assert!((interactive_full - interactive_without).abs() < 1e-6,
            "{interactive_full} vs {interactive_without}");
    }

    /// Demand scaling is monotone for the *exact* solver (an LP optimum
    /// can only grow when constraints relax). Heuristics are provably NOT
    /// monotone — more offered load can bait greedy path choices into
    /// worse packings — so they only get a bounded-regression check.
    /// (Proptest found the counterexample that forced this split.)
    #[test]
    fn throughput_monotone_in_demand((wan, dm) in arb_case(), factor in 1.1f64..3.0) {
        let exact = TeSolver::builder().build().unwrap();
        let exact_base = exact.solve(&TeProblem::from_wan(&wan, &dm));
        let exact_scaled = exact.solve(&TeProblem::from_wan(&wan, &dm.scaled(factor)));
        prop_assert!(exact_scaled.total >= exact_base.total - 1e-4,
            "exact: {} -> {}", exact_base.total, exact_scaled.total);
        for algo in [
            Box::new(SwanTe::default()) as Box<dyn TeAlgorithm>,
            Box::new(CspfTe::default()),
        ] {
            let base = algo.solve(&TeProblem::from_wan(&wan, &dm));
            let scaled = algo.solve(&TeProblem::from_wan(&wan, &dm.scaled(factor)));
            prop_assert!(scaled.total >= 0.8 * base.total - 1e-6,
                "{}: {} -> {}", algo.name(), base.total, scaled.total);
        }
    }
}
