//! Per-link and fleet-wide telemetry analysis.
//!
//! These are the computations behind the paper's measurement figures:
//!
//! - Fig. 2a: per-link SNR **range** and 95% **HDR width** distributions;
//! - Fig. 2b: per-link **feasible capacity** (from the HDR lower edge) and
//!   the fleet-wide capacity gain (the paper's 145 Tbps);
//! - Fig. 3a/3b: **failure episodes** a link would suffer if operated at
//!   each rung of the ladder — count and duration;
//! - Fig. 4c: the **SNR floor** during 100 G failure episodes, which decides
//!   whether a failure could instead have been a flap to a lower rate.

use crate::hdr::Hdr;
use crate::trace::SnrTrace;
use rwc_optics::{Modulation, ModulationTable};
use rwc_util::stats::Ecdf;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::{Db, Gbps};
use serde::{Content, Deserialize, Serialize};
use std::sync::OnceLock;

/// A maximal run of consecutive samples below a threshold — one link
/// failure at the corresponding capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEpisode {
    /// Time of the first below-threshold sample.
    pub start: SimTime,
    /// Episode length (`samples × tick`).
    pub duration: SimDuration,
    /// Lowest SNR observed during the episode — Fig. 4c's x-axis.
    pub floor: Db,
}

/// Finds all failure episodes of a trace at the given SNR threshold.
pub fn episodes_below(trace: &SnrTrace, threshold: Db) -> Vec<FailureEpisode> {
    let mut episodes = Vec::new();
    let mut current: Option<(usize, f64)> = None; // (start index, floor)
    for (i, &v) in trace.values().iter().enumerate() {
        if v < threshold.value() {
            current = match current {
                None => Some((i, v)),
                Some((s, floor)) => Some((s, floor.min(v))),
            };
        } else if let Some((s, floor)) = current.take() {
            episodes.push(FailureEpisode {
                start: trace.time_at(s),
                duration: trace.tick() * (i - s) as u64,
                floor: Db(floor),
            });
        }
    }
    if let Some((s, floor)) = current {
        episodes.push(FailureEpisode {
            start: trace.time_at(s),
            duration: trace.tick() * (trace.len() - s) as u64,
            floor: Db(floor),
        });
    }
    episodes
}

/// Everything the measurement study needs to know about one link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkAnalysis {
    /// Mean SNR over the observation window.
    pub mean: Db,
    /// Minimum SNR.
    pub min: Db,
    /// Maximum SNR.
    pub max: Db,
    /// `max − min` (Fig. 2a blue curve).
    pub range: Db,
    /// 95% highest-density region (Fig. 2a red curve).
    pub hdr: Hdr,
    /// Fastest rung feasible at the HDR lower edge (Fig. 2b), if any.
    pub feasible: Option<Modulation>,
    /// Capacity of `feasible` (zero if none).
    pub feasible_capacity: Gbps,
    /// Gain over the 100 G static default (never negative).
    pub gain_over_static: Gbps,
    /// Failure episodes the link would suffer at each ladder rung
    /// (Fig. 3a counts, Fig. 3b durations, Fig. 4c floors), in ladder order.
    pub failures_per_rung: Vec<(Modulation, Vec<FailureEpisode>)>,
}

/// The fleet's static per-link rate in the paper.
pub const STATIC_CAPACITY: Gbps = Gbps(100.0);

impl LinkAnalysis {
    /// Analyses one link trace against a modulation table.
    pub fn new(trace: &SnrTrace, table: &ModulationTable) -> Self {
        let hdr = Hdr::paper(trace);
        let feasible = table.feasible(hdr.feasibility_floor());
        let feasible_capacity = feasible.map_or(Gbps::ZERO, Modulation::capacity);
        let failures_per_rung = table
            .entries()
            .iter()
            .map(|&(m, threshold)| (m, episodes_below(trace, threshold)))
            .collect();
        Self {
            mean: trace.mean(),
            min: trace.min(),
            max: trace.max(),
            range: trace.range(),
            hdr,
            feasible,
            feasible_capacity,
            gain_over_static: feasible_capacity.saturating_sub(STATIC_CAPACITY),
            failures_per_rung,
        }
    }

    /// Failure episodes at a specific rung.
    pub fn failures_at(&self, m: Modulation) -> &[FailureEpisode] {
        self.failures_per_rung
            .iter()
            .find(|(rung, _)| *rung == m)
            .map(|(_, eps)| eps.as_slice())
            .unwrap_or(&[])
    }
}

/// Per-rung fleet series: the rung plus (failure count per link, duration
/// in hours per episode, floor in dB per episode).
type RungStats = (Modulation, Vec<f64>, Vec<f64>, Vec<f64>);

/// Streaming accumulator of per-link analyses into fleet-level series.
///
/// Push one [`LinkAnalysis`] per link (the generator materialises links one
/// at a time), then read off the figure series. The ECDF views are built
/// lazily on first access and cached until the next `push`/`merge`, so
/// repeated reads (Fig. 2's several series, Fig. 4's floor scans) stop
/// cloning and re-sorting the full per-link vectors each call.
#[derive(Debug, Clone, Default)]
pub struct FleetAccumulator {
    hdr_widths: Vec<f64>,
    ranges: Vec<f64>,
    feasible_caps: Vec<f64>,
    gains: Vec<f64>,
    per_rung: Vec<RungStats>,
    hdr_width_ecdf: OnceLock<Ecdf>,
    range_ecdf: OnceLock<Ecdf>,
    feasible_capacity_ecdf: OnceLock<Ecdf>,
}

impl FleetAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of links accumulated.
    pub fn len(&self) -> usize {
        self.hdr_widths.len()
    }

    /// True before the first link is pushed.
    pub fn is_empty(&self) -> bool {
        self.hdr_widths.is_empty()
    }

    /// Folds one link into the fleet statistics.
    pub fn push(&mut self, link: &LinkAnalysis) {
        self.invalidate_ecdfs();
        self.hdr_widths.push(link.hdr.width().value());
        self.ranges.push(link.range.value());
        self.feasible_caps.push(link.feasible_capacity.value());
        self.gains.push(link.gain_over_static.value());
        if self.per_rung.is_empty() {
            self.per_rung = link
                .failures_per_rung
                .iter()
                .map(|&(m, _)| (m, Vec::new(), Vec::new(), Vec::new()))
                .collect();
        }
        for (slot, (m, episodes)) in self.per_rung.iter_mut().zip(&link.failures_per_rung) {
            assert_eq!(slot.0, *m, "links analysed against different tables");
            slot.1.push(episodes.len() as f64);
            // Episode durations/floors follow the paper's Fig. 3b filter:
            // a hypothetical capacity is only evaluated on links whose SNR
            // makes it feasible ("only if the capacity is feasible as per
            // the link's SNR") — otherwise a permanently infeasible rung
            // would register one horizon-long "failure".
            if link.feasible_capacity >= m.capacity() {
                for e in episodes {
                    slot.2.push(e.duration.as_hours_f64());
                    slot.3.push(e.floor.value());
                }
            }
        }
    }

    /// Drops the cached ECDF views; called by every mutation.
    fn invalidate_ecdfs(&mut self) {
        self.hdr_width_ecdf = OnceLock::new();
        self.range_ecdf = OnceLock::new();
        self.feasible_capacity_ecdf = OnceLock::new();
    }

    /// ECDF of 95% HDR widths (Fig. 2a red curve). Built once, cached
    /// until the next `push`/`merge`.
    pub fn hdr_width_ecdf(&self) -> &Ecdf {
        self.hdr_width_ecdf.get_or_init(|| Ecdf::new(self.hdr_widths.clone()))
    }

    /// ECDF of SNR ranges (Fig. 2a blue curve). Cached like
    /// [`hdr_width_ecdf`](Self::hdr_width_ecdf).
    pub fn range_ecdf(&self) -> &Ecdf {
        self.range_ecdf.get_or_init(|| Ecdf::new(self.ranges.clone()))
    }

    /// ECDF of feasible capacities in Gbps (Fig. 2b). Cached like
    /// [`hdr_width_ecdf`](Self::hdr_width_ecdf).
    pub fn feasible_capacity_ecdf(&self) -> &Ecdf {
        self.feasible_capacity_ecdf.get_or_init(|| Ecdf::new(self.feasible_caps.clone()))
    }

    /// Per-link feasible capacities (Gbps) in push order. A single-link
    /// partial (as checkpointed by the serve daemon) exposes its one value
    /// at index 0.
    pub fn feasible_capacities(&self) -> &[f64] {
        &self.feasible_caps
    }

    /// Fraction of links whose HDR is narrower than `width` (the paper: 83%
    /// below 2 dB).
    pub fn fraction_hdr_below(&self, width: Db) -> f64 {
        assert!(!self.is_empty(), "no links accumulated");
        let n = self.hdr_widths.iter().filter(|&&w| w < width.value()).count();
        n as f64 / self.hdr_widths.len() as f64
    }

    /// Fraction of links feasible at `capacity` or higher (the paper: 80%
    /// at ≥175 G).
    pub fn fraction_feasible_at_least(&self, capacity: Gbps) -> f64 {
        assert!(!self.is_empty(), "no links accumulated");
        let n = self.feasible_caps.iter().filter(|&&c| c >= capacity.value()).count();
        n as f64 / self.feasible_caps.len() as f64
    }

    /// Total fleet capacity gain over the static 100 G default (the paper:
    /// ≈145 Tbps for ~2,000 links).
    pub fn total_gain(&self) -> Gbps {
        Gbps(self.gains.iter().sum())
    }

    /// Per-link failure counts at a rung (Fig. 3a's y-values).
    pub fn failure_counts(&self, m: Modulation) -> &[f64] {
        self.rung(m).map(|r| r.1.as_slice()).unwrap_or(&[])
    }

    /// Episode durations in hours at a rung (Fig. 3b's y-values).
    pub fn failure_durations_hours(&self, m: Modulation) -> &[f64] {
        self.rung(m).map(|r| r.2.as_slice()).unwrap_or(&[])
    }

    /// Episode SNR floors in dB at a rung (Fig. 4c input, taken at 100 G).
    pub fn failure_floors_db(&self, m: Modulation) -> &[f64] {
        self.rung(m).map(|r| r.3.as_slice()).unwrap_or(&[])
    }

    /// Fraction of failure episodes at rung `m` whose SNR floor stayed at or
    /// above `floor` — the paper's "25% of failures could run at 50 G".
    pub fn fraction_failures_with_floor_at_least(&self, m: Modulation, floor: Db) -> f64 {
        let floors = self.failure_floors_db(m);
        if floors.is_empty() {
            return 0.0;
        }
        floors.iter().filter(|&&f| f >= floor.value()).count() as f64 / floors.len() as f64
    }

    fn rung(&self, m: Modulation) -> Option<&RungStats> {
        self.per_rung.iter().find(|r| r.0 == m)
    }

    /// Merges another accumulator (e.g. from a parallel worker) into this
    /// one. Both must have been fed links analysed against the same
    /// modulation table.
    pub fn merge(&mut self, other: FleetAccumulator) {
        self.invalidate_ecdfs();
        self.hdr_widths.extend(other.hdr_widths);
        self.ranges.extend(other.ranges);
        self.feasible_caps.extend(other.feasible_caps);
        self.gains.extend(other.gains);
        if self.per_rung.is_empty() {
            self.per_rung = other.per_rung;
        } else if !other.per_rung.is_empty() {
            assert_eq!(self.per_rung.len(), other.per_rung.len(), "different tables");
            for (slot, o) in self.per_rung.iter_mut().zip(other.per_rung) {
                assert_eq!(slot.0, o.0, "different tables");
                slot.1.extend(o.1);
                slot.2.extend(o.2);
                slot.3.extend(o.3);
            }
        }
    }
}

/// Hand-written because the lazy ECDF caches are derived state that must
/// stay out of the serialized form (and the vendored `serde_derive` has no
/// `#[serde(skip)]`). Serializes exactly the accumulated data fields, so
/// two accumulators with equal contents — however their caches differ —
/// produce identical bytes. That is what the fused-vs-legacy byte-identity
/// tests compare.
impl Serialize for FleetAccumulator {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("hdr_widths".into(), self.hdr_widths.to_content()),
            ("ranges".into(), self.ranges.to_content()),
            ("feasible_caps".into(), self.feasible_caps.to_content()),
            ("gains".into(), self.gains.to_content()),
            ("per_rung".into(), self.per_rung.to_content()),
        ])
    }
}

/// The inverse of the hand-written [`Serialize`]: restores the accumulated
/// data fields and leaves the ECDF caches cold, so serializing a restored
/// accumulator reproduces the original bytes exactly. This is what lets
/// checkpointed chunk partials resume byte-identically (rwc-harness).
impl Deserialize for FleetAccumulator {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "FleetAccumulator"))?;
        Ok(Self {
            hdr_widths: Deserialize::from_content(serde::map_field(map, "hdr_widths"))?,
            ranges: Deserialize::from_content(serde::map_field(map, "ranges"))?,
            feasible_caps: Deserialize::from_content(serde::map_field(map, "feasible_caps"))?,
            gains: Deserialize::from_content(serde::map_field(map, "gains"))?,
            per_rung: Deserialize::from_content(serde::map_field(map, "per_rung"))?,
            hdr_width_ecdf: OnceLock::new(),
            range_ecdf: OnceLock::new(),
            feasible_capacity_ecdf: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_util::time::{SimDuration, SimTime};

    fn trace(samples: Vec<f64>) -> SnrTrace {
        SnrTrace::new(SimTime::EPOCH, SimDuration::TELEMETRY_TICK, samples)
    }

    #[test]
    fn episode_detection_merges_consecutive_samples() {
        let t = trace(vec![12.0, 5.0, 4.0, 6.0, 12.0, 3.0, 12.0]);
        let eps = episodes_below(&t, Db(6.5));
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].duration, SimDuration::from_minutes(45));
        assert_eq!(eps[0].floor, Db(4.0));
        assert_eq!(eps[1].duration, SimDuration::from_minutes(15));
        assert_eq!(eps[1].floor, Db(3.0));
        assert_eq!(eps[0].start, SimTime::EPOCH + SimDuration::from_minutes(15));
    }

    #[test]
    fn episode_running_at_trace_end() {
        let t = trace(vec![12.0, 4.0, 4.0]);
        let eps = episodes_below(&t, Db(6.5));
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].duration, SimDuration::from_minutes(30));
    }

    #[test]
    fn no_episodes_on_healthy_trace() {
        let t = trace(vec![12.0; 100]);
        assert!(episodes_below(&t, Db(6.5)).is_empty());
    }

    #[test]
    fn boundary_is_strict() {
        // A sample exactly at threshold is NOT a failure (>= holds the link).
        let t = trace(vec![6.5, 6.5]);
        assert!(episodes_below(&t, Db(6.5)).is_empty());
    }

    #[test]
    fn link_analysis_full_pipeline() {
        // 96 samples at ~12.8, 4 outage samples: feasible 200 G from HDR
        // floor; one failure at every rung.
        let mut samples = vec![12.8; 96];
        samples.extend([0.2, 0.2, 0.2, 0.2]);
        let a = LinkAnalysis::new(&trace(samples), &ModulationTable::paper_default());
        assert_eq!(a.feasible, Some(Modulation::Dp16Qam200));
        assert_eq!(a.feasible_capacity, Gbps(200.0));
        assert_eq!(a.gain_over_static, Gbps(100.0));
        assert!(a.range.value() > 12.0);
        assert!(a.hdr.width().value() < 0.1);
        for (_, eps) in &a.failures_per_rung {
            assert_eq!(eps.len(), 1);
            assert_eq!(eps[0].duration, SimDuration::from_minutes(60));
        }
    }

    #[test]
    fn marginal_link_fails_only_at_high_rungs() {
        // Baseline 11.5: above the 175 G threshold (11.0) but a 1 dB wobble
        // crosses it; 200 G (12.5) is permanently infeasible.
        let samples: Vec<f64> =
            (0..100).map(|i| if i % 10 == 0 { 10.8 } else { 11.5 }).collect();
        let a = LinkAnalysis::new(&trace(samples), &ModulationTable::paper_default());
        assert!(a.failures_at(Modulation::DpQpsk100).is_empty());
        assert_eq!(a.failures_at(Modulation::Hybrid175).len(), 10);
        assert!(!a.failures_at(Modulation::Dp16Qam200).is_empty());
    }

    #[test]
    fn accumulator_aggregates() {
        let table = ModulationTable::paper_default();
        let mut acc = FleetAccumulator::new();
        // Link 1: strong (200 G), one outage.
        let mut s1 = vec![13.5; 97];
        s1.extend([0.2, 0.2, 0.2]);
        acc.push(&LinkAnalysis::new(&trace(s1), &table));
        // Link 2: weak (125 G), no failures.
        acc.push(&LinkAnalysis::new(&trace(vec![8.4; 100]), &table));
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.total_gain(), Gbps(125.0)); // 100 + 25
        assert_eq!(acc.fraction_feasible_at_least(Gbps(175.0)), 0.5);
        assert_eq!(acc.fraction_hdr_below(Db(2.0)), 1.0);
        assert_eq!(acc.failure_counts(Modulation::DpQpsk100), &[1.0, 0.0]);
        assert_eq!(acc.failure_durations_hours(Modulation::DpQpsk100).len(), 1);
        // The outage floor is ~0.2 dB, below the 3 dB / 50 G line.
        assert_eq!(
            acc.fraction_failures_with_floor_at_least(Modulation::DpQpsk100, Db(3.0)),
            0.0
        );
    }

    #[test]
    fn accumulator_floor_fraction() {
        let table = ModulationTable::paper_default();
        let mut acc = FleetAccumulator::new();
        // One failure bottoming at 4 dB (flap-able), one at 0.2 (hard down).
        let mut s = vec![12.8; 50];
        s.push(4.0);
        s.extend(vec![12.8; 10]);
        s.push(0.2);
        s.extend(vec![12.8; 38]);
        acc.push(&LinkAnalysis::new(&trace(s), &table));
        let frac = acc.fraction_failures_with_floor_at_least(Modulation::DpQpsk100, Db(3.0));
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let table = ModulationTable::paper_default();
        let traces: Vec<SnrTrace> = [12.8, 8.4, 13.5, 9.6]
            .iter()
            .map(|&b| trace(vec![b; 100]))
            .collect();
        let mut sequential = FleetAccumulator::new();
        for t in &traces {
            sequential.push(&LinkAnalysis::new(t, &table));
        }
        let mut left = FleetAccumulator::new();
        let mut right = FleetAccumulator::new();
        for t in &traces[..2] {
            left.push(&LinkAnalysis::new(t, &table));
        }
        for t in &traces[2..] {
            right.push(&LinkAnalysis::new(t, &table));
        }
        left.merge(right);
        assert_eq!(left.len(), sequential.len());
        assert_eq!(left.total_gain(), sequential.total_gain());
        assert_eq!(
            left.fraction_feasible_at_least(Gbps(175.0)),
            sequential.fraction_feasible_at_least(Gbps(175.0))
        );
        assert_eq!(
            left.failure_counts(Modulation::DpQpsk100).len(),
            sequential.failure_counts(Modulation::DpQpsk100).len()
        );
    }

    #[test]
    fn merge_into_empty() {
        let table = ModulationTable::paper_default();
        let mut a = FleetAccumulator::new();
        let mut b = FleetAccumulator::new();
        b.push(&LinkAnalysis::new(&trace(vec![12.0; 50]), &table));
        a.merge(b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn accumulator_json_round_trip_is_byte_identical() {
        let table = ModulationTable::paper_default();
        let mut acc = FleetAccumulator::new();
        let mut s1 = vec![13.5; 97];
        s1.extend([0.2, 0.2, 0.2]);
        acc.push(&LinkAnalysis::new(&trace(s1), &table));
        acc.push(&LinkAnalysis::new(&trace(vec![8.4; 100]), &table));
        // Touch an ECDF cache: derived state must not leak into the bytes.
        let _ = acc.hdr_width_ecdf();
        let json = serde_json::to_string(&acc).unwrap();
        let back: FleetAccumulator = serde_json::from_str(&json).expect("round trip");
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.len(), acc.len());
        assert_eq!(back.total_gain(), acc.total_gain());
        assert_eq!(
            back.failure_counts(Modulation::DpQpsk100),
            acc.failure_counts(Modulation::DpQpsk100)
        );
    }

    #[test]
    fn accumulator_deserialize_rejects_non_map() {
        assert!(serde_json::from_str::<FleetAccumulator>("[1,2]").is_err());
    }

    #[test]
    fn ecdf_series_shapes() {
        let table = ModulationTable::paper_default();
        let mut acc = FleetAccumulator::new();
        for base in [8.4, 9.6, 11.2, 12.8, 13.4] {
            acc.push(&LinkAnalysis::new(&trace(vec![base; 100]), &table));
        }
        let caps = acc.feasible_capacity_ecdf();
        assert_eq!(caps.min(), 125.0);
        assert_eq!(caps.max(), 200.0);
        // 3 of 5 links at >= 175 G.
        assert!((acc.fraction_feasible_at_least(Gbps(175.0)) - 0.6).abs() < 1e-12);
    }
}
