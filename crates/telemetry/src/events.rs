//! Ground-truth event schedules for synthetic traces.
//!
//! Each link's SNR series is shaped by a sparse list of events. Keeping the
//! schedule explicit (rather than baked into the samples) gives the failure
//! analyses a ground truth to validate against: every loss-of-light event
//! must be detected as a 100 G failure, every shallow dip must not, etc.

use rwc_util::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What kind of impairment an event is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Transient SNR dip of the given depth (dB) — amplifier trouble,
    /// maintenance-coincident impairment, transient loss.
    Dip {
        /// SNR reduction while the event is active, dB.
        depth_db: f64,
    },
    /// Persistent degradation of the given magnitude until repaired —
    /// component aging, partial hardware failure.
    Step {
        /// SNR reduction while the event is active, dB.
        delta_db: f64,
    },
    /// Complete loss of light: the receiver reads the noise floor.
    LossOfLight,
}

/// One scheduled impairment on a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Kind and magnitude.
    pub kind: EventKind,
    /// Onset.
    pub start: SimTime,
    /// How long the impairment lasts.
    pub duration: SimDuration,
}

impl Event {
    /// End of the event (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Whether the event is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }

    /// SNR contribution at time `t`: a negative dB offset, or `None` when
    /// the event forces loss-of-light.
    pub fn snr_effect_at(&self, t: SimTime) -> Option<f64> {
        if !self.active_at(t) {
            return Some(0.0);
        }
        match self.kind {
            EventKind::Dip { depth_db } => Some(-depth_db),
            EventKind::Step { delta_db } => Some(-delta_db),
            EventKind::LossOfLight => None,
        }
    }
}

/// The full, ordered schedule of events for one link.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event (kept sorted by start time).
    pub fn push(&mut self, event: Event) {
        let idx = self.events.partition_point(|e| e.start <= event.start);
        self.events.insert(idx, event);
    }

    /// All events, ordered by start.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges another log into this one.
    pub fn extend(&mut self, other: &EventLog) {
        for &e in other.events() {
            self.push(e);
        }
    }

    /// Combined SNR effect at `t`: total negative offset in dB, or `None`
    /// if any active event is a loss-of-light.
    pub fn snr_effect_at(&self, t: SimTime) -> Option<f64> {
        let mut total = 0.0;
        for e in &self.events {
            total += e.snr_effect_at(t)?;
        }
        Some(total)
    }

    /// Events of a given kind predicate (e.g. all loss-of-light events).
    pub fn filter<F: Fn(&Event) -> bool>(&self, pred: F) -> Vec<Event> {
        self.events.iter().copied().filter(|e| pred(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> SimDuration {
        SimDuration::from_hours(h)
    }

    fn at(h: u64) -> SimTime {
        SimTime::EPOCH + hours(h)
    }

    #[test]
    fn event_window() {
        let e = Event { kind: EventKind::Dip { depth_db: 3.0 }, start: at(10), duration: hours(2) };
        assert!(!e.active_at(at(9)));
        assert!(e.active_at(at(10)));
        assert!(e.active_at(at(11)));
        assert!(!e.active_at(at(12)), "end is exclusive");
        assert_eq!(e.end(), at(12));
    }

    #[test]
    fn dip_and_step_effects() {
        let dip = Event { kind: EventKind::Dip { depth_db: 3.0 }, start: at(0), duration: hours(1) };
        assert_eq!(dip.snr_effect_at(at(0)), Some(-3.0));
        assert_eq!(dip.snr_effect_at(at(2)), Some(0.0));
        let step =
            Event { kind: EventKind::Step { delta_db: 1.5 }, start: at(0), duration: hours(100) };
        assert_eq!(step.snr_effect_at(at(50)), Some(-1.5));
    }

    #[test]
    fn loss_of_light_dominates() {
        let mut log = EventLog::new();
        log.push(Event { kind: EventKind::Dip { depth_db: 2.0 }, start: at(0), duration: hours(5) });
        log.push(Event { kind: EventKind::LossOfLight, start: at(1), duration: hours(2) });
        assert_eq!(log.snr_effect_at(at(0)), Some(-2.0));
        assert_eq!(log.snr_effect_at(at(1)), None, "LOL overrides any offset");
        assert_eq!(log.snr_effect_at(at(4)), Some(-2.0));
    }

    #[test]
    fn overlapping_effects_sum() {
        let mut log = EventLog::new();
        log.push(Event { kind: EventKind::Dip { depth_db: 2.0 }, start: at(0), duration: hours(4) });
        log.push(Event { kind: EventKind::Step { delta_db: 1.0 }, start: at(2), duration: hours(4) });
        assert_eq!(log.snr_effect_at(at(1)), Some(-2.0));
        assert_eq!(log.snr_effect_at(at(3)), Some(-3.0));
        assert_eq!(log.snr_effect_at(at(5)), Some(-1.0));
        assert_eq!(log.snr_effect_at(at(7)), Some(0.0));
    }

    #[test]
    fn log_stays_sorted() {
        let mut log = EventLog::new();
        log.push(Event { kind: EventKind::LossOfLight, start: at(5), duration: hours(1) });
        log.push(Event { kind: EventKind::LossOfLight, start: at(1), duration: hours(1) });
        log.push(Event { kind: EventKind::LossOfLight, start: at(3), duration: hours(1) });
        let starts: Vec<_> = log.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![at(1), at(3), at(5)]);
    }

    #[test]
    fn extend_merges_sorted() {
        let mut a = EventLog::new();
        a.push(Event { kind: EventKind::LossOfLight, start: at(4), duration: hours(1) });
        let mut b = EventLog::new();
        b.push(Event { kind: EventKind::LossOfLight, start: at(2), duration: hours(1) });
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[0].start, at(2));
    }

    #[test]
    fn filter_by_kind() {
        let mut log = EventLog::new();
        log.push(Event { kind: EventKind::LossOfLight, start: at(0), duration: hours(1) });
        log.push(Event { kind: EventKind::Dip { depth_db: 2.0 }, start: at(2), duration: hours(1) });
        let lols = log.filter(|e| matches!(e.kind, EventKind::LossOfLight));
        assert_eq!(lols.len(), 1);
    }
}
