//! Short-horizon SNR forecasting.
//!
//! A natural extension of the paper's controller: instead of reacting when
//! SNR crosses a threshold, anticipate the crossing and schedule the walk-
//! down *before* the link starts dropping frames. This module provides a
//! deliberately simple, streaming forecaster — an exponentially weighted
//! mean + variance with a linear trend term — which is what production
//! telemetry pipelines actually deploy for minutes-ahead horizons.

use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// Streaming EWMA mean/variance/trend estimator over an SNR series.
///
/// ```
/// use rwc_telemetry::forecast::SnrForecaster;
/// use rwc_util::units::Db;
///
/// let mut f = SnrForecaster::new(0.3, 0.15);
/// for i in 0..100 {
///     f.observe(Db(12.0 - 0.03 * i as f64)); // steady decay
/// }
/// // The trend points downward and the controller can see the 100 G
/// // threshold coming.
/// assert!(f.predict(40).unwrap() < f.predict(0).unwrap());
/// assert!(f.predicts_crossing(Db(6.5), 96, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrForecaster {
    /// Smoothing factor for level/variance, `0 < alpha <= 1`.
    pub alpha: f64,
    /// Smoothing factor for the trend term.
    pub beta: f64,
    level: Option<f64>,
    trend: f64,
    variance: f64,
    samples: u64,
}

impl SnrForecaster {
    /// A forecaster with the given smoothing factors.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta out of (0,1]");
        Self { alpha, beta, level: None, trend: 0.0, variance: 0.0, samples: 0 }
    }

    /// Sensible defaults for 15-minute telemetry: levels adapt over a few
    /// hours, trends a bit slower.
    pub fn telemetry_default() -> Self {
        Self::new(0.2, 0.05)
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Feeds one observation.
    pub fn observe(&mut self, snr: Db) {
        let x = snr.value();
        match self.level {
            None => {
                self.level = Some(x);
            }
            Some(level) => {
                let err = x - level;
                let new_level = level + self.trend + self.alpha * (x - (level + self.trend));
                self.trend = (1.0 - self.beta) * self.trend
                    + self.beta * (new_level - level);
                self.variance =
                    (1.0 - self.alpha) * self.variance + self.alpha * err * err;
                self.level = Some(new_level);
            }
        }
        self.samples += 1;
    }

    /// Point forecast `steps` ticks ahead (level + trend extrapolation).
    pub fn predict(&self, steps: u64) -> Option<Db> {
        self.level.map(|l| Db(l + self.trend * steps as f64))
    }

    /// Lower confidence bound `steps` ahead: forecast minus `z` estimated
    /// standard deviations — the value a cautious controller compares to
    /// thresholds.
    pub fn lower_bound(&self, steps: u64, z: f64) -> Option<Db> {
        assert!(z >= 0.0, "z must be non-negative");
        self.predict(steps).map(|p| p - Db(z * self.variance.sqrt()))
    }

    /// Estimated per-sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Whether the lower bound `steps` ahead falls below `threshold` — the
    /// pre-emptive walk-down signal.
    pub fn predicts_crossing(&self, threshold: Db, steps: u64, z: f64) -> bool {
        self.lower_bound(steps, z).is_some_and(|lb| lb < threshold)
    }
}

impl Default for SnrForecaster {
    fn default() -> Self {
        Self::telemetry_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SnrProcess;
    use crate::events::EventLog;
    use rwc_util::rng::Xoshiro256;
    use rwc_util::time::{SimDuration, SimTime};

    #[test]
    fn converges_to_stationary_level() {
        let mut f = SnrForecaster::telemetry_default();
        let process = SnrProcess { diurnal_amp_db: 0.0, ..SnrProcess::default() };
        let mut rng = Xoshiro256::seed_from_u64(1);
        let trace = process.generate(
            SimTime::EPOCH,
            SimDuration::from_days(30),
            SimDuration::TELEMETRY_TICK,
            &EventLog::new(),
            &mut rng,
        );
        for (_, snr) in trace.iter() {
            f.observe(snr);
        }
        let pred = f.predict(1).unwrap().value();
        assert!((pred - process.baseline_db).abs() < 0.5, "pred={pred}");
        // Std-dev estimate in the ballpark of the OU sigma.
        assert!((f.std_dev() - process.ou_sigma_db).abs() < 0.25, "sd={}", f.std_dev());
    }

    #[test]
    fn tracks_a_downward_trend() {
        let mut f = SnrForecaster::new(0.3, 0.15);
        // Steady decay: 0.05 dB per tick from 13 dB.
        for i in 0..200 {
            f.observe(Db(13.0 - 0.05 * i as f64));
        }
        let now = f.predict(0).unwrap().value();
        let later = f.predict(20).unwrap().value();
        assert!(later < now - 0.5, "trend not captured: {now} -> {later}");
        // Prediction ~20 ticks out should approximate the true value.
        let truth = 13.0 - 0.05 * 219.0;
        assert!((later - truth).abs() < 1.0, "later={later} truth={truth}");
    }

    #[test]
    fn crossing_predicted_before_it_happens() {
        let mut f = SnrForecaster::new(0.3, 0.15);
        for i in 0..100 {
            f.observe(Db(9.0 - 0.03 * i as f64)); // ends near 6.03 dB
        }
        // Currently above the 100 G threshold minus margin…
        assert!(f.predict(0).unwrap() > Db(6.5) - Db(0.6));
        // …but 32 ticks (8 h) out the lower bound dips below it.
        assert!(f.predicts_crossing(Db(6.5), 32, 1.0));
        assert!(!f.predicts_crossing(Db(3.0), 32, 1.0), "50 G floor is safe");
    }

    #[test]
    fn stable_signal_predicts_no_crossing() {
        let mut f = SnrForecaster::telemetry_default();
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..500 {
            f.observe(Db(12.8 + rng.normal(0.0, 0.3)));
        }
        assert!(!f.predicts_crossing(Db(6.5), 96, 3.0));
    }

    #[test]
    fn empty_forecaster_has_no_prediction() {
        let f = SnrForecaster::telemetry_default();
        assert!(f.predict(1).is_none());
        assert!(!f.predicts_crossing(Db(6.5), 1, 1.0));
        assert_eq!(f.samples(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = SnrForecaster::telemetry_default();
        f.observe(Db(12.0));
        f.observe(Db(12.5));
        let json = serde_json::to_string(&f).unwrap();
        let back: SnrForecaster = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
