//! Fleet-scale telemetry generation.
//!
//! Reconstructs the paper's observation corpus: `n_fibers` wide-area fiber
//! cables, each carrying `wavelengths_per_fiber` DWDM wavelengths (= IP
//! links), observed every 15 minutes over a configurable horizon. Every
//! quantity is derived deterministically from `(seed, fiber, wavelength)`,
//! so link 1234 is the same link no matter which subset of the fleet a
//! caller materialises — and the fleet can be analysed streaming, one link
//! at a time.
//!
//! Two classes of events are distinguished, mirroring reality:
//!
//! - **fiber-level** events hit every wavelength on the cable (fiber cuts →
//!   loss of light; maintenance windows → correlated dips), which is what
//!   makes the paper's Fig. 1 wavelengths dip together;
//! - **link-level** events hit a single wavelength (transponder/amplifier
//!   hardware trouble, aging).

use crate::analysis::{FleetAccumulator, LinkAnalysis};
use crate::events::{Event, EventKind, EventLog};
use crate::kernel::{AnalysisMode, FleetKernel};
use crate::process::{BatchScratch, SnrProcess};
use crate::trace::SnrTrace;
use rwc_optics::ModulationTable;
use rwc_util::rng::{CounterRng, Xoshiro256};
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The paper's observation window: Feb 2015 – Jul 2017 ≈ 913 days.
pub const PAPER_HORIZON: SimDuration = SimDuration::from_days(913);

/// Configuration of a synthetic fleet. All event rates are expressed
/// per-link (or per-fiber) over a full [`PAPER_HORIZON`] and scale linearly
/// with the configured horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master seed; the entire fleet is a pure function of it.
    pub seed: u64,
    /// Number of fiber cables.
    pub n_fibers: usize,
    /// Wavelengths (IP links) per cable.
    pub wavelengths_per_fiber: usize,
    /// Observation window.
    pub horizon: SimDuration,
    /// Sampling interval.
    pub tick: SimDuration,

    /// Mean of per-fiber baseline SNR, dB.
    pub fiber_baseline_mean_db: f64,
    /// Std-dev of per-fiber baseline SNR, dB.
    pub fiber_baseline_sd_db: f64,
    /// Std-dev of per-wavelength offset from the fiber baseline, dB.
    pub wavelength_jitter_sd_db: f64,
    /// Baselines are clamped into this range, dB.
    pub baseline_clamp_db: (f64, f64),

    /// Fraction of links with elevated micro-noise (the paper's ~17% of
    /// links whose 95% HDR exceeds 2 dB).
    pub noisy_link_fraction: f64,
    /// OU sigma of quiet links, dB.
    pub quiet_sigma_db: f64,
    /// OU sigma range of noisy links, dB.
    pub noisy_sigma_db: (f64, f64),

    /// Link-level transient dips per link per paper horizon: shallow
    /// (1–4 dB) and deep (7–14 dB).
    pub shallow_dip_rate: f64,
    /// Deep-dip rate (see above).
    pub deep_dip_rate: f64,
    /// Persistent step degradations per link per paper horizon.
    pub step_rate: f64,
    /// Loss-of-light (hardware) events per link per paper horizon.
    pub link_lol_rate: f64,
    /// Fiber cuts per fiber per paper horizon (loss of light on every
    /// wavelength of the cable).
    pub fiber_cut_rate: f64,
    /// Maintenance windows per fiber per paper horizon (correlated dip on
    /// every wavelength).
    pub maintenance_rate: f64,
}

impl FleetConfig {
    /// The paper-scale fleet: 50 cables × 40 wavelengths = 2,000 links over
    /// 2.5 years, calibrated per DESIGN.md §5.
    pub fn paper() -> Self {
        Self {
            seed: 0x52_57_43, // "RWC"
            n_fibers: 50,
            wavelengths_per_fiber: 40,
            horizon: PAPER_HORIZON,
            tick: SimDuration::TELEMETRY_TICK,
            fiber_baseline_mean_db: 13.0,
            fiber_baseline_sd_db: 1.4,
            wavelength_jitter_sd_db: 0.8,
            baseline_clamp_db: (8.0, 17.0),
            noisy_link_fraction: 0.17,
            quiet_sigma_db: 0.35,
            noisy_sigma_db: (0.55, 1.2),
            shallow_dip_rate: 2.2,
            deep_dip_rate: 0.8,
            step_rate: 0.35,
            link_lol_rate: 0.25,
            fiber_cut_rate: 0.3,
            maintenance_rate: 1.5,
        }
    }

    /// A small fleet over a short horizon for tests: 4 cables × 10
    /// wavelengths over 60 days.
    pub fn small() -> Self {
        Self {
            n_fibers: 4,
            wavelengths_per_fiber: 10,
            horizon: SimDuration::from_days(60),
            ..Self::paper()
        }
    }

    /// Total links in the fleet.
    pub fn n_links(&self) -> usize {
        self.n_fibers * self.wavelengths_per_fiber
    }

    fn scale(&self, rate_per_paper_horizon: f64) -> f64 {
        rate_per_paper_horizon * self.horizon.as_days_f64() / PAPER_HORIZON.as_days_f64()
    }
}

/// A link's identity and generative model *without* the sampled trace —
/// everything [`FleetGenerator::link`] derives before sampling. The fused
/// fleet path analyses links from their profile, streaming samples into a
/// reusable buffer instead of materialising a [`LinkTelemetry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Fleet-wide link index (`fiber · wavelengths_per_fiber + wavelength`).
    pub link_id: usize,
    /// Which cable the wavelength rides.
    pub fiber_id: usize,
    /// Index of the wavelength on its cable.
    pub wavelength_index: usize,
    /// Healthy-state baseline SNR.
    pub baseline: Db,
    /// The stochastic process parameters used.
    pub process: SnrProcess,
    /// Ground-truth impairment schedule (fiber + link events merged).
    pub events: EventLog,
}

/// One fully materialised link: identity, process parameters, ground-truth
/// events and the sampled SNR trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Fleet-wide link index (`fiber · wavelengths_per_fiber + wavelength`).
    pub link_id: usize,
    /// Which cable the wavelength rides.
    pub fiber_id: usize,
    /// Index of the wavelength on its cable.
    pub wavelength_index: usize,
    /// Healthy-state baseline SNR.
    pub baseline: Db,
    /// The stochastic process parameters used.
    pub process: SnrProcess,
    /// Ground-truth impairment schedule (fiber + link events merged).
    pub events: EventLog,
    /// The sampled SNR series.
    pub trace: SnrTrace,
}

/// Which trace-sampling pipeline a fleet sweep uses.
///
/// `Legacy` is the original serial path: one `Xoshiro256` stream per link,
/// advanced one tick at a time. `Batch` is the counter-based pipeline
/// ([`SnrProcess::generate_batch_into`]): every sample is a pure function
/// of `(seed, link, tick)`, generated blockwise through the SIMD normal
/// kernel — ~5× faster single-thread and windowable/parallel by
/// construction. The two modes are *statistically* equivalent but not
/// byte-identical (different RNG, different FP association); batch output
/// is byte-identical to itself across any window/thread/shard split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GenMode {
    /// Serial per-link `Xoshiro256` stream (the original path).
    #[default]
    Legacy,
    /// Counter-based blockwise pipeline (the fast path).
    Batch,
}

impl std::str::FromStr for GenMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" => Ok(Self::Legacy),
            "batch" => Ok(Self::Batch),
            other => Err(format!("unknown gen mode {other:?} (expected legacy|batch)")),
        }
    }
}

impl std::fmt::Display for GenMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Legacy => "legacy",
            Self::Batch => "batch",
        })
    }
}

/// Deterministic, streaming fleet generator.
#[derive(Debug, Clone)]
pub struct FleetGenerator {
    config: FleetConfig,
    gen_mode: GenMode,
    /// Per-fiber `(baseline, events)` memo: `link_profile` is called once
    /// per wavelength, but the fiber schedule and baseline depend only on
    /// the fiber, so without the cache every cable re-runs its
    /// Poisson/lognormal sampling `wavelengths_per_fiber` times. Values are
    /// the output of the same pure derivations, so cached reads are
    /// byte-identical to recomputation; the `Arc` lets clones (one per
    /// sweep worker) share one memo.
    fiber_cache: Arc<Vec<OnceLock<(Db, EventLog)>>>,
}

impl FleetGenerator {
    /// Validates and wraps a configuration.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.n_fibers > 0 && config.wavelengths_per_fiber > 0, "empty fleet");
        assert!(config.horizon >= config.tick, "horizon shorter than a tick");
        assert!((0.0..=1.0).contains(&config.noisy_link_fraction));
        assert!(config.baseline_clamp_db.0 < config.baseline_clamp_db.1);
        let fiber_cache = Arc::new((0..config.n_fibers).map(|_| OnceLock::new()).collect());
        Self { config, gen_mode: GenMode::default(), fiber_cache }
    }

    /// Selects the trace-sampling pipeline (builder style).
    pub fn with_gen_mode(mut self, gen_mode: GenMode) -> Self {
        self.gen_mode = gen_mode;
        self
    }

    /// The trace-sampling pipeline in use.
    pub fn gen_mode(&self) -> GenMode {
        self.gen_mode
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of links this generator will produce.
    pub fn n_links(&self) -> usize {
        self.config.n_links()
    }

    fn stream(&self, domain: u64, a: u64, b: u64) -> Xoshiro256 {
        // Independent stream per (domain, fiber, wavelength): seed_from_u64
        // SplitMixes the combined key, so nearby keys give unrelated states.
        Xoshiro256::seed_from_u64(
            self.config
                .seed
                .wrapping_add(domain.wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(a.wrapping_mul(0xE703_7ED1_A0B4_28DB))
                .wrapping_add(b.wrapping_mul(0x8EBC_6AF0_9C88_C6E3)),
        )
    }

    fn uniform_start(&self, rng: &mut Xoshiro256) -> SimTime {
        let ms = self.config.horizon.as_millis();
        SimTime::EPOCH + SimDuration::from_millis(rng.next_u64() % ms)
    }

    /// Fiber-level event schedule (cuts + maintenance), shared by all
    /// wavelengths of the cable. Memoized per fiber — the first wavelength
    /// pays the sampling cost, the other `wavelengths_per_fiber − 1` clone
    /// the cached log (byte-identical, it is the same pure derivation).
    pub fn fiber_events(&self, fiber_id: usize) -> EventLog {
        self.fiber_cached(fiber_id).1.clone()
    }

    /// Fiber baseline SNR (wavelengths scatter around it). Memoized per
    /// fiber alongside [`fiber_events`](Self::fiber_events).
    pub fn fiber_baseline(&self, fiber_id: usize) -> Db {
        self.fiber_cached(fiber_id).0
    }

    /// The per-fiber memo: both fiber-level derivations are computed on
    /// first access and shared by every wavelength (and generator clone).
    fn fiber_cached(&self, fiber_id: usize) -> &(Db, EventLog) {
        assert!(fiber_id < self.config.n_fibers, "fiber out of range");
        self.fiber_cache[fiber_id].get_or_init(|| {
            (self.fiber_baseline_uncached(fiber_id), self.fiber_events_uncached(fiber_id))
        })
    }

    fn fiber_events_uncached(&self, fiber_id: usize) -> EventLog {
        let cfg = &self.config;
        let mut rng = self.stream(1, fiber_id as u64, 0);
        let mut log = EventLog::new();
        for _ in 0..rng.poisson(cfg.scale(cfg.fiber_cut_rate)) {
            let start = self.uniform_start(&mut rng);
            // Fiber cuts need a splice crew: long, heavy-tailed repairs.
            let duration = SimDuration::from_hours_f64(rng.lognormal_median(8.0, 0.9));
            log.push(Event { kind: EventKind::LossOfLight, start, duration });
        }
        for _ in 0..rng.poisson(cfg.scale(cfg.maintenance_rate)) {
            let start = self.uniform_start(&mut rng);
            let duration = SimDuration::from_hours_f64(rng.lognormal_median(2.0, 0.5));
            let depth_db = rng.uniform_in(1.0, 4.0);
            log.push(Event { kind: EventKind::Dip { depth_db }, start, duration });
        }
        log
    }

    fn fiber_baseline_uncached(&self, fiber_id: usize) -> Db {
        let cfg = &self.config;
        let mut rng = self.stream(2, fiber_id as u64, 0);
        Db(rng
            .normal(cfg.fiber_baseline_mean_db, cfg.fiber_baseline_sd_db)
            .clamp(cfg.baseline_clamp_db.0 + 0.5, cfg.baseline_clamp_db.1 - 0.5))
    }

    /// The trace-sampling RNG stream of a link — the same stream
    /// [`link`](Self::link) uses, exposed so the fused kernel can generate
    /// samples without materialising the link.
    pub(crate) fn trace_rng(&self, link_id: usize) -> Xoshiro256 {
        let fiber_id = link_id / self.config.wavelengths_per_fiber;
        let wavelength_index = link_id % self.config.wavelengths_per_fiber;
        self.stream(4, fiber_id as u64, wavelength_index as u64)
    }

    /// The counter-RNG of a link on the batch path. Domain 5 keeps the
    /// keying disjoint from the Xoshiro stream domains 1–4; within it, the
    /// batch pipeline derives its own innovation/jump/floor sub-streams.
    pub fn batch_rng(&self, link_id: usize) -> CounterRng {
        CounterRng::keyed(self.config.seed, link_id as u64, 5)
    }

    /// Streams link `link_id`'s full trace into `out` (cleared first) on
    /// the configured [`GenMode`] — the generation half of the fused fleet
    /// path. `scratch` is only touched by the batch pipeline; pass one
    /// instance per worker to amortise its buffers across links.
    pub fn generate_link_into(
        &self,
        link_id: usize,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        let cfg = &self.config;
        let profile = self.link_profile(link_id);
        match self.gen_mode {
            GenMode::Legacy => {
                let mut rng = self.trace_rng(link_id);
                profile.process.generate_into(
                    SimTime::EPOCH,
                    cfg.horizon,
                    cfg.tick,
                    &profile.events,
                    &mut rng,
                    out,
                );
            }
            GenMode::Batch => {
                profile.process.generate_batch_into(
                    SimTime::EPOCH,
                    cfg.horizon,
                    cfg.tick,
                    &profile.events,
                    &self.batch_rng(link_id),
                    scratch,
                    out,
                );
            }
        }
    }

    /// Derives one link's profile — identity, baseline, process parameters
    /// and event schedule — without sampling its trace (deterministic in
    /// `link_id`, and byte-identical to the corresponding fields of
    /// [`link`](Self::link)).
    pub fn link_profile(&self, link_id: usize) -> LinkProfile {
        assert!(link_id < self.n_links(), "link out of range");
        let cfg = &self.config;
        let fiber_id = link_id / cfg.wavelengths_per_fiber;
        let wavelength_index = link_id % cfg.wavelengths_per_fiber;
        let mut rng = self.stream(3, fiber_id as u64, wavelength_index as u64);

        let baseline = Db((self.fiber_baseline(fiber_id).value()
            + rng.normal(0.0, cfg.wavelength_jitter_sd_db))
        .clamp(cfg.baseline_clamp_db.0, cfg.baseline_clamp_db.1));

        let ou_sigma_db = if rng.chance(cfg.noisy_link_fraction) {
            rng.uniform_in(cfg.noisy_sigma_db.0, cfg.noisy_sigma_db.1)
        } else {
            cfg.quiet_sigma_db
        };

        // Link-level events.
        let mut events = self.fiber_events(fiber_id);
        for _ in 0..rng.poisson(cfg.scale(cfg.shallow_dip_rate)) {
            let start = self.uniform_start(&mut rng);
            let duration = SimDuration::from_hours_f64(rng.lognormal_median(3.0, 0.8));
            let depth_db = rng.uniform_in(1.0, 4.0);
            events.push(Event { kind: EventKind::Dip { depth_db }, start, duration });
        }
        for _ in 0..rng.poisson(cfg.scale(cfg.deep_dip_rate)) {
            let start = self.uniform_start(&mut rng);
            let duration = SimDuration::from_hours_f64(rng.lognormal_median(3.0, 0.8));
            let depth_db = rng.uniform_in(7.0, 14.0);
            events.push(Event { kind: EventKind::Dip { depth_db }, start, duration });
        }
        for _ in 0..rng.poisson(cfg.scale(cfg.step_rate)) {
            let start = self.uniform_start(&mut rng);
            let duration = SimDuration::from_days(rng.lognormal_median(10.0, 0.7).ceil() as u64);
            let delta_db = rng.uniform_in(0.5, 3.0);
            events.push(Event { kind: EventKind::Step { delta_db }, start, duration });
        }
        for _ in 0..rng.poisson(cfg.scale(cfg.link_lol_rate)) {
            let start = self.uniform_start(&mut rng);
            let duration = SimDuration::from_hours_f64(rng.lognormal_median(4.0, 1.0));
            events.push(Event { kind: EventKind::LossOfLight, start, duration });
        }

        let process = SnrProcess {
            baseline_db: baseline.value(),
            ou_sigma_db,
            ou_relaxation: SimDuration::from_hours(6),
            diurnal_amp_db: 0.15,
            diurnal_phase: rng.uniform_in(0.0, std::f64::consts::TAU),
            noise_floor_db: 0.2,
        };
        LinkProfile { link_id, fiber_id, wavelength_index, baseline, process, events }
    }

    /// Materialises one link (deterministic in `link_id`), sampling its
    /// trace on the configured [`GenMode`].
    pub fn link(&self, link_id: usize) -> LinkTelemetry {
        let cfg = &self.config;
        let LinkProfile { link_id, fiber_id, wavelength_index, baseline, process, events } =
            self.link_profile(link_id);
        let trace = match self.gen_mode {
            GenMode::Legacy => {
                let mut trace_rng = self.trace_rng(link_id);
                process.generate(SimTime::EPOCH, cfg.horizon, cfg.tick, &events, &mut trace_rng)
            }
            GenMode::Batch => process.generate_batch(
                SimTime::EPOCH,
                cfg.horizon,
                cfg.tick,
                &events,
                &self.batch_rng(link_id),
            ),
        };
        LinkTelemetry { link_id, fiber_id, wavelength_index, baseline, process, events, trace }
    }

    /// All wavelengths of one cable (Fig. 1 is one such family).
    pub fn fiber(&self, fiber_id: usize) -> Vec<LinkTelemetry> {
        let wpf = self.config.wavelengths_per_fiber;
        (0..wpf).map(|w| self.link(fiber_id * wpf + w)).collect()
    }

    /// Streams the whole fleet through per-link analysis into a
    /// [`FleetAccumulator`] on the fused fast path (one reused sample
    /// buffer, never a materialised trace).
    pub fn fleet_analysis(&self, table: &ModulationTable) -> FleetAccumulator {
        self.fleet_analysis_with(table, AnalysisMode::Fused)
    }

    /// [`fleet_analysis`](Self::fleet_analysis) with an explicit analysis
    /// path — `AnalysisMode::Legacy` re-runs the original per-trace
    /// pipeline (the `--legacy-analysis` escape hatch). Both modes produce
    /// byte-identical accumulators.
    pub fn fleet_analysis_with(
        &self,
        table: &ModulationTable,
        mode: AnalysisMode,
    ) -> FleetAccumulator {
        let mut acc = FleetAccumulator::new();
        match mode {
            AnalysisMode::Fused => {
                let mut kernel = FleetKernel::new();
                for link_id in 0..self.n_links() {
                    acc.push(&kernel.analyze_generated(self, link_id, table));
                }
            }
            AnalysisMode::Legacy => {
                for link_id in 0..self.n_links() {
                    let link = self.link(link_id);
                    acc.push(&LinkAnalysis::new(&link.trace, table));
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn small_gen() -> FleetGenerator {
        FleetGenerator::new(FleetConfig::small())
    }

    #[test]
    fn link_is_deterministic() {
        let g = small_gen();
        let a = g.link(7);
        let b = g.link(7);
        assert_eq!(a, b);
    }

    #[test]
    fn links_differ() {
        let g = small_gen();
        assert_ne!(g.link(0).trace, g.link(1).trace);
        assert_ne!(g.link(0).baseline, g.link(25).baseline);
    }

    #[test]
    fn identity_mapping() {
        let g = small_gen();
        let link = g.link(23); // fiber 2, wavelength 3 (10 per fiber)
        assert_eq!(link.fiber_id, 2);
        assert_eq!(link.wavelength_index, 3);
        assert_eq!(link.link_id, 23);
    }

    #[test]
    fn fiber_events_shared_across_wavelengths() {
        let g = small_gen();
        let fiber_log = g.fiber_events(1);
        for link in g.fiber(1) {
            for e in fiber_log.events() {
                assert!(
                    link.events.events().contains(e),
                    "wavelength {} missing fiber event",
                    link.wavelength_index
                );
            }
        }
    }

    #[test]
    fn baselines_cluster_per_fiber() {
        let g = small_gen();
        for fiber in 0..g.config().n_fibers {
            let base = g.fiber_baseline(fiber).value();
            for link in g.fiber(fiber) {
                // Jitter sd 0.8 clamped: 5 sd is a generous envelope.
                assert!(
                    (link.baseline.value() - base).abs() < 4.0,
                    "fiber {fiber} wavelength {} strays: {} vs {base}",
                    link.wavelength_index,
                    link.baseline
                );
            }
        }
    }

    #[test]
    fn baselines_respect_clamp() {
        let g = small_gen();
        let (lo, hi) = g.config().baseline_clamp_db;
        for id in 0..g.n_links() {
            let b = g.link(id).baseline.value();
            assert!((lo..=hi).contains(&b), "link {id} baseline {b}");
        }
    }

    #[test]
    fn trace_length_matches_horizon() {
        let g = small_gen();
        let link = g.link(0);
        let expected = g.config().horizon.ticks(g.config().tick) as usize;
        assert_eq!(link.trace.len(), expected);
    }

    #[test]
    fn fiber_cut_hits_every_wavelength() {
        // Crank the cut rate so fiber 0 certainly has one, then check every
        // wavelength's trace drops to the floor during it.
        let mut cfg = FleetConfig::small();
        cfg.fiber_cut_rate = 50.0;
        let g = FleetGenerator::new(cfg);
        let cuts = g
            .fiber_events(0)
            .filter(|e| matches!(e.kind, EventKind::LossOfLight));
        assert!(!cuts.is_empty());
        let cut = cuts[0];
        // Find a tick fully inside the cut.
        let tick = g.config().tick;
        let idx = (cut.start.since_epoch().as_millis() / tick.as_millis()) as usize + 1;
        for link in g.fiber(0) {
            if idx < link.trace.len() && cut.active_at(link.trace.time_at(idx)) {
                assert!(
                    link.trace.values()[idx] < 1.0,
                    "wavelength {} not dark during fiber cut",
                    link.wavelength_index
                );
            }
        }
    }

    #[test]
    fn fleet_analysis_streams_all_links() {
        let g = small_gen();
        let table = ModulationTable::paper_default();
        let acc = g.fleet_analysis(&table);
        assert_eq!(acc.len(), g.n_links());
        // Every link must at least carry the 100 G default most of the time:
        // mean SNR above 6.5 for the healthy majority.
        assert!(acc.fraction_feasible_at_least(rwc_util::units::Gbps(100.0)) > 0.9);
    }

    #[test]
    fn event_rates_scale_with_horizon() {
        // Doubling the horizon should roughly double total events.
        let mut short = FleetConfig::small();
        short.seed = 99;
        let mut long = short.clone();
        long.horizon = short.horizon * 2;
        let count = |cfg: FleetConfig| {
            let g = FleetGenerator::new(cfg);
            (0..g.n_links()).map(|i| g.link(i).events.len()).sum::<usize>()
        };
        let s = count(short);
        let l = count(long);
        assert!(l > s, "events must grow with horizon: {s} vs {l}");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_fleet() {
        FleetGenerator::new(FleetConfig { n_fibers: 0, ..FleetConfig::small() });
    }

    #[test]
    fn fiber_memo_is_byte_identical_to_direct_derivation() {
        // The cache stores whatever the pure per-fiber derivation produced
        // first; any access order, on any clone, must see the same bytes a
        // fresh generator computes.
        let a = small_gen();
        let b = small_gen();
        let clone = a.clone();
        for fiber in (0..a.config().n_fibers).rev() {
            assert_eq!(a.fiber_events(fiber), b.fiber_events(fiber));
            assert_eq!(a.fiber_baseline(fiber), b.fiber_baseline(fiber));
            assert_eq!(clone.fiber_events(fiber), b.fiber_events(fiber));
        }
        // And profiles (which consume the memo) stay deterministic.
        for id in [0, 7, 23, 39] {
            assert_eq!(a.link_profile(id), b.link_profile(id));
        }
    }

    #[test]
    fn gen_mode_round_trips_and_defaults_to_legacy() {
        assert_eq!(GenMode::default(), GenMode::Legacy);
        assert_eq!("legacy".parse::<GenMode>().unwrap(), GenMode::Legacy);
        assert_eq!("batch".parse::<GenMode>().unwrap(), GenMode::Batch);
        assert!("fast".parse::<GenMode>().is_err());
        assert_eq!(GenMode::Batch.to_string(), "batch");
        assert_eq!(small_gen().gen_mode(), GenMode::Legacy);
    }

    #[test]
    fn batch_links_are_deterministic_and_differ_from_legacy_bytes() {
        let legacy = small_gen();
        let batch = small_gen().with_gen_mode(GenMode::Batch);
        let a = batch.link(7);
        let b = batch.link(7);
        assert_eq!(a, b);
        // Identity/profile fields are gen-mode independent…
        let l = legacy.link(7);
        assert_eq!((a.fiber_id, a.wavelength_index, a.baseline), (l.fiber_id, l.wavelength_index, l.baseline));
        assert_eq!(a.events, l.events);
        assert_eq!(a.process, l.process);
        // …but the sampled bytes come from a different RNG.
        assert_ne!(a.trace, l.trace);
        assert_eq!(a.trace.len(), l.trace.len());
    }

    #[test]
    fn generate_link_into_matches_link_trace_on_both_modes() {
        use crate::process::BatchScratch;
        for mode in [GenMode::Legacy, GenMode::Batch] {
            let g = small_gen().with_gen_mode(mode);
            let mut scratch = BatchScratch::default();
            let mut buf = Vec::new();
            for id in [0, 13, 39] {
                g.generate_link_into(id, &mut scratch, &mut buf);
                let trace = g.link(id).trace;
                assert_eq!(buf.len(), trace.len(), "{mode} link {id}");
                let same = buf
                    .iter()
                    .zip(trace.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{mode} link {id}: streamed bytes diverged from trace");
            }
        }
    }

    #[test]
    fn fused_batch_analysis_matches_legacy_analysis_of_batch_traces() {
        // Kernel equivalence holds per gen mode: the fused kernel over
        // batch-generated samples equals LinkAnalysis::new over the
        // materialised batch trace.
        let g = small_gen().with_gen_mode(GenMode::Batch);
        let table = ModulationTable::paper_default();
        let fused = g.fleet_analysis_with(&table, AnalysisMode::Fused);
        let legacy = g.fleet_analysis_with(&table, AnalysisMode::Legacy);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "fused/legacy analysis diverged on batch-generated traces"
        );
    }

    #[test]
    fn batch_fleet_matches_legacy_fleet_statistics() {
        // The two pipelines must agree on the paper's fleet aggregates.
        let table = ModulationTable::paper_default();
        let legacy = small_gen().fleet_analysis(&table);
        let batch = small_gen().with_gen_mode(GenMode::Batch).fleet_analysis(&table);
        let l = legacy.fraction_hdr_below(rwc_util::units::Db(2.0));
        let b = batch.fraction_hdr_below(rwc_util::units::Db(2.0));
        assert!((l - b).abs() < 0.1, "hdr fractions: legacy {l} batch {b}");
        let l = legacy.fraction_feasible_at_least(rwc_util::units::Gbps(100.0));
        let b = batch.fraction_feasible_at_least(rwc_util::units::Gbps(100.0));
        assert!((l - b).abs() < 0.1, "feasible fractions: legacy {l} batch {b}");
    }
}
