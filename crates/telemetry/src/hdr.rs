//! Highest-density-region analysis of SNR traces.
//!
//! The paper characterises SNR stability by the *highest density region*
//! (HDR): "the smallest interval in which 95% or more of the SNR values are
//! concentrated". The HDR separates routine micro-noise from rare dramatic
//! events: a link whose HDR is 1.5 dB wide but whose range is 12 dB is a
//! stable link that suffered an outage, not a noisy link.

use crate::trace::SnrTrace;
use rwc_util::stats::highest_density_interval;
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// The paper's HDR coverage level.
pub const PAPER_COVERAGE: f64 = 0.95;

/// An HDR of a trace: the interval plus its coverage level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hdr {
    /// Lower edge of the interval.
    pub low: Db,
    /// Upper edge of the interval.
    pub high: Db,
    /// Fraction of samples the interval was required to cover.
    pub coverage: f64,
}

impl Hdr {
    /// Computes the HDR of a trace at the given coverage.
    pub fn of_trace(trace: &SnrTrace, coverage: f64) -> Hdr {
        let mut sorted = trace.values().to_vec();
        sorted.sort_by(f64::total_cmp);
        let (low, high) = highest_density_interval(&sorted, coverage);
        Hdr { low: Db(low), high: Db(high), coverage }
    }

    /// The paper's 95% HDR.
    pub fn paper(trace: &SnrTrace) -> Hdr {
        Self::of_trace(trace, PAPER_COVERAGE)
    }

    /// Width of the interval — the x-axis of Fig. 2a's red curve.
    pub fn width(&self) -> Db {
        self.high - self.low
    }

    /// The lower edge — the SNR the paper encodes against in Fig. 2b
    /// ("the feasible capacity for each link based on the lower SNR limit of
    /// its highest density region").
    pub fn feasibility_floor(&self) -> Db {
        self.low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwc_util::time::{SimDuration, SimTime};

    fn trace(samples: Vec<f64>) -> SnrTrace {
        SnrTrace::new(SimTime::EPOCH, SimDuration::TELEMETRY_TICK, samples)
    }

    #[test]
    fn stable_link_with_one_outage() {
        // 97 healthy samples around 12.5 dB, 3 outage samples near zero:
        // the 95% HDR must ignore the outage; the range must not.
        let mut samples: Vec<f64> = (0..97).map(|i| 12.3 + 0.004 * i as f64).collect();
        samples.extend([0.2, 0.15, 0.25]);
        let t = trace(samples);
        let hdr = Hdr::paper(&t);
        assert!(hdr.low.value() > 12.0, "hdr={hdr:?}");
        assert!(hdr.width().value() < 0.5);
        assert!(t.range().value() > 12.0);
    }

    #[test]
    fn noisy_link_has_wide_hdr() {
        // Alternating samples 4 dB apart: no narrow interval covers 95%.
        let samples: Vec<f64> =
            (0..200).map(|i| if i % 2 == 0 { 10.0 } else { 14.0 }).collect();
        let hdr = Hdr::paper(&trace(samples));
        assert!(hdr.width().value() >= 4.0 - 1e-9);
    }

    #[test]
    fn floor_drives_feasibility() {
        let samples: Vec<f64> = (0..100).map(|i| 11.2 + 0.002 * i as f64).collect();
        let hdr = Hdr::paper(&trace(samples));
        let table = rwc_optics::ModulationTable::paper_default();
        // Floor ~11.2 dB → 175 G feasible, 200 G not.
        assert_eq!(
            table.feasible(hdr.feasibility_floor()),
            Some(rwc_optics::Modulation::Hybrid175)
        );
    }

    #[test]
    fn full_coverage_equals_range() {
        let t = trace(vec![1.0, 5.0, 9.0, 2.0]);
        let hdr = Hdr::of_trace(&t, 1.0);
        assert_eq!(hdr.width(), t.range());
    }
}
