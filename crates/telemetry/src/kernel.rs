//! The fused single-pass fleet-analysis kernel.
//!
//! [`LinkAnalysis::new`] is correct but wasteful on the fleet path: it
//! clones the full trace to sort it for the HDR, then rescans all ~88k
//! samples once per modulation rung for episode detection — ~6 redundant
//! memory passes and two transient allocations per link, times 2,000+
//! links. [`FleetKernel`] computes the identical result in **one data pass
//! plus one O(n) sort**:
//!
//! - samples stream straight from [`SnrProcess::generate_into`] into a
//!   buffer the kernel reuses across links — no per-link [`SnrTrace`], no
//!   per-call `to_vec()`;
//! - mean/min/max/range fold into the generation-order scan;
//! - failure episodes for **all** rungs come out of that same scan: the
//!   threshold ladder is strictly ascending, so the rungs a sample fails
//!   are always the suffix `f..R` of the ladder, where `f` is the number
//!   of thresholds at or below the sample. Episodes open and close only
//!   when `f` moves — O(n + episode edges) instead of O(n × rungs), with
//!   floor updates bounded by the (rare) failing samples;
//! - the HDR comes from [`rwc_util::stats::hdi_of_unsorted`] over a reused
//!   buffer: the 95% window scan only reads the two 5% tails of the sorted
//!   order, so two `select_nth` partitions plus tail sorts replace the
//!   full sort of a fresh clone — still exact, never a full O(n log n).
//!
//! Every arithmetic step reproduces the legacy operation order (same
//! left-fold sums, same `f64::min`/`max` folds, same strict `<` threshold
//! test, same sorted sequence feeding the HDI), so fused output is
//! **bit-identical** to [`LinkAnalysis::new`] — pinned by tests here and
//! by the byte-identity proptests in `tests/kernel_equivalence.rs`.
//!
//! [`AnalysisMode`] is the escape hatch: every fleet-path caller threads
//! it through so `--legacy-analysis` can re-run any experiment on the
//! original per-trace path.

use crate::analysis::{FailureEpisode, LinkAnalysis, STATIC_CAPACITY};
use crate::generator::FleetGenerator;
use crate::hdr::{Hdr, PAPER_COVERAGE};
use crate::process::{BatchScratch, SnrProcess};
use crate::trace::SnrTrace;
use rwc_obs::{Event as ObsEvent, Observer};
use rwc_optics::{Modulation, ModulationTable};
use rwc_util::stats::hdi_of_unsorted;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::{Db, Gbps};
use std::sync::Arc;

/// Which per-link analysis path a fleet sweep uses.
///
/// `Fused` is the default everywhere; `Legacy` re-runs the original
/// trace-materialising path (`FleetGenerator::link` + `LinkAnalysis::new`)
/// and exists so regressions can be bisected and equivalence re-checked at
/// any time (`repro --legacy-analysis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Single-pass kernel over streamed samples (the fast path).
    #[default]
    Fused,
    /// Materialise an [`SnrTrace`] per link and run [`LinkAnalysis::new`].
    Legacy,
}

/// Reusable scratch state for fused per-link analysis.
///
/// One kernel per worker thread: all buffers are allocated on the first
/// link and reused for every subsequent one, so a fleet sweep's
/// steady-state allocation is just the per-link episode vectors.
#[derive(Debug)]
pub struct FleetKernel {
    /// Streamed sample buffer (the would-be trace).
    samples: Vec<f64>,
    /// Working copy of the samples for the HDR's partial sort.
    sorted: Vec<f64>,
    /// Ladder thresholds in dB, ascending (cached per table).
    thresholds: Vec<f64>,
    /// Per-rung open episode: `(start index, running floor)`.
    open: Vec<Option<(usize, f64)>>,
    /// Batch-pipeline scratch (innovation block, event segments), reused
    /// across links when the generator runs in `GenMode::Batch`.
    batch_scratch: BatchScratch,
    /// Observability hooks (episode events, fleet counters).
    obs: Arc<dyn Observer>,
    /// The link id stamped on emitted episode events (set by
    /// [`FleetKernel::analyze_generated`]).
    link: u64,
}

impl Default for FleetKernel {
    fn default() -> Self {
        Self {
            samples: Vec::new(),
            sorted: Vec::new(),
            thresholds: Vec::new(),
            open: Vec::new(),
            batch_scratch: BatchScratch::default(),
            obs: rwc_obs::noop(),
            link: 0,
        }
    }
}

impl FleetKernel {
    /// A kernel with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A kernel publishing fleet counters and episode events to `obs` —
    /// typically one collecting registry per worker, merged after the
    /// sweep.
    pub fn with_observer(obs: Arc<dyn Observer>) -> Self {
        Self { obs, ..Self::default() }
    }

    /// Swaps the attached observer.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = obs;
    }

    /// Fused analysis of link `link_id`: streams the link's samples from
    /// the generator into the kernel's buffer and analyses them in place.
    /// Produces exactly what `LinkAnalysis::new(&gen.link(id).trace, table)`
    /// produces, without materialising the link. Generation runs on the
    /// generator's configured [`GenMode`](crate::generator::GenMode).
    pub fn analyze_generated(
        &mut self,
        gen: &FleetGenerator,
        link_id: usize,
        table: &ModulationTable,
    ) -> LinkAnalysis {
        let cfg = gen.config();
        self.link = link_id as u64;
        let mut samples = std::mem::take(&mut self.samples);
        gen.generate_link_into(link_id, &mut self.batch_scratch, &mut samples);
        let analysis = self.analyze(SimTime::EPOCH, cfg.tick, &samples, table);
        self.samples = samples;
        analysis
    }

    /// Fused analysis of an already-materialised trace (drop-in for
    /// [`LinkAnalysis::new`] when the caller needs the trace anyway).
    pub fn analyze_trace(&mut self, trace: &SnrTrace, table: &ModulationTable) -> LinkAnalysis {
        self.analyze(trace.start(), trace.tick(), trace.values(), table)
    }

    /// Fused analysis of a raw sample buffer generated by `process` under
    /// `events` — the streaming entry point for callers that drive
    /// [`SnrProcess::generate_into`] themselves.
    #[allow(clippy::too_many_arguments)] // mirrors `generate_into`'s parameter list
    pub fn analyze_process(
        &mut self,
        process: &SnrProcess,
        events: &crate::events::EventLog,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        rng: &mut rwc_util::rng::Xoshiro256,
        table: &ModulationTable,
    ) -> LinkAnalysis {
        let mut samples = std::mem::take(&mut self.samples);
        process.generate_into(start, horizon, tick, events, rng, &mut samples);
        let analysis = self.analyze(start, tick, &samples, table);
        self.samples = samples;
        analysis
    }

    /// The fused pass itself. `values` is borrowed so the caller can hand
    /// in the kernel's own (taken) sample buffer or any trace slice.
    fn analyze(
        &mut self,
        start: SimTime,
        tick: SimDuration,
        values: &[f64],
        table: &ModulationTable,
    ) -> LinkAnalysis {
        assert!(!values.is_empty(), "cannot analyse an empty sample buffer");
        let entries = table.entries();
        let rungs = entries.len();
        self.thresholds.clear();
        self.thresholds.extend(entries.iter().map(|(_, t)| t.value()));
        let top = *self.thresholds.last().expect("table has at least one rung");
        self.open.clear();
        self.open.resize(rungs, None);
        let mut failures: Vec<(Modulation, Vec<FailureEpisode>)> =
            entries.iter().map(|&(m, _)| (m, Vec::new())).collect();
        let observed = self.obs.enabled();
        if observed {
            self.obs.incr("fleet.links", 1);
            self.obs.incr("fleet.samples", values.len() as u64);
        }

        // One generation-order pass: moments + every rung's episodes.
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        // Rungs `prev_f..rungs` have an open episode; none before sample 0.
        let mut prev_f = rungs;
        for (i, &v) in values.iter().enumerate() {
            sum += v;
            min = min.min(v);
            max = max.max(v);
            // Feasibility rung: thresholds ascending, a sample fails rung k
            // iff v < t_k (strict, matching `episodes_below`), so failing
            // rungs are exactly the suffix `f..`. Healthy samples clear the
            // top rung in one comparison.
            let f = if v >= top {
                rungs
            } else {
                let mut f = 0;
                while self.thresholds[f] <= v {
                    f += 1;
                }
                f
            };
            if f < prev_f {
                // Ladder dropped: rungs f..prev_f newly fail, open at (i, v).
                for (k, slot) in self.open[f..prev_f].iter_mut().enumerate() {
                    *slot = Some((i, v));
                    if observed {
                        self.obs.event(&ObsEvent::EpisodeOpened {
                            link: self.link,
                            rung_gbps: entries[f + k].0.capacity().0,
                            at_tick: i as u64,
                        });
                    }
                }
            } else if f > prev_f {
                // Ladder recovered: rungs prev_f..f close their episodes.
                for (k, slot) in self.open[prev_f..f].iter_mut().enumerate() {
                    let (s, floor) = slot.take().expect("failing rung always has an open episode");
                    failures[prev_f + k].1.push(FailureEpisode {
                        start: start + tick * s as u64,
                        duration: tick * (i - s) as u64,
                        floor: Db(floor),
                    });
                    if observed {
                        self.obs.incr("fleet.episodes", 1);
                        self.obs.record("fleet.episode_ticks", (i - s) as f64);
                        self.obs.event(&ObsEvent::EpisodeClosed {
                            link: self.link,
                            rung_gbps: entries[prev_f + k].0.capacity().0,
                            ticks: (i - s) as u64,
                        });
                    }
                }
            }
            // Rungs that were already failing track the running floor.
            for slot in &mut self.open[f.max(prev_f)..rungs] {
                let (_, floor) = slot.as_mut().expect("failing rung always has an open episode");
                *floor = floor.min(v);
            }
            prev_f = f;
        }
        // Episodes still open at trace end close at the horizon.
        let n = values.len();
        for (k, slot) in self.open[prev_f..rungs].iter_mut().enumerate() {
            let (s, floor) = slot.take().expect("failing rung always has an open episode");
            failures[prev_f + k].1.push(FailureEpisode {
                start: start + tick * s as u64,
                duration: tick * (n - s) as u64,
                floor: Db(floor),
            });
            if observed {
                self.obs.incr("fleet.episodes", 1);
                self.obs.record("fleet.episode_ticks", (n - s) as f64);
                self.obs.event(&ObsEvent::EpisodeClosed {
                    link: self.link,
                    rung_gbps: entries[prev_f + k].0.capacity().0,
                    ticks: (n - s) as u64,
                });
            }
        }

        // One O(n) selection feeds the HDR: only the two tails the window
        // scan reads get sorted, and they carry the same values as the
        // legacy full comparison sort (traces are finite and positive, so
        // comparison order and IEEE total order agree).
        self.sorted.clear();
        self.sorted.extend_from_slice(values);
        let (low, high) = hdi_of_unsorted(&mut self.sorted, PAPER_COVERAGE);
        let hdr = Hdr { low: Db(low), high: Db(high), coverage: PAPER_COVERAGE };

        let feasible = table.feasible(hdr.feasibility_floor());
        let feasible_capacity = feasible.map_or(Gbps::ZERO, Modulation::capacity);
        let min = Db(min);
        let max = Db(max);
        LinkAnalysis {
            mean: Db(sum / n as f64),
            min,
            max,
            range: max - min,
            hdr,
            feasible,
            feasible_capacity,
            gain_over_static: feasible_capacity.saturating_sub(STATIC_CAPACITY),
            failures_per_rung: failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind, EventLog};
    use crate::generator::FleetConfig;

    fn trace(samples: Vec<f64>) -> SnrTrace {
        SnrTrace::new(SimTime::EPOCH, SimDuration::TELEMETRY_TICK, samples)
    }

    fn assert_identical(t: &SnrTrace, table: &ModulationTable) {
        let legacy = LinkAnalysis::new(t, table);
        let fused = FleetKernel::new().analyze_trace(t, table);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "fused kernel diverged from LinkAnalysis::new"
        );
    }

    #[test]
    fn fused_matches_legacy_on_crafted_traces() {
        let table = ModulationTable::paper_default();
        // Healthy.
        assert_identical(&trace(vec![12.8; 200]), &table);
        // One deep outage with recovery.
        let mut s = vec![12.8; 96];
        s.extend([0.2, 0.2, 0.2, 0.2]);
        s.extend(vec![12.8; 30]);
        assert_identical(&trace(s), &table);
        // Episode open at trace end.
        let mut s = vec![12.8; 50];
        s.extend([0.3; 10]);
        assert_identical(&trace(s), &table);
        // All-failing link (never above the bottom rung).
        assert_identical(&trace(vec![0.5; 80]), &table);
        // Staircase wandering across several rungs, with exact-threshold
        // samples (strict `<` must hold the rung).
        let s: Vec<f64> = (0..300)
            .map(|i| match i % 7 {
                0 => 3.0,
                1 => 6.5,
                2 => 7.9,
                3 => 9.5,
                4 => 11.2,
                5 => 12.5,
                _ => 14.0,
            })
            .collect();
        assert_identical(&trace(s), &table);
    }

    #[test]
    fn fused_matches_legacy_on_generated_links() {
        let gen = FleetGenerator::new(FleetConfig {
            n_fibers: 2,
            wavelengths_per_fiber: 3,
            horizon: SimDuration::from_days(45),
            ..FleetConfig::paper()
        });
        let table = ModulationTable::paper_default();
        let mut kernel = FleetKernel::new();
        for link_id in 0..gen.n_links() {
            let fused = kernel.analyze_generated(&gen, link_id, &table);
            let legacy = LinkAnalysis::new(&gen.link(link_id).trace, &table);
            assert_eq!(
                serde_json::to_string(&fused).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "link {link_id} diverged"
            );
        }
    }

    #[test]
    fn episode_geometry_survives_fusion() {
        // Two dips at a known rung: starts, durations and floors must be
        // exactly those of `episodes_below`.
        let t = trace(vec![12.0, 5.0, 4.0, 6.0, 12.0, 3.0, 12.0]);
        let table = ModulationTable::paper_default();
        let fused = FleetKernel::new().analyze_trace(&t, &table);
        let eps = fused.failures_at(Modulation::Dp8Qam150);
        let direct = crate::analysis::episodes_below(&t, table.threshold(Modulation::Dp8Qam150).unwrap());
        assert_eq!(eps, direct.as_slice());
    }

    #[test]
    fn kernel_reuse_across_disparate_links_is_clean() {
        // A long noisy link followed by a short clean one: no state bleed.
        let table = ModulationTable::paper_default();
        let mut kernel = FleetKernel::new();
        let mut s = vec![12.8; 400];
        for i in (0..400).step_by(13) {
            s[i] = 0.2;
        }
        let noisy = trace(s);
        kernel.analyze_trace(&noisy, &table);
        let clean = trace(vec![13.0; 60]);
        let fused = kernel.analyze_trace(&clean, &table);
        let legacy = LinkAnalysis::new(&clean, &table);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn analyze_process_streams_without_a_trace() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(1),
            duration: SimDuration::from_hours(5),
        });
        let p = SnrProcess::default();
        let table = ModulationTable::paper_default();
        let horizon = SimDuration::from_days(5);
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(9);
        let fused = FleetKernel::new().analyze_process(
            &p,
            &events,
            SimTime::EPOCH,
            horizon,
            SimDuration::TELEMETRY_TICK,
            &mut rng,
            &table,
        );
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(9);
        let t = p.generate(SimTime::EPOCH, horizon, SimDuration::TELEMETRY_TICK, &events, &mut rng);
        let legacy = LinkAnalysis::new(&t, &table);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }
}
