//! # rwc-telemetry
//!
//! Synthetic SNR telemetry for the *Run, Walk, Crawl* reproduction.
//!
//! The paper studies the SNR of 2,000+ production WAN links sampled every
//! 15 minutes for 2.5 years. That dataset is proprietary, so this crate
//! generates a statistically equivalent fleet: each link's SNR is a
//! link-budget baseline plus an Ornstein–Uhlenbeck micro-noise process, a
//! small diurnal ripple, and a sparse schedule of *events* — transient dips
//! (maintenance, amplifier trouble), step degradations (component aging)
//! and loss-of-light outages (fiber cuts, hardware death). Wavelengths on
//! the same fiber share fiber-level events, reproducing the correlated dips
//! of the paper's Fig. 1.
//!
//! Calibration targets (see DESIGN.md §5) are the paper's fleet aggregates:
//! 95% highest-density region narrower than 2 dB for ~83% of links, mean
//! baseline SNR ≈ 12.8 dB, ~80% of links feasible at ≥ 175 Gbps, a fleet
//! capacity gain of ≈ 145 Tbps, and ≥ ~25% of failures bottoming out above
//! the 3 dB / 50 Gbps floor.
//!
//! Memory: a full 2.5-year link trace is ~88k samples (≈700 kB). The fleet
//! generator is *streaming* — [`generator::FleetGenerator::link`] materialises
//! one link at a time so fleet-scale analyses never hold 2,000 traces at
//! once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod events;
pub mod forecast;
pub mod generator;
pub mod hdr;
pub mod kernel;
pub mod process;
pub mod trace;

pub use analysis::{FleetAccumulator, LinkAnalysis};
pub use generator::{FleetConfig, FleetGenerator, GenMode, LinkProfile, LinkTelemetry};
pub use kernel::{AnalysisMode, FleetKernel};
pub use process::{BatchCursor, BatchScratch, SnrCursor, SnrProcess};
pub use trace::SnrTrace;
