//! The per-link stochastic SNR process.
//!
//! A link's SNR series is composed of four layers:
//!
//! 1. a constant **baseline** set by the link budget (route length,
//!    amplifier chain);
//! 2. **micro-noise**: an Ornstein–Uhlenbeck (OU) process — mean-reverting
//!    Gaussian wander with a relaxation time of hours. This is what makes
//!    the 95% highest-density region of a healthy link narrower than 2 dB;
//! 3. a small **diurnal ripple** (temperature cycling of the plant);
//! 4. scheduled [`events`](crate::events) — dips, step degradations and
//!    loss-of-light outages.
//!
//! The OU process is simulated exactly (its transition density is Gaussian),
//! so the sampling interval does not bias the stationary distribution.

use crate::events::EventLog;
use crate::trace::SnrTrace;
use rwc_util::rng::{CounterRng, Xoshiro256};
use rwc_util::simd::fill_normal_pairs;
use rwc_util::time::{SimDuration, SimTime, Ticks};
use serde::{Deserialize, Serialize};

/// Parameters of one link's SNR process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrProcess {
    /// Healthy-state mean SNR, dB.
    pub baseline_db: f64,
    /// Stationary standard deviation of the OU micro-noise, dB.
    pub ou_sigma_db: f64,
    /// OU relaxation (mean-reversion) time.
    pub ou_relaxation: SimDuration,
    /// Peak amplitude of the diurnal ripple, dB.
    pub diurnal_amp_db: f64,
    /// Phase offset of the diurnal ripple, radians (differs per link).
    pub diurnal_phase: f64,
    /// SNR reading reported while the light is lost, dB. Real receivers
    /// report a noise-floor estimate of a few tenths of a dB.
    pub noise_floor_db: f64,
}

impl Default for SnrProcess {
    fn default() -> Self {
        Self {
            baseline_db: 12.8,
            ou_sigma_db: 0.35,
            ou_relaxation: SimDuration::from_hours(6),
            diurnal_amp_db: 0.15,
            diurnal_phase: 0.0,
            noise_floor_db: 0.2,
        }
    }
}

/// A resumable position in one link's SNR stream: the OU state plus the
/// active-set event sweep. Together with the RNG state
/// ([`rwc_util::rng::Xoshiro256::state`]) this is everything a checkpoint
/// needs to continue generation mid-trace — windows generated through a
/// cursor are bit-identical to one-shot generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrCursor {
    /// Current OU micro-noise value, dB.
    ou: f64,
    /// Time of the next sample to generate.
    t: SimTime,
    /// First event in the schedule whose start is still in the future.
    upcoming: usize,
    /// Indices of currently active events, in log order.
    active: Vec<usize>,
}

impl SnrCursor {
    /// Time of the next sample this cursor will generate.
    pub fn next_sample_at(&self) -> SimTime {
        self.t
    }
}

impl SnrProcess {
    /// Generates a trace of `[start, start + horizon)` at the given tick,
    /// applying the event schedule.
    pub fn generate(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
    ) -> SnrTrace {
        let mut samples = Vec::new();
        self.generate_into(start, horizon, tick, events, rng, &mut samples);
        SnrTrace::new(start, tick, samples)
    }

    /// Streams the same series as [`generate`](Self::generate) into a
    /// caller-owned buffer (cleared first) — the fleet fast path, which
    /// analyses links without materialising an [`SnrTrace`] per link and
    /// reuses one allocation across the whole sweep.
    ///
    /// Events are applied with an **active-set sweep** instead of scanning
    /// the full schedule at every tick: the log is ordered by start, so a
    /// cursor admits events as time reaches them and drops them when they
    /// end. Inactive events contribute an exact `0.0` to the offset sum, so
    /// skipping them leaves every sample *bit-identical* to the full scan
    /// (adding `0.0` never changes an f64 total that cannot be `-0.0`, and
    /// active events keep their log order).
    pub fn generate_into(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
        out: &mut Vec<f64>,
    ) {
        let n = horizon.ticks(tick);
        assert!(n > 0, "horizon shorter than one tick");
        out.clear();
        out.reserve(n as usize);
        let mut cursor = self.start_cursor(start, rng);
        self.generate_window(&mut cursor, n, tick, events, rng, out);
    }

    /// Opens a resumable cursor at `start`, drawing the stationary OU init
    /// from `rng`. Feed it to [`generate_window`](Self::generate_window).
    pub fn start_cursor(&self, start: SimTime, rng: &mut Xoshiro256) -> SnrCursor {
        SnrCursor {
            ou: self.ou_sigma_db * rng.standard_normal(), // stationary init
            t: start,
            upcoming: 0,
            active: Vec::new(),
        }
    }

    /// Generates the next `n` ticks of the stream, **appending** to `out`
    /// and advancing the cursor. Splitting a horizon into windows — with
    /// the RNG state checkpointed between them via
    /// [`Xoshiro256::state`](rwc_util::rng::Xoshiro256::state) — produces
    /// the same bytes as one [`generate_into`](Self::generate_into) call:
    /// the loop body is shared, only the iteration bounds differ.
    pub fn generate_window(
        &self,
        cursor: &mut SnrCursor,
        n: u64,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
        out: &mut Vec<f64>,
    ) {
        assert!(self.ou_sigma_db >= 0.0, "sigma must be non-negative");
        assert!(self.ou_relaxation > SimDuration::ZERO, "relaxation must be positive");

        // Exact OU update: x' = x·ρ + σ·sqrt(1−ρ²)·ξ with ρ = exp(−Δt/τ).
        let rho = (-(tick.as_secs_f64() / self.ou_relaxation.as_secs_f64())).exp();
        let innovation = self.ou_sigma_db * (1.0 - rho * rho).sqrt();
        let mut ou = cursor.ou;

        let day = SimDuration::from_days(1).as_secs_f64();
        let schedule = events.events();
        let mut upcoming = cursor.upcoming; // first event still in the future
        let mut active = std::mem::take(&mut cursor.active); // log order
        let end = cursor.t + tick * n;
        for t in Ticks::new(cursor.t, end, tick) {
            while upcoming < schedule.len() && schedule[upcoming].start <= t {
                active.push(upcoming); // increasing index ⇒ log order preserved
                upcoming += 1;
            }
            active.retain(|&i| schedule[i].end() > t);
            let mut offset = Some(0.0);
            for &i in &active {
                offset = match (offset, schedule[i].snr_effect_at(t)) {
                    (Some(total), Some(o)) => Some(total + o),
                    _ => None, // an active loss-of-light blanks the sample
                };
                if offset.is_none() {
                    break;
                }
            }
            let phase = std::f64::consts::TAU * (t.since_epoch().as_secs_f64() / day)
                + self.diurnal_phase;
            let diurnal = self.diurnal_amp_db * phase.sin();
            let sample = match offset {
                None => {
                    // Loss of light: a jittered noise-floor reading.
                    (self.noise_floor_db + 0.05 * rng.standard_normal()).max(0.01)
                }
                Some(offset) => {
                    (self.baseline_db + ou + diurnal + offset).max(0.01)
                }
            };
            out.push(sample);
            ou = ou * rho + innovation * rng.standard_normal();
        }
        cursor.ou = ou;
        cursor.t = end;
        cursor.upcoming = upcoming;
        cursor.active = active;
    }
}

/// Ticks per OU block in the batch pipeline. Block boundaries are chained
/// with the closed-form `ρ^B` jump (`S_{b+1} = ρ_B·S_b + σ√(1−ρ_B²)·z`), so
/// the OU state at any boundary costs `O(tick / BATCH_BLOCK)` instead of
/// `O(tick)`, and a window landing mid-block warms up over at most
/// `BATCH_BLOCK − 1` ticks. At the telemetry tick (15 min) and default
/// relaxation (6 h), `ρ^1024 = e^{-42.7} ≈ 3e-19`: the block-boundary
/// correlation the jump chain carries is already numerically zero, so the
/// approximation error of re-anchoring is far below the stationary noise.
pub const BATCH_BLOCK: u64 = 1024;

/// Diurnal rotation resync period, in ticks. The ripple is advanced by an
/// angle-addition rotation (two mul + one add per component per tick) and
/// re-anchored to an exact `sin_cos` every `DIURNAL_RESYNC` ticks, bounding
/// drift to ~64 ulp-scale rotations (≪ 1e-12 dB) while keeping the value at
/// every tick a pure function of the absolute tick index.
const DIURNAL_RESYNC: u64 = 64;

// Counter-RNG sub-stream salts (via `CounterRng::derive`). Disjoint salts
// keep the OU innovations, the block-boundary jump chain, and the
// loss-of-light floor jitter statistically independent while all remain
// pure functions of `(link key, tick)`.
const DOM_INNOV: u64 = 0;
const DOM_JUMP: u64 = 1;
const DOM_FLOOR: u64 = 2;

/// A resumable position in a link's **batch** SNR stream.
///
/// Unlike [`SnrCursor`], which must carry the serial OU value and the
/// active-event sweep, a batch cursor is *just a tick index*: every sample
/// of the batch pipeline is a pure function of `(process, events, rng,
/// absolute tick)`, so resuming needs no generator state at all. Windows
/// generated through a cursor are bit-identical to one-shot batch
/// generation regardless of how the horizon is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchCursor {
    /// Absolute index (from the trace origin) of the next tick to generate.
    tick: u64,
}

impl BatchCursor {
    /// A cursor at the trace origin.
    pub fn begin() -> Self {
        Self { tick: 0 }
    }

    /// A cursor positioned at an arbitrary absolute tick — windows may
    /// start mid-trace without generating their prefix.
    pub fn at_tick(tick: u64) -> Self {
        Self { tick }
    }

    /// Absolute index of the next tick this cursor will generate.
    pub fn next_tick(&self) -> u64 {
        self.tick
    }
}

/// Reusable scratch buffers for batch generation: the SIMD innovation
/// block and the event-segment boundary list. One instance amortises all
/// allocation across every link and window of a sweep.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    innov: Vec<f64>,
    bounds: Vec<u64>,
}

impl SnrProcess {
    /// Batch analogue of [`generate`](Self::generate): same trace layout,
    /// driven by a counter-based RNG instead of a serial stream.
    pub fn generate_batch(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &CounterRng,
    ) -> SnrTrace {
        let mut samples = Vec::new();
        let mut scratch = BatchScratch::default();
        self.generate_batch_into(start, horizon, tick, events, rng, &mut scratch, &mut samples);
        SnrTrace::new(start, tick, samples)
    }

    /// Batch analogue of [`generate_into`](Self::generate_into): clears
    /// `out` and fills it with the whole horizon in one shot.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_batch_into(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &CounterRng,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        let n = horizon.ticks(tick);
        assert!(n > 0, "horizon shorter than one tick");
        out.clear();
        out.reserve(n as usize);
        let mut cursor = BatchCursor::begin();
        self.generate_batch_window(&mut cursor, n, start, tick, events, rng, scratch, out);
    }

    /// Generates the next `n` ticks of the batch stream, **appending** to
    /// `out` and advancing the cursor. `start` is the trace origin (the
    /// time of absolute tick 0), not the window start; the window covers
    /// absolute ticks `[cursor.next_tick(), cursor.next_tick() + n)`.
    ///
    /// Every sample is a pure function of the absolute tick index, so any
    /// split of a horizon into windows — across calls, threads, shards or
    /// serialized cursors — concatenates to the same bytes as one call:
    ///
    /// - OU: tick `t` in block `b = t / BATCH_BLOCK` is reached from the
    ///   jump-chain boundary value `S_b` by a serial `x' = ρx + cξ_t` scan,
    ///   with the innovation `ξ_t` indexed by `t` (counter RNG);
    /// - diurnal: re-anchored exactly at every multiple of
    ///   `DIURNAL_RESYNC` and rotated forward, so the state at `t` depends
    ///   only on `t`;
    /// - events: compiled once per window into constant-offset tick
    ///   segments whose boundaries are pure functions of the schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_batch_window(
        &self,
        cursor: &mut BatchCursor,
        n: u64,
        start: SimTime,
        tick: SimDuration,
        events: &EventLog,
        rng: &CounterRng,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert!(self.ou_sigma_db >= 0.0, "sigma must be non-negative");
        assert!(self.ou_relaxation > SimDuration::ZERO, "relaxation must be positive");
        if n == 0 {
            return;
        }
        let t0 = cursor.tick;
        let t_end = t0 + n;
        let base = out.len();
        out.reserve(n as usize);

        // Same OU discretisation as the legacy path.
        let rho = (-(tick.as_secs_f64() / self.ou_relaxation.as_secs_f64())).exp();
        let innovation = self.ou_sigma_db * (1.0 - rho * rho).sqrt();
        let rho_block = rho.powi(BATCH_BLOCK as i32);
        let jump_innovation = self.ou_sigma_db * (1.0 - rho_block * rho_block).sqrt();

        let innov_rng = rng.derive(DOM_INNOV);
        let jump_rng = rng.derive(DOM_JUMP);

        // Jump the boundary chain to the window's first block:
        // S_0 = σ·z_0 (stationary init), S_{b+1} = ρ_B·S_b + σ√(1−ρ_B²)·z_{b+1}.
        let first_block = t0 / BATCH_BLOCK;
        let mut chain_block = first_block;
        let mut boundary = self.ou_sigma_db * jump_rng.normal_pair(0).0;
        for b in 1..=first_block {
            boundary = rho_block * boundary + jump_innovation * jump_rng.normal_pair(b).0;
        }

        // Diurnal ripple state: exact anchor + per-tick rotation.
        let day = SimDuration::from_days(1).as_secs_f64();
        let step = std::f64::consts::TAU * (tick.as_secs_f64() / day);
        let (step_sin, step_cos) = step.sin_cos();
        let exact_diurnal = |t: u64| -> (f64, f64) {
            let at = start + tick * t;
            (std::f64::consts::TAU * (at.since_epoch().as_secs_f64() / day) + self.diurnal_phase)
                .sin_cos()
        };
        let (mut dsin, mut dcos) = exact_diurnal(t0 - t0 % DIURNAL_RESYNC);
        for _ in 0..t0 % DIURNAL_RESYNC {
            let (ns, nc) = (dsin * step_cos + dcos * step_sin, dcos * step_cos - dsin * step_sin);
            dsin = ns;
            dcos = nc;
        }

        // OU warm-up: scan from the block boundary up to x_{t0−1}. The main
        // loop below consumes ξ_{t0} itself, so warm-up covers the ticks
        // (block_start, t0) exclusive of both ends' innovations.
        let mut x = boundary;
        let block_start = first_block * BATCH_BLOCK;
        if t0 > block_start + 1 {
            Self::fill_innovations(&innov_rng, block_start + 1, t0, scratch);
            let lo = (block_start + 1) & !1;
            for t in block_start + 1..t0 {
                x = rho * x + innovation * scratch.innov[(t - lo) as usize];
            }
        }

        // Main scan, block by block: SIMD innovation fill + serial
        // recurrence, writing the un-offset series baseline + OU + diurnal.
        let mut t = t0;
        while t < t_end {
            let hi = ((t / BATCH_BLOCK + 1) * BATCH_BLOCK).min(t_end);
            Self::fill_innovations(&innov_rng, t, hi, scratch);
            let lo = t & !1;
            for tt in t..hi {
                if tt % BATCH_BLOCK == 0 {
                    let block = tt / BATCH_BLOCK;
                    if block > chain_block {
                        boundary = rho_block * boundary
                            + jump_innovation * jump_rng.normal_pair(block).0;
                        chain_block = block;
                    }
                    x = boundary;
                } else {
                    x = rho * x + innovation * scratch.innov[(tt - lo) as usize];
                }
                if tt % DIURNAL_RESYNC == 0 {
                    (dsin, dcos) = exact_diurnal(tt);
                }
                out.push(self.baseline_db + x + self.diurnal_amp_db * dsin);
                let (ns, nc) =
                    (dsin * step_cos + dcos * step_sin, dcos * step_cos - dsin * step_sin);
                dsin = ns;
                dcos = nc;
            }
            t = hi;
        }

        // Event composition: compile the schedule into constant-offset tick
        // segments tiling [t0, t_end), then patch each run in one pass.
        // Segment boundaries are the event start/end ticks, so the offset
        // (evaluated at the run's first tick, summing `snr_effect_at` in log
        // order exactly like the legacy sweep) is constant over the run.
        let floor_rng = rng.derive(DOM_FLOOR);
        let bounds = &mut scratch.bounds;
        bounds.clear();
        bounds.push(t0);
        bounds.push(t_end);
        let tick_ms = tick.as_millis();
        for e in events.events() {
            let k_lo = e.start.as_millis().saturating_sub(start.as_millis()).div_ceil(tick_ms);
            let k_hi = e.end().as_millis().saturating_sub(start.as_millis()).div_ceil(tick_ms);
            for k in [k_lo, k_hi] {
                if k > t0 && k < t_end {
                    bounds.push(k);
                }
            }
        }
        bounds.sort_unstable();
        bounds.dedup();
        for w in 0..bounds.len() - 1 {
            let (lo, hi) = (bounds[w], bounds[w + 1]);
            let at = start + tick * lo;
            let mut effect = Some(0.0);
            for e in events.events() {
                effect = match (effect, e.snr_effect_at(at)) {
                    (Some(total), Some(o)) => Some(total + o),
                    _ => None, // an active loss-of-light blanks the run
                };
                if effect.is_none() {
                    break;
                }
            }
            let run = &mut out[base + (lo - t0) as usize..base + (hi - t0) as usize];
            match effect {
                Some(offset) => {
                    for v in run.iter_mut() {
                        *v = (*v + offset).max(0.01);
                    }
                }
                None => {
                    for (i, v) in run.iter_mut().enumerate() {
                        let z = floor_rng.normal_at(lo + i as u64);
                        *v = (self.noise_floor_db + 0.05 * z).max(0.01);
                    }
                }
            }
        }

        cursor.tick = t_end;
    }

    /// Fills `scratch.innov` with the innovations for absolute ticks
    /// `[lo, hi)` via the SIMD pair kernel. The buffer is pair-aligned:
    /// innovation `ξ_t` lands at index `t - (lo & !1)`.
    fn fill_innovations(innov_rng: &CounterRng, lo: u64, hi: u64, scratch: &mut BatchScratch) {
        let pair_lo = lo >> 1;
        let pair_hi = hi.div_ceil(2);
        let len = 2 * (pair_hi - pair_lo) as usize;
        scratch.innov.resize(len, 0.0);
        fill_normal_pairs(innov_rng, pair_lo, &mut scratch.innov[..len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};
    use rwc_util::stats::Summary;

    fn quiet_process() -> SnrProcess {
        SnrProcess { diurnal_amp_db: 0.0, ..SnrProcess::default() }
    }

    fn telemetry_trace(
        process: &SnrProcess,
        events: &EventLog,
        days: u64,
        seed: u64,
    ) -> SnrTrace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        process.generate(
            SimTime::EPOCH,
            SimDuration::from_days(days),
            SimDuration::TELEMETRY_TICK,
            events,
            &mut rng,
        )
    }

    #[test]
    fn stationary_mean_and_sd() {
        let p = quiet_process();
        let trace = telemetry_trace(&p, &EventLog::new(), 365, 1);
        let s = Summary::of(trace.values());
        assert!((s.mean - p.baseline_db).abs() < 0.1, "{s}");
        assert!((s.std_dev - p.ou_sigma_db).abs() < 0.12, "{s}");
    }

    #[test]
    fn healthy_link_hdr_is_narrow() {
        // The paper: 83% of links keep 95% of samples within < 2 dB.
        // A healthy (event-free) link with default noise must satisfy that.
        let trace = telemetry_trace(&SnrProcess::default(), &EventLog::new(), 365, 2);
        let hdr = crate::hdr::Hdr::paper(&trace);
        assert!(hdr.width().value() < 2.0, "hdr width = {}", hdr.width());
    }

    #[test]
    fn generate_into_matches_generate_bitwise() {
        // The streaming path must be the same function as the trace path,
        // sample for sample, including around event boundaries.
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 4.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(5),
            duration: SimDuration::from_hours(9),
        });
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(2),
            duration: SimDuration::from_hours(3),
        });
        events.push(Event {
            kind: EventKind::Step { delta_db: 1.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(7),
            duration: SimDuration::from_days(4),
        });
        let p = SnrProcess::default();
        let trace = telemetry_trace(&p, &events, 7, 11);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut streamed = vec![0.0; 3]; // dirty buffer must be cleared
        p.generate_into(
            SimTime::EPOCH,
            SimDuration::from_days(7),
            SimDuration::TELEMETRY_TICK,
            &events,
            &mut rng,
            &mut streamed,
        );
        assert_eq!(streamed.len(), trace.len());
        let same = streamed
            .iter()
            .zip(trace.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "streamed generation diverged from trace generation");
    }

    #[test]
    fn windowed_generation_matches_one_shot_bitwise() {
        // Chop the horizon into uneven windows, round-tripping both the
        // cursor and the RNG state through serialization between windows —
        // exactly what a checkpoint/resume cycle does — and demand the
        // concatenation equals the one-shot stream bit for bit.
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 4.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(5),
            duration: SimDuration::from_hours(9),
        });
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(2),
            duration: SimDuration::from_hours(3),
        });
        let p = SnrProcess::default();
        let trace = telemetry_trace(&p, &events, 7, 13);
        let n = trace.len() as u64;

        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut cursor = p.start_cursor(SimTime::EPOCH, &mut rng);
        let mut streamed = Vec::new();
        let mut left = n;
        for window in [1u64, 96, 7, 200, u64::MAX] {
            let take = window.min(left);
            // Simulate a kill/resume between windows.
            let json = serde_json::to_string(&cursor).unwrap();
            cursor = serde_json::from_str(&json).expect("cursor round trip");
            rng = Xoshiro256::from_state(rng.state());
            p.generate_window(
                &mut cursor,
                take,
                SimDuration::TELEMETRY_TICK,
                &events,
                &mut rng,
                &mut streamed,
            );
            left -= take;
            if left == 0 {
                break;
            }
        }
        assert_eq!(streamed.len(), trace.len());
        let same = streamed
            .iter()
            .zip(trace.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "windowed generation diverged from one-shot generation");
    }

    #[test]
    fn loss_of_light_reads_noise_floor() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(1),
            duration: SimDuration::from_hours(6),
        });
        let trace = telemetry_trace(&quiet_process(), &events, 3, 3);
        // Samples within the outage window must sit near the floor.
        let day1 = SimDuration::from_days(1).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let six_h = SimDuration::from_hours(6).ticks(SimDuration::TELEMETRY_TICK) as usize;
        for i in day1..day1 + six_h {
            assert!(trace.values()[i] < 1.0, "sample {i} = {}", trace.values()[i]);
        }
        // And the neighbours must be healthy.
        assert!(trace.values()[day1 - 1] > 10.0);
        assert!(trace.values()[day1 + six_h + 1] > 10.0);
    }

    #[test]
    fn dip_depth_is_respected() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 5.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(10),
            duration: SimDuration::from_hours(5),
        });
        let p = quiet_process();
        let trace = telemetry_trace(&p, &events, 1, 4);
        let idx = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let dipped = trace.values()[idx];
        assert!((dipped - (p.baseline_db - 5.0)).abs() < 2.0, "dipped={dipped}");
    }

    #[test]
    fn diurnal_ripple_visible_in_spectrum() {
        // With a large diurnal amplitude and tiny noise, samples 12 h apart
        // should anti-correlate.
        let p = SnrProcess {
            diurnal_amp_db: 1.0,
            ou_sigma_db: 0.01,
            ..SnrProcess::default()
        };
        let trace = telemetry_trace(&p, &EventLog::new(), 30, 5);
        let half_day = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let vals = trace.values();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut cov = 0.0;
        let mut var = 0.0;
        for i in 0..vals.len() - half_day {
            cov += (vals[i] - mean) * (vals[i + half_day] - mean);
            var += (vals[i] - mean).powi(2);
        }
        assert!(cov / var < -0.8, "correlation = {}", cov / var);
    }

    #[test]
    fn snr_never_negative() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 50.0 },
            start: SimTime::EPOCH,
            duration: SimDuration::from_days(1),
        });
        let trace = telemetry_trace(&quiet_process(), &events, 1, 6);
        assert!(trace.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SnrProcess::default();
        let a = telemetry_trace(&p, &EventLog::new(), 10, 7);
        let b = telemetry_trace(&p, &EventLog::new(), 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn ou_relaxation_controls_correlation() {
        // Long relaxation → neighbouring samples highly correlated; short →
        // nearly independent.
        let correlated = SnrProcess {
            ou_relaxation: SimDuration::from_hours(24),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let uncorrelated = SnrProcess {
            ou_relaxation: SimDuration::from_minutes(1),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let lag1 = |trace: &SnrTrace| {
            let v = trace.values();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let mut cov = 0.0;
            let mut var = 0.0;
            for i in 0..v.len() - 1 {
                cov += (v[i] - mean) * (v[i + 1] - mean);
                var += (v[i] - mean).powi(2);
            }
            cov / var
        };
        let c = lag1(&telemetry_trace(&correlated, &EventLog::new(), 60, 8));
        let u = lag1(&telemetry_trace(&uncorrelated, &EventLog::new(), 60, 9));
        assert!(c > 0.8, "correlated lag-1 = {c}");
        assert!(u.abs() < 0.1, "uncorrelated lag-1 = {u}");
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::events::{Event, EventKind};
    use rwc_util::stats::Summary;

    fn quiet_process() -> SnrProcess {
        SnrProcess { diurnal_amp_db: 0.0, ..SnrProcess::default() }
    }

    fn eventful_log() -> EventLog {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 4.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(5),
            duration: SimDuration::from_hours(9),
        });
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(2),
            duration: SimDuration::from_hours(3),
        });
        events.push(Event {
            kind: EventKind::Step { delta_db: 1.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(7),
            duration: SimDuration::from_days(4),
        });
        events
    }

    fn batch_trace(
        process: &SnrProcess,
        events: &EventLog,
        days: u64,
        seed: u64,
    ) -> SnrTrace {
        let rng = CounterRng::keyed(seed, 0, 5);
        process.generate_batch(
            SimTime::EPOCH,
            SimDuration::from_days(days),
            SimDuration::TELEMETRY_TICK,
            events,
            &rng,
        )
    }

    #[test]
    fn batch_windowed_matches_one_shot_bitwise() {
        // The batch analogue of windowed_generation_matches_one_shot_bitwise:
        // uneven windows with a serde round trip of the cursor between them
        // (all the state a resume needs) concatenate to the one-shot bytes.
        let p = SnrProcess::default();
        let events = eventful_log();
        let trace = batch_trace(&p, &events, 7, 13);
        let n = trace.len() as u64;

        let rng = CounterRng::keyed(13, 0, 5);
        let mut scratch = BatchScratch::default();
        let mut cursor = BatchCursor::begin();
        let mut streamed = Vec::new();
        let mut left = n;
        for window in [1u64, 96, 7, 200, 1023, u64::MAX] {
            let take = window.min(left);
            let json = serde_json::to_string(&cursor).unwrap();
            cursor = serde_json::from_str(&json).expect("cursor round trip");
            p.generate_batch_window(
                &mut cursor,
                take,
                SimTime::EPOCH,
                SimDuration::TELEMETRY_TICK,
                &events,
                &rng,
                &mut scratch,
                &mut streamed,
            );
            left -= take;
            if left == 0 {
                break;
            }
        }
        assert_eq!(streamed.len(), trace.len());
        let same = streamed
            .iter()
            .zip(trace.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "windowed batch generation diverged from one-shot");
    }

    #[test]
    fn batch_mid_trace_window_needs_no_prefix() {
        // A window opened at an arbitrary absolute tick — without generating
        // anything before it — must reproduce the matching slice of the
        // one-shot stream bit for bit. This is the jump-ahead property that
        // makes batch generation parallel by construction.
        let p = SnrProcess::default();
        let events = eventful_log();
        let trace = batch_trace(&p, &events, 30, 17);
        let rng = CounterRng::keyed(17, 0, 5);
        let mut scratch = BatchScratch::default();
        for first in [0u64, 1, 63, 64, 511, 1023, 1024, 1025, 400] {
            let n = 150u64.min(trace.len() as u64 - first);
            let mut cursor = BatchCursor::at_tick(first);
            let mut window = Vec::new();
            p.generate_batch_window(
                &mut cursor,
                n,
                SimTime::EPOCH,
                SimDuration::TELEMETRY_TICK,
                &events,
                &rng,
                &mut scratch,
                &mut window,
            );
            let expect = &trace.values()[first as usize..(first + n) as usize];
            let same =
                window.iter().zip(expect).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "window at tick {first} diverged from one-shot slice");
        }
    }

    #[test]
    fn batch_stationary_mean_and_sd() {
        // Statistical equivalence with the legacy path: same stationary
        // moments, same tolerance as stationary_mean_and_sd.
        let p = quiet_process();
        let trace = batch_trace(&p, &EventLog::new(), 365, 1);
        let s = Summary::of(trace.values());
        assert!((s.mean - p.baseline_db).abs() < 0.1, "{s}");
        assert!((s.std_dev - p.ou_sigma_db).abs() < 0.12, "{s}");
    }

    #[test]
    fn batch_healthy_link_hdr_is_narrow() {
        let trace = batch_trace(&SnrProcess::default(), &EventLog::new(), 365, 2);
        let hdr = crate::hdr::Hdr::paper(&trace);
        assert!(hdr.width().value() < 2.0, "hdr width = {}", hdr.width());
    }

    #[test]
    fn batch_loss_of_light_reads_noise_floor() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(1),
            duration: SimDuration::from_hours(6),
        });
        let trace = batch_trace(&quiet_process(), &events, 3, 3);
        let day1 = SimDuration::from_days(1).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let six_h = SimDuration::from_hours(6).ticks(SimDuration::TELEMETRY_TICK) as usize;
        for i in day1..day1 + six_h {
            assert!(trace.values()[i] < 1.0, "sample {i} = {}", trace.values()[i]);
        }
        assert!(trace.values()[day1 - 1] > 10.0);
        assert!(trace.values()[day1 + six_h + 1] > 10.0);
    }

    #[test]
    fn batch_dip_depth_is_respected() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 5.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(10),
            duration: SimDuration::from_hours(5),
        });
        let p = quiet_process();
        let trace = batch_trace(&p, &events, 1, 4);
        let idx = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let dipped = trace.values()[idx];
        assert!((dipped - (p.baseline_db - 5.0)).abs() < 2.0, "dipped={dipped}");
    }

    #[test]
    fn batch_diurnal_ripple_visible_in_spectrum() {
        let p = SnrProcess {
            diurnal_amp_db: 1.0,
            ou_sigma_db: 0.01,
            ..SnrProcess::default()
        };
        let trace = batch_trace(&p, &EventLog::new(), 30, 5);
        let half_day = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let vals = trace.values();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut cov = 0.0;
        let mut var = 0.0;
        for i in 0..vals.len() - half_day {
            cov += (vals[i] - mean) * (vals[i + half_day] - mean);
            var += (vals[i] - mean).powi(2);
        }
        assert!(cov / var < -0.8, "correlation = {}", cov / var);
    }

    #[test]
    fn batch_snr_never_negative() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 50.0 },
            start: SimTime::EPOCH,
            duration: SimDuration::from_days(1),
        });
        let trace = batch_trace(&quiet_process(), &events, 1, 6);
        assert!(trace.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let p = SnrProcess::default();
        let a = batch_trace(&p, &EventLog::new(), 10, 7);
        let b = batch_trace(&p, &EventLog::new(), 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_ou_relaxation_controls_correlation() {
        let correlated = SnrProcess {
            ou_relaxation: SimDuration::from_hours(24),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let uncorrelated = SnrProcess {
            ou_relaxation: SimDuration::from_minutes(1),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let lag1 = |trace: &SnrTrace| {
            let v = trace.values();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let mut cov = 0.0;
            let mut var = 0.0;
            for i in 0..v.len() - 1 {
                cov += (v[i] - mean) * (v[i + 1] - mean);
                var += (v[i] - mean).powi(2);
            }
            cov / var
        };
        let c = lag1(&batch_trace(&correlated, &EventLog::new(), 60, 8));
        let u = lag1(&batch_trace(&uncorrelated, &EventLog::new(), 60, 9));
        assert!(c > 0.8, "correlated lag-1 = {c}");
        assert!(u.abs() < 0.1, "uncorrelated lag-1 = {u}");
    }

    #[test]
    fn batch_matches_legacy_statistics() {
        // Direct legacy-vs-batch comparison on the same process: the two
        // pipelines draw from different RNGs so the bytes differ, but the
        // stationary moments and the healthy-link HDR must agree closely.
        let p = SnrProcess::default();
        let mut rng = Xoshiro256::seed_from_u64(21);
        let legacy = p.generate(
            SimTime::EPOCH,
            SimDuration::from_days(365),
            SimDuration::TELEMETRY_TICK,
            &EventLog::new(),
            &mut rng,
        );
        let batch = batch_trace(&p, &EventLog::new(), 365, 21);
        let (ls, bs) = (Summary::of(legacy.values()), Summary::of(batch.values()));
        assert!((ls.mean - bs.mean).abs() < 0.05, "means: legacy {ls} batch {bs}");
        assert!((ls.std_dev - bs.std_dev).abs() < 0.05, "sds: legacy {ls} batch {bs}");
        let (lh, bh) = (
            crate::hdr::Hdr::paper(&legacy).width().value(),
            crate::hdr::Hdr::paper(&batch).width().value(),
        );
        assert!((lh - bh).abs() < 0.3, "hdr widths: legacy {lh} batch {bh}");
    }
}
