//! The per-link stochastic SNR process.
//!
//! A link's SNR series is composed of four layers:
//!
//! 1. a constant **baseline** set by the link budget (route length,
//!    amplifier chain);
//! 2. **micro-noise**: an Ornstein–Uhlenbeck (OU) process — mean-reverting
//!    Gaussian wander with a relaxation time of hours. This is what makes
//!    the 95% highest-density region of a healthy link narrower than 2 dB;
//! 3. a small **diurnal ripple** (temperature cycling of the plant);
//! 4. scheduled [`events`](crate::events) — dips, step degradations and
//!    loss-of-light outages.
//!
//! The OU process is simulated exactly (its transition density is Gaussian),
//! so the sampling interval does not bias the stationary distribution.

use crate::events::EventLog;
use crate::trace::SnrTrace;
use rwc_util::rng::Xoshiro256;
use rwc_util::time::{SimDuration, SimTime, Ticks};
use serde::{Deserialize, Serialize};

/// Parameters of one link's SNR process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrProcess {
    /// Healthy-state mean SNR, dB.
    pub baseline_db: f64,
    /// Stationary standard deviation of the OU micro-noise, dB.
    pub ou_sigma_db: f64,
    /// OU relaxation (mean-reversion) time.
    pub ou_relaxation: SimDuration,
    /// Peak amplitude of the diurnal ripple, dB.
    pub diurnal_amp_db: f64,
    /// Phase offset of the diurnal ripple, radians (differs per link).
    pub diurnal_phase: f64,
    /// SNR reading reported while the light is lost, dB. Real receivers
    /// report a noise-floor estimate of a few tenths of a dB.
    pub noise_floor_db: f64,
}

impl Default for SnrProcess {
    fn default() -> Self {
        Self {
            baseline_db: 12.8,
            ou_sigma_db: 0.35,
            ou_relaxation: SimDuration::from_hours(6),
            diurnal_amp_db: 0.15,
            diurnal_phase: 0.0,
            noise_floor_db: 0.2,
        }
    }
}

/// A resumable position in one link's SNR stream: the OU state plus the
/// active-set event sweep. Together with the RNG state
/// ([`rwc_util::rng::Xoshiro256::state`]) this is everything a checkpoint
/// needs to continue generation mid-trace — windows generated through a
/// cursor are bit-identical to one-shot generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrCursor {
    /// Current OU micro-noise value, dB.
    ou: f64,
    /// Time of the next sample to generate.
    t: SimTime,
    /// First event in the schedule whose start is still in the future.
    upcoming: usize,
    /// Indices of currently active events, in log order.
    active: Vec<usize>,
}

impl SnrCursor {
    /// Time of the next sample this cursor will generate.
    pub fn next_sample_at(&self) -> SimTime {
        self.t
    }
}

impl SnrProcess {
    /// Generates a trace of `[start, start + horizon)` at the given tick,
    /// applying the event schedule.
    pub fn generate(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
    ) -> SnrTrace {
        let mut samples = Vec::new();
        self.generate_into(start, horizon, tick, events, rng, &mut samples);
        SnrTrace::new(start, tick, samples)
    }

    /// Streams the same series as [`generate`](Self::generate) into a
    /// caller-owned buffer (cleared first) — the fleet fast path, which
    /// analyses links without materialising an [`SnrTrace`] per link and
    /// reuses one allocation across the whole sweep.
    ///
    /// Events are applied with an **active-set sweep** instead of scanning
    /// the full schedule at every tick: the log is ordered by start, so a
    /// cursor admits events as time reaches them and drops them when they
    /// end. Inactive events contribute an exact `0.0` to the offset sum, so
    /// skipping them leaves every sample *bit-identical* to the full scan
    /// (adding `0.0` never changes an f64 total that cannot be `-0.0`, and
    /// active events keep their log order).
    pub fn generate_into(
        &self,
        start: SimTime,
        horizon: SimDuration,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
        out: &mut Vec<f64>,
    ) {
        let n = horizon.ticks(tick);
        assert!(n > 0, "horizon shorter than one tick");
        out.clear();
        out.reserve(n as usize);
        let mut cursor = self.start_cursor(start, rng);
        self.generate_window(&mut cursor, n, tick, events, rng, out);
    }

    /// Opens a resumable cursor at `start`, drawing the stationary OU init
    /// from `rng`. Feed it to [`generate_window`](Self::generate_window).
    pub fn start_cursor(&self, start: SimTime, rng: &mut Xoshiro256) -> SnrCursor {
        SnrCursor {
            ou: self.ou_sigma_db * rng.standard_normal(), // stationary init
            t: start,
            upcoming: 0,
            active: Vec::new(),
        }
    }

    /// Generates the next `n` ticks of the stream, **appending** to `out`
    /// and advancing the cursor. Splitting a horizon into windows — with
    /// the RNG state checkpointed between them via
    /// [`Xoshiro256::state`](rwc_util::rng::Xoshiro256::state) — produces
    /// the same bytes as one [`generate_into`](Self::generate_into) call:
    /// the loop body is shared, only the iteration bounds differ.
    pub fn generate_window(
        &self,
        cursor: &mut SnrCursor,
        n: u64,
        tick: SimDuration,
        events: &EventLog,
        rng: &mut Xoshiro256,
        out: &mut Vec<f64>,
    ) {
        assert!(self.ou_sigma_db >= 0.0, "sigma must be non-negative");
        assert!(self.ou_relaxation > SimDuration::ZERO, "relaxation must be positive");

        // Exact OU update: x' = x·ρ + σ·sqrt(1−ρ²)·ξ with ρ = exp(−Δt/τ).
        let rho = (-(tick.as_secs_f64() / self.ou_relaxation.as_secs_f64())).exp();
        let innovation = self.ou_sigma_db * (1.0 - rho * rho).sqrt();
        let mut ou = cursor.ou;

        let day = SimDuration::from_days(1).as_secs_f64();
        let schedule = events.events();
        let mut upcoming = cursor.upcoming; // first event still in the future
        let mut active = std::mem::take(&mut cursor.active); // log order
        let end = cursor.t + tick * n;
        for t in Ticks::new(cursor.t, end, tick) {
            while upcoming < schedule.len() && schedule[upcoming].start <= t {
                active.push(upcoming); // increasing index ⇒ log order preserved
                upcoming += 1;
            }
            active.retain(|&i| schedule[i].end() > t);
            let mut offset = Some(0.0);
            for &i in &active {
                offset = match (offset, schedule[i].snr_effect_at(t)) {
                    (Some(total), Some(o)) => Some(total + o),
                    _ => None, // an active loss-of-light blanks the sample
                };
                if offset.is_none() {
                    break;
                }
            }
            let phase = std::f64::consts::TAU * (t.since_epoch().as_secs_f64() / day)
                + self.diurnal_phase;
            let diurnal = self.diurnal_amp_db * phase.sin();
            let sample = match offset {
                None => {
                    // Loss of light: a jittered noise-floor reading.
                    (self.noise_floor_db + 0.05 * rng.standard_normal()).max(0.01)
                }
                Some(offset) => {
                    (self.baseline_db + ou + diurnal + offset).max(0.01)
                }
            };
            out.push(sample);
            ou = ou * rho + innovation * rng.standard_normal();
        }
        cursor.ou = ou;
        cursor.t = end;
        cursor.upcoming = upcoming;
        cursor.active = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};
    use rwc_util::stats::Summary;

    fn quiet_process() -> SnrProcess {
        SnrProcess { diurnal_amp_db: 0.0, ..SnrProcess::default() }
    }

    fn telemetry_trace(
        process: &SnrProcess,
        events: &EventLog,
        days: u64,
        seed: u64,
    ) -> SnrTrace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        process.generate(
            SimTime::EPOCH,
            SimDuration::from_days(days),
            SimDuration::TELEMETRY_TICK,
            events,
            &mut rng,
        )
    }

    #[test]
    fn stationary_mean_and_sd() {
        let p = quiet_process();
        let trace = telemetry_trace(&p, &EventLog::new(), 365, 1);
        let s = Summary::of(trace.values());
        assert!((s.mean - p.baseline_db).abs() < 0.1, "{s}");
        assert!((s.std_dev - p.ou_sigma_db).abs() < 0.12, "{s}");
    }

    #[test]
    fn healthy_link_hdr_is_narrow() {
        // The paper: 83% of links keep 95% of samples within < 2 dB.
        // A healthy (event-free) link with default noise must satisfy that.
        let trace = telemetry_trace(&SnrProcess::default(), &EventLog::new(), 365, 2);
        let hdr = crate::hdr::Hdr::paper(&trace);
        assert!(hdr.width().value() < 2.0, "hdr width = {}", hdr.width());
    }

    #[test]
    fn generate_into_matches_generate_bitwise() {
        // The streaming path must be the same function as the trace path,
        // sample for sample, including around event boundaries.
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 4.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(5),
            duration: SimDuration::from_hours(9),
        });
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(2),
            duration: SimDuration::from_hours(3),
        });
        events.push(Event {
            kind: EventKind::Step { delta_db: 1.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(7),
            duration: SimDuration::from_days(4),
        });
        let p = SnrProcess::default();
        let trace = telemetry_trace(&p, &events, 7, 11);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut streamed = vec![0.0; 3]; // dirty buffer must be cleared
        p.generate_into(
            SimTime::EPOCH,
            SimDuration::from_days(7),
            SimDuration::TELEMETRY_TICK,
            &events,
            &mut rng,
            &mut streamed,
        );
        assert_eq!(streamed.len(), trace.len());
        let same = streamed
            .iter()
            .zip(trace.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "streamed generation diverged from trace generation");
    }

    #[test]
    fn windowed_generation_matches_one_shot_bitwise() {
        // Chop the horizon into uneven windows, round-tripping both the
        // cursor and the RNG state through serialization between windows —
        // exactly what a checkpoint/resume cycle does — and demand the
        // concatenation equals the one-shot stream bit for bit.
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 4.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(5),
            duration: SimDuration::from_hours(9),
        });
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(2),
            duration: SimDuration::from_hours(3),
        });
        let p = SnrProcess::default();
        let trace = telemetry_trace(&p, &events, 7, 13);
        let n = trace.len() as u64;

        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut cursor = p.start_cursor(SimTime::EPOCH, &mut rng);
        let mut streamed = Vec::new();
        let mut left = n;
        for window in [1u64, 96, 7, 200, u64::MAX] {
            let take = window.min(left);
            // Simulate a kill/resume between windows.
            let json = serde_json::to_string(&cursor).unwrap();
            cursor = serde_json::from_str(&json).expect("cursor round trip");
            rng = Xoshiro256::from_state(rng.state());
            p.generate_window(
                &mut cursor,
                take,
                SimDuration::TELEMETRY_TICK,
                &events,
                &mut rng,
                &mut streamed,
            );
            left -= take;
            if left == 0 {
                break;
            }
        }
        assert_eq!(streamed.len(), trace.len());
        let same = streamed
            .iter()
            .zip(trace.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "windowed generation diverged from one-shot generation");
    }

    #[test]
    fn loss_of_light_reads_noise_floor() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::LossOfLight,
            start: SimTime::EPOCH + SimDuration::from_days(1),
            duration: SimDuration::from_hours(6),
        });
        let trace = telemetry_trace(&quiet_process(), &events, 3, 3);
        // Samples within the outage window must sit near the floor.
        let day1 = SimDuration::from_days(1).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let six_h = SimDuration::from_hours(6).ticks(SimDuration::TELEMETRY_TICK) as usize;
        for i in day1..day1 + six_h {
            assert!(trace.values()[i] < 1.0, "sample {i} = {}", trace.values()[i]);
        }
        // And the neighbours must be healthy.
        assert!(trace.values()[day1 - 1] > 10.0);
        assert!(trace.values()[day1 + six_h + 1] > 10.0);
    }

    #[test]
    fn dip_depth_is_respected() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 5.0 },
            start: SimTime::EPOCH + SimDuration::from_hours(10),
            duration: SimDuration::from_hours(5),
        });
        let p = quiet_process();
        let trace = telemetry_trace(&p, &events, 1, 4);
        let idx = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let dipped = trace.values()[idx];
        assert!((dipped - (p.baseline_db - 5.0)).abs() < 2.0, "dipped={dipped}");
    }

    #[test]
    fn diurnal_ripple_visible_in_spectrum() {
        // With a large diurnal amplitude and tiny noise, samples 12 h apart
        // should anti-correlate.
        let p = SnrProcess {
            diurnal_amp_db: 1.0,
            ou_sigma_db: 0.01,
            ..SnrProcess::default()
        };
        let trace = telemetry_trace(&p, &EventLog::new(), 30, 5);
        let half_day = SimDuration::from_hours(12).ticks(SimDuration::TELEMETRY_TICK) as usize;
        let vals = trace.values();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut cov = 0.0;
        let mut var = 0.0;
        for i in 0..vals.len() - half_day {
            cov += (vals[i] - mean) * (vals[i + half_day] - mean);
            var += (vals[i] - mean).powi(2);
        }
        assert!(cov / var < -0.8, "correlation = {}", cov / var);
    }

    #[test]
    fn snr_never_negative() {
        let mut events = EventLog::new();
        events.push(Event {
            kind: EventKind::Dip { depth_db: 50.0 },
            start: SimTime::EPOCH,
            duration: SimDuration::from_days(1),
        });
        let trace = telemetry_trace(&quiet_process(), &events, 1, 6);
        assert!(trace.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SnrProcess::default();
        let a = telemetry_trace(&p, &EventLog::new(), 10, 7);
        let b = telemetry_trace(&p, &EventLog::new(), 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn ou_relaxation_controls_correlation() {
        // Long relaxation → neighbouring samples highly correlated; short →
        // nearly independent.
        let correlated = SnrProcess {
            ou_relaxation: SimDuration::from_hours(24),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let uncorrelated = SnrProcess {
            ou_relaxation: SimDuration::from_minutes(1),
            diurnal_amp_db: 0.0,
            ..SnrProcess::default()
        };
        let lag1 = |trace: &SnrTrace| {
            let v = trace.values();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let mut cov = 0.0;
            let mut var = 0.0;
            for i in 0..v.len() - 1 {
                cov += (v[i] - mean) * (v[i + 1] - mean);
                var += (v[i] - mean).powi(2);
            }
            cov / var
        };
        let c = lag1(&telemetry_trace(&correlated, &EventLog::new(), 60, 8));
        let u = lag1(&telemetry_trace(&uncorrelated, &EventLog::new(), 60, 9));
        assert!(c > 0.8, "correlated lag-1 = {c}");
        assert!(u.abs() < 0.1, "uncorrelated lag-1 = {u}");
    }
}
