//! SNR time series container.

use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;
use serde::{Deserialize, Serialize};

/// A regularly sampled SNR series for one link.
///
/// Values are finite decibels; during loss-of-light the receiver still
/// reports a noise-floor reading (a few tenths of a dB) rather than a
/// sentinel, mirroring what real DSPs emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrTrace {
    start: SimTime,
    tick: SimDuration,
    samples: Vec<f64>,
}

impl SnrTrace {
    /// Builds a trace from raw decibel samples.
    ///
    /// Panics if empty, if the tick is zero, or if any sample is non-finite.
    pub fn new(start: SimTime, tick: SimDuration, samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empty SNR trace");
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        assert!(samples.iter().all(|s| s.is_finite()), "non-finite SNR sample");
        Self { start, tick, samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sampling interval.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> SimTime {
        assert!(i < self.samples.len(), "index out of range");
        self.start + self.tick * i as u64
    }

    /// Raw samples in dB.
    pub fn values(&self) -> &[f64] {
        &self.samples
    }

    /// Sample `i` as a typed decibel value.
    pub fn snr_at(&self, i: usize) -> Db {
        Db(self.samples[i])
    }

    /// `(time, snr)` iterator.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, Db)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.start + self.tick * i as u64, Db(v)))
    }

    /// Minimum sample.
    pub fn min(&self) -> Db {
        Db(self.samples.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Maximum sample.
    pub fn max(&self) -> Db {
        Db(self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Mean sample.
    pub fn mean(&self) -> Db {
        Db(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// `max − min` — the paper's "Range" metric in Fig. 2a.
    pub fn range(&self) -> Db {
        self.max() - self.min()
    }

    /// Total duration covered (`len · tick`).
    pub fn duration(&self) -> SimDuration {
        self.tick * self.samples.len() as u64
    }

    /// Downsampled copy keeping every `stride`-th sample (for plotting).
    pub fn decimate(&self, stride: usize) -> SnrTrace {
        assert!(stride > 0, "stride must be positive");
        SnrTrace {
            start: self.start,
            tick: self.tick * stride as u64,
            samples: self.samples.iter().copied().step_by(stride).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>) -> SnrTrace {
        SnrTrace::new(SimTime::EPOCH, SimDuration::from_minutes(15), samples)
    }

    #[test]
    fn basic_accessors() {
        let t = trace(vec![12.0, 11.5, 12.5, 0.2]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.min(), Db(0.2));
        assert_eq!(t.max(), Db(12.5));
        assert_eq!(t.range(), Db(12.3));
        assert!((t.mean().value() - 9.05).abs() < 1e-12);
        assert_eq!(t.duration(), SimDuration::from_minutes(60));
    }

    #[test]
    fn time_indexing() {
        let t = trace(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.time_at(0), SimTime::EPOCH);
        assert_eq!(t.time_at(2), SimTime::EPOCH + SimDuration::from_minutes(30));
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1].0, SimTime::EPOCH + SimDuration::from_minutes(15));
        assert_eq!(collected[1].1, Db(2.0));
    }

    #[test]
    fn decimation() {
        let t = trace((0..10).map(|i| i as f64).collect());
        let d = t.decimate(3);
        assert_eq!(d.values(), &[0.0, 3.0, 6.0, 9.0]);
        assert_eq!(d.tick(), SimDuration::from_minutes(45));
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        trace(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        trace(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic]
    fn rejects_infinite() {
        trace(vec![1.0, f64::NEG_INFINITY]);
    }

    #[test]
    #[should_panic]
    fn time_at_out_of_range() {
        trace(vec![1.0]).time_at(1);
    }
}
