//! Bitwise windowing invariance of the counter-based batch generator.
//!
//! The batch pipeline's contract (DESIGN.md §13) is that every sample is
//! a pure function of its absolute tick index: any split of a horizon
//! into windows — sequential calls, a serialized-and-restored cursor, or
//! windows generated out of order by independent workers — concatenates
//! to byte-for-byte the same trace as one one-shot call. These
//! properties pin that on randomized fleets and random split points,
//! with exact `f64` bit equality as the oracle (mirroring the
//! `kernel_equivalence` suite's JSON-bytes oracle).

use proptest::prelude::*;
use rwc_telemetry::{BatchCursor, BatchScratch, FleetConfig, FleetGenerator, GenMode};
use rwc_util::time::{SimDuration, SimTime};

/// Tiny randomized fleets with boosted event rates so short horizons
/// still draw dips, steps, and loss-of-light events (whose noise-floor
/// samples also come from the counter streams).
fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    (0u64..1_000_000, 1usize..3, 1usize..4, 4u64..15).prop_map(
        |(seed, n_fibers, wavelengths_per_fiber, days)| FleetConfig {
            seed,
            n_fibers,
            wavelengths_per_fiber,
            horizon: SimDuration::from_days(days),
            shallow_dip_rate: 40.0,
            deep_dip_rate: 30.0,
            step_rate: 20.0,
            link_lol_rate: 30.0,
            fiber_cut_rate: 20.0,
            maintenance_rate: 30.0,
            ..FleetConfig::paper()
        },
    )
}

/// Converts a vector of arbitrary units into split points over `n` ticks:
/// sorted, deduped interior cut positions.
fn cuts(units: &[f64], n: u64) -> Vec<u64> {
    let mut cuts: Vec<u64> =
        units.iter().map(|u| 1 + (u * (n - 1) as f64) as u64).filter(|&c| c < n).collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// The whole-horizon one-shot batch trace of one link.
fn one_shot(gen: &FleetGenerator, link: usize) -> Vec<f64> {
    let cfg = gen.config();
    let profile = gen.link_profile(link);
    let rng = gen.batch_rng(link);
    let mut scratch = BatchScratch::default();
    let mut out = Vec::new();
    profile.process.generate_batch_into(
        SimTime::EPOCH,
        cfg.horizon,
        cfg.tick,
        &profile.events,
        &rng,
        &mut scratch,
        &mut out,
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random window splits, with the cursor serialized to JSON and
    /// restored between every window, concatenate to the one-shot bytes.
    #[test]
    fn windowed_generation_with_cursor_round_trip_is_bitwise_identical(
        fleet in fleet_strategy(),
        link_pick in 0usize..64,
        units in proptest::collection::vec(0.0f64..1.0, 0..8),
    ) {
        let gen = FleetGenerator::new(fleet).with_gen_mode(GenMode::Batch);
        let link = link_pick % gen.n_links();
        let want = one_shot(&gen, link);
        let n = want.len() as u64;

        let cfg = gen.config();
        let profile = gen.link_profile(link);
        let rng = gen.batch_rng(link);
        let mut scratch = BatchScratch::default();
        let mut got = Vec::new();
        let mut cursor = BatchCursor::begin();
        let mut prev = 0u64;
        for cut in cuts(&units, n).into_iter().chain([n]) {
            // Serialize/restore across the window boundary: a resumed
            // worker must continue the exact stream.
            let json = serde_json::to_string(&cursor).unwrap();
            cursor = serde_json::from_str(&json).unwrap();
            profile.process.generate_batch_window(
                &mut cursor,
                cut - prev,
                SimTime::EPOCH,
                cfg.tick,
                &profile.events,
                &rng,
                &mut scratch,
                &mut got,
            );
            prop_assert_eq!(cursor.next_tick(), cut);
            prev = cut;
        }
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "tick {} diverged: {} vs {}", i, g, w
            );
        }
    }

    /// Windows generated independently and out of order — each from a
    /// fresh cursor positioned with `at_tick`, as parallel workers or
    /// shards would — still reproduce the one-shot bytes.
    #[test]
    fn out_of_order_windows_are_bitwise_identical(
        fleet in fleet_strategy(),
        link_pick in 0usize..64,
        units in proptest::collection::vec(0.0f64..1.0, 0..6),
        order_seed in 0u64..1_000_000,
    ) {
        let gen = FleetGenerator::new(fleet).with_gen_mode(GenMode::Batch);
        let link = link_pick % gen.n_links();
        let want = one_shot(&gen, link);
        let n = want.len() as u64;

        let cfg = gen.config();
        let profile = gen.link_profile(link);
        let rng = gen.batch_rng(link);

        let mut bounds = cuts(&units, n);
        bounds.insert(0, 0);
        bounds.push(n);
        let mut windows: Vec<(u64, u64)> =
            bounds.windows(2).map(|w| (w[0], w[1])).collect();
        rwc_util::rng::Xoshiro256::seed_from_u64(order_seed).shuffle(&mut windows);

        let mut got = vec![0.0f64; n as usize];
        for (lo, hi) in windows {
            // Fresh per-window state, like an independent worker.
            let mut scratch = BatchScratch::default();
            let mut cursor = BatchCursor::at_tick(lo);
            let mut piece = Vec::new();
            profile.process.generate_batch_window(
                &mut cursor,
                hi - lo,
                SimTime::EPOCH,
                cfg.tick,
                &profile.events,
                &rng,
                &mut scratch,
                &mut piece,
            );
            got[lo as usize..hi as usize].copy_from_slice(&piece);
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "tick {} diverged: {} vs {}", i, g, w
            );
        }
    }
}
