//! Byte-identity of the fused fleet kernel against the legacy path.
//!
//! The fused kernel ([`rwc_telemetry::FleetKernel`]) promises *bit-for-bit*
//! the same `LinkAnalysis`/`FleetAccumulator` as the legacy
//! trace-materialising pipeline. These properties pin that promise on
//! randomized inputs — including loss-of-light floors, all-failing and
//! never-failing links, and episodes still open at trace end — with
//! serialized JSON bytes as the equality oracle, so every field (episode
//! geometry, floors, HDR edges, moments) participates in the comparison.

use proptest::prelude::*;
use rwc_optics::ModulationTable;
use rwc_telemetry::analysis::LinkAnalysis;
use rwc_telemetry::trace::SnrTrace;
use rwc_telemetry::{AnalysisMode, FleetConfig, FleetGenerator, FleetKernel};
use rwc_util::time::{SimDuration, SimTime};

/// Sample vectors spanning the kernel's episode-geometry edge cases. The
/// `regime` index picks a band: mixed healthy/failing, loss-of-light
/// floors near the noise floor, all-failing (below the lowest rung),
/// never-failing (above the top rung), or healthy-then-failing so the
/// final episode stays open at trace end.
fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    (0u8..5, proptest::collection::vec(0.0f64..1.0, 2..300)).prop_map(|(regime, units)| {
        let n = units.len();
        units
            .into_iter()
            .enumerate()
            .map(|(i, u)| match regime {
                0 => 0.01 + u * 19.99,          // anything in (0, 20]
                1 => 0.15 + u * 0.1,            // loss-of-light noise floor
                2 => 0.01 + u * 2.8,            // all-failing: below every rung
                3 => 14.5 + u * 5.0,            // never-failing: above the top rung
                _ if i >= n.saturating_sub(3) => 0.5 + u, // open episode at end
                _ => 13.0 + u,                  // healthy prefix
            })
            .collect()
    })
}

/// Tiny randomized fleets with event rates boosted so short horizons still
/// draw dips, steps, and loss-of-light events.
fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    (0u64..1_000_000, 1usize..3, 1usize..5, 4u64..15).prop_map(
        |(seed, n_fibers, wavelengths_per_fiber, days)| FleetConfig {
            seed,
            n_fibers,
            wavelengths_per_fiber,
            horizon: SimDuration::from_days(days),
            shallow_dip_rate: 40.0,
            deep_dip_rate: 30.0,
            step_rate: 20.0,
            link_lol_rate: 30.0,
            fiber_cut_rate: 20.0,
            maintenance_rate: 30.0,
            ..FleetConfig::paper()
        },
    )
}

proptest! {
    /// Per-trace: fused analysis of a crafted trace serializes to the very
    /// bytes the legacy constructor produces.
    #[test]
    fn fused_link_analysis_is_byte_identical(samples in samples_strategy()) {
        let trace = SnrTrace::new(SimTime::EPOCH, SimDuration::TELEMETRY_TICK, samples);
        let table = ModulationTable::paper_default();
        let legacy = LinkAnalysis::new(&trace, &table);
        let mut kernel = FleetKernel::new();
        let fused = kernel.analyze_trace(&trace, &table);
        prop_assert_eq!(
            serde_json::to_string(&fused).expect("fused serializes"),
            serde_json::to_string(&legacy).expect("legacy serializes")
        );
    }

    /// Per-fleet: a generated fleet swept by the fused kernel accumulates
    /// to the same bytes as the legacy trace path, with the kernel's
    /// buffers reused across every link of the fleet.
    #[test]
    fn fused_fleet_accumulator_is_byte_identical(cfg in fleet_strategy()) {
        let gen = FleetGenerator::new(cfg);
        let table = ModulationTable::paper_default();
        let fused = gen.fleet_analysis_with(&table, AnalysisMode::Fused);
        let legacy = gen.fleet_analysis_with(&table, AnalysisMode::Legacy);
        prop_assert_eq!(
            serde_json::to_string(&fused).expect("fused serializes"),
            serde_json::to_string(&legacy).expect("legacy serializes")
        );
    }
}
