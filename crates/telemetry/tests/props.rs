//! Property tests for telemetry invariants.

use proptest::prelude::*;
use rwc_telemetry::analysis::episodes_below;
use rwc_telemetry::hdr::Hdr;
use rwc_telemetry::trace::SnrTrace;
use rwc_util::time::{SimDuration, SimTime};
use rwc_util::units::Db;

fn trace_strategy() -> impl Strategy<Value = SnrTrace> {
    proptest::collection::vec(0.01f64..20.0, 2..400).prop_map(|samples| {
        SnrTrace::new(SimTime::EPOCH, SimDuration::TELEMETRY_TICK, samples)
    })
}

proptest! {
    /// Episodes exactly tile the below-threshold samples: disjoint, ordered,
    /// and their total duration equals tick × (number of below samples).
    #[test]
    fn episodes_tile_below_threshold_samples(trace in trace_strategy(), threshold in 0.5f64..19.0) {
        let episodes = episodes_below(&trace, Db(threshold));
        let below = trace.values().iter().filter(|&&v| v < threshold).count() as u64;
        let total: u64 = episodes
            .iter()
            .map(|e| e.duration.as_millis() / trace.tick().as_millis())
            .sum();
        prop_assert_eq!(total, below);
        // Ordered and disjoint.
        for pair in episodes.windows(2) {
            prop_assert!(pair[0].start + pair[0].duration <= pair[1].start);
        }
        // Floors are genuine minima of their windows and below threshold.
        for e in &episodes {
            prop_assert!(e.floor.value() < threshold);
        }
    }

    /// The 95% HDR lies within [min, max] and covers ≥95% of samples.
    #[test]
    fn hdr_within_range_and_covers(trace in trace_strategy()) {
        let hdr = Hdr::paper(&trace);
        prop_assert!(hdr.low >= trace.min() && hdr.high <= trace.max());
        let inside = trace
            .values()
            .iter()
            .filter(|&&v| v >= hdr.low.value() && v <= hdr.high.value())
            .count();
        let need = (0.95 * trace.len() as f64).ceil() as usize;
        prop_assert!(inside >= need.min(trace.len()));
    }

    /// Raising the threshold never yields less below-threshold time.
    #[test]
    fn failure_time_monotone_in_threshold(trace in trace_strategy(),
                                          t1 in 1.0f64..10.0, delta in 0.0f64..9.0) {
        let t2 = t1 + delta;
        let time = |t: f64| -> u64 {
            episodes_below(&trace, Db(t)).iter().map(|e| e.duration.as_millis()).sum()
        };
        prop_assert!(time(t1) <= time(t2));
    }

    /// Decimation preserves span and never invents samples.
    #[test]
    fn decimation_subset(trace in trace_strategy(), stride in 1usize..10) {
        let d = trace.decimate(stride);
        prop_assert!(d.len() <= trace.len());
        prop_assert!(d.min() >= trace.min());
        prop_assert!(d.max() <= trace.max());
        prop_assert_eq!(d.values()[0], trace.values()[0]);
    }

    /// The forecaster's lower bound never exceeds its point forecast.
    #[test]
    fn forecaster_bound_ordering(values in proptest::collection::vec(1.0f64..20.0, 2..100),
                                 steps in 0u64..50, z in 0.0f64..4.0) {
        let mut f = rwc_telemetry::forecast::SnrForecaster::telemetry_default();
        for v in values {
            f.observe(Db(v));
        }
        let point = f.predict(steps).unwrap();
        let lower = f.lower_bound(steps, z).unwrap();
        prop_assert!(lower <= point);
    }
}
