//! Hard-coded research topologies and regular graph families.
//!
//! - [`fig7_example`]: the paper's own four-node illustration of the graph
//!   abstraction (§4.1, Fig. 7);
//! - [`abilene`]: the 11-node Internet2/Abilene backbone, the standard
//!   academic WAN benchmark;
//! - [`b4_like`]: a 12-node topology shaped like Google's published B4
//!   inter-datacenter WAN;
//! - [`ring`], [`grid`], [`full_mesh`]: regular families for scaling
//!   studies.

use crate::graph::NodeId;
use crate::wan::WanTopology;

/// The paper's Fig. 7 network: four sites in a square.
///
/// Links (all 100 G): A–B, C–D, A–C, B–D. The Fig. 7 walk-through: demands
/// A→B and C→D of 100 G fill the top and bottom links; when both demands
/// grow to 125 G, every A→B path crosses either A–B or C–D (and likewise
/// for C→D), so the horizontal links need 250 G combined — one upgrade
/// suffices and the other demand's overflow detours through it.
pub fn fig7_example() -> WanTopology {
    let mut wan = WanTopology::new();
    let a = wan.add_node("A", None);
    let b = wan.add_node("B", None);
    let c = wan.add_node("C", None);
    let d = wan.add_node("D", None);
    for (x, y) in [(a, b), (c, d), (a, c), (b, d)] {
        wan.add_link(x, y, 500.0);
    }
    wan
}

/// The Abilene / Internet2 backbone: 11 PoPs, 14 links, with approximate
/// geographic coordinates and route lengths.
pub fn abilene() -> WanTopology {
    let mut wan = WanTopology::new();
    let sites: [(&str, f64, f64); 11] = [
        ("SEA", 47.61, -122.33),
        ("SNV", 37.37, -122.04),
        ("LAX", 34.05, -118.24),
        ("DEN", 39.74, -104.99),
        ("KSC", 39.10, -94.58),
        ("HOU", 29.76, -95.37),
        ("IPL", 39.77, -86.16),
        ("CHI", 41.88, -87.63),
        ("ATL", 33.75, -84.39),
        ("WDC", 38.91, -77.04),
        ("NYC", 40.71, -74.01),
    ];
    let ids: Vec<NodeId> = sites
        .iter()
        .map(|&(name, lat, lon)| wan.add_node(name, Some((lat, lon))))
        .collect();
    let by_name = |n: &str| ids[sites.iter().position(|&(s, ..)| s == n).unwrap()];
    let links: [(&str, &str, f64); 14] = [
        ("SEA", "SNV", 1342.0),
        ("SEA", "DEN", 2113.0),
        ("SNV", "LAX", 560.0),
        ("SNV", "DEN", 1762.0),
        ("LAX", "HOU", 2472.0),
        ("DEN", "KSC", 970.0),
        ("KSC", "HOU", 1184.0),
        ("KSC", "IPL", 818.0),
        ("HOU", "ATL", 1385.0),
        ("IPL", "CHI", 294.0),
        ("IPL", "ATL", 857.0),
        ("CHI", "NYC", 1453.0),
        ("ATL", "WDC", 872.0),
        ("WDC", "NYC", 330.0),
    ];
    for (x, y, km) in links {
        wan.add_link(by_name(x), by_name(y), km);
    }
    wan
}

/// A 12-node inter-datacenter WAN shaped like Google's published B4
/// topology (two sites per region, trans-oceanic long hauls).
pub fn b4_like() -> WanTopology {
    let mut wan = WanTopology::new();
    let names = [
        "US-W1", "US-W2", "US-C1", "US-C2", "US-E1", "US-E2", "EU-1", "EU-2", "ASIA-1", "ASIA-2",
        "SA-1", "APAC-1",
    ];
    let ids: Vec<NodeId> = names.iter().map(|&n| wan.add_node(n, None)).collect();
    let by = |i: usize| ids[i];
    let links: [(usize, usize, f64); 19] = [
        (0, 1, 300.0),    // US-W pair
        (0, 2, 1900.0),   // W1–C1
        (1, 2, 2000.0),   // W2–C1
        (1, 3, 2100.0),   // W2–C2
        (2, 3, 350.0),    // US-C pair
        (2, 4, 1100.0),   // C1–E1
        (3, 5, 1200.0),   // C2–E2
        (4, 5, 320.0),    // US-E pair
        (4, 6, 4200.0),   // E1–EU1
        (5, 6, 4300.0),   // E2–EU1
        (5, 7, 4400.0),   // E2–EU2
        (6, 7, 400.0),    // EU pair
        (0, 8, 4300.0),   // W1–ASIA1
        (1, 9, 4400.0),   // W2–ASIA2
        (8, 9, 450.0),    // ASIA pair
        (8, 11, 4100.0),  // ASIA1–APAC
        (9, 11, 4200.0),  // ASIA2–APAC
        (4, 10, 4500.0),  // E1–SA
        (10, 11, 4600.0), // SA–APAC
    ];
    for (x, y, km) in links {
        wan.add_link(by(x), by(y), km);
    }
    wan
}

/// A ring of `n` sites (minimum 3), each hop `hop_km` long.
pub fn ring(n: usize, hop_km: f64) -> WanTopology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut wan = WanTopology::new();
    let ids: Vec<NodeId> = (0..n).map(|i| wan.add_node(format!("R{i}"), None)).collect();
    for i in 0..n {
        wan.add_link(ids[i], ids[(i + 1) % n], hop_km);
    }
    wan
}

/// An `rows × cols` grid (both ≥ 2), nearest-neighbour links.
pub fn grid(rows: usize, cols: usize, hop_km: f64) -> WanTopology {
    assert!(rows >= 2 && cols >= 2, "grid needs at least 2x2");
    let mut wan = WanTopology::new();
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(wan.add_node(format!("G{r}-{c}"), None));
        }
    }
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                wan.add_link(at(r, c), at(r, c + 1), hop_km);
            }
            if r + 1 < rows {
                wan.add_link(at(r, c), at(r + 1, c), hop_km);
            }
        }
    }
    wan
}

/// A complete graph on `n` sites (n ≥ 2).
pub fn full_mesh(n: usize, hop_km: f64) -> WanTopology {
    assert!(n >= 2, "mesh needs at least 2 nodes");
    let mut wan = WanTopology::new();
    let ids: Vec<NodeId> = (0..n).map(|i| wan.add_node(format!("M{i}"), None)).collect();
    for i in 0..n {
        for j in i + 1..n {
            wan.add_link(ids[i], ids[j], hop_km);
        }
    }
    wan
}

/// `scale` replicas of a six-node full mesh chained with cross-links —
/// the `--scale` topology multiplier for large-TE stress runs (the
/// scenario-path counterpart of the fleet `--scale` flag).
///
/// Replica `i`'s node `j` is named `S{i}-{j}`; nodes `0..3` of
/// consecutive replicas are tied together, so the composite stays
/// connected and multipath-rich while links grow linearly:
/// `15·scale + 3·(scale−1)` links, i.e. `2×` that in directed TE edges.
pub fn scaled_mesh(scale: usize, hop_km: f64) -> WanTopology {
    assert!(scale >= 1, "scaled mesh needs at least one replica");
    const MESH_N: usize = 6;
    const CROSS: usize = 3;
    let mut wan = WanTopology::new();
    let mut ids = Vec::with_capacity(scale * MESH_N);
    for i in 0..scale {
        for j in 0..MESH_N {
            ids.push(wan.add_node(format!("S{i}-{j}"), None));
        }
    }
    let at = |i: usize, j: usize| ids[i * MESH_N + j];
    for i in 0..scale {
        for j in 0..MESH_N {
            for jj in j + 1..MESH_N {
                wan.add_link(at(i, j), at(i, jj), hop_km);
            }
        }
        if i + 1 < scale {
            for j in 0..CROSS {
                wan.add_link(at(i, j), at(i + 1, j), hop_km);
            }
        }
    }
    wan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape() {
        let wan = fig7_example();
        assert_eq!(wan.n_nodes(), 4);
        assert_eq!(wan.n_links(), 4);
        assert!(wan.is_connected());
        // All 100 G initially, as in Fig. 7a.
        assert_eq!(wan.total_capacity(), rwc_util::units::Gbps(400.0));
        // The detour path A–C–D–B must exist.
        let a = wan.node_by_name("A").unwrap();
        let c = wan.node_by_name("C").unwrap();
        assert!(wan
            .links()
            .any(|(_, l)| (l.a == a && l.b == c) || (l.a == c && l.b == a)));
    }

    #[test]
    fn abilene_shape() {
        let wan = abilene();
        assert_eq!(wan.n_nodes(), 11);
        assert_eq!(wan.n_links(), 14);
        assert!(wan.is_connected());
        // Every link must sustain the 100 G default at its length.
        let table = rwc_optics::ModulationTable::paper_default();
        for (id, l) in wan.links() {
            assert!(l.healthy(&table), "link {id:?} ({} km) unhealthy", l.length_km);
        }
    }

    #[test]
    fn abilene_short_links_can_run() {
        // Short routes (WDC–NYC, IPL–CHI) should support 200 G; the longest
        // (LAX–HOU) should not.
        let wan = abilene();
        let table = rwc_optics::ModulationTable::paper_default();
        let link_between = |x: &str, y: &str| {
            let (a, b) = (wan.node_by_name(x).unwrap(), wan.node_by_name(y).unwrap());
            wan.links()
                .find(|(_, l)| (l.a == a && l.b == b) || (l.a == b && l.b == a))
                .unwrap()
                .1
                .clone()
        };
        let short = link_between("WDC", "NYC");
        assert!(table.supports(short.snr, rwc_optics::Modulation::Dp16Qam200));
        let long = link_between("LAX", "HOU");
        assert!(!table.supports(long.snr, rwc_optics::Modulation::Dp16Qam200));
    }

    #[test]
    fn b4_shape() {
        let wan = b4_like();
        assert_eq!(wan.n_nodes(), 12);
        assert_eq!(wan.n_links(), 19);
        assert!(wan.is_connected());
    }

    #[test]
    fn ring_and_grid_and_mesh() {
        let r = ring(6, 400.0);
        assert_eq!(r.n_links(), 6);
        assert!(r.is_connected());
        let g = grid(3, 4, 300.0);
        assert_eq!(g.n_nodes(), 12);
        assert_eq!(g.n_links(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.is_connected());
        let m = full_mesh(5, 500.0);
        assert_eq!(m.n_links(), 10);
        assert!(m.is_connected());
    }

    #[test]
    #[should_panic]
    fn tiny_ring_rejected() {
        ring(2, 100.0);
    }

    #[test]
    fn scaled_mesh_grows_linearly_and_stays_connected() {
        for scale in [1usize, 3, 5] {
            let wan = scaled_mesh(scale, 500.0);
            assert_eq!(wan.n_nodes(), 6 * scale);
            assert_eq!(wan.n_links(), 15 * scale + 3 * scale.saturating_sub(1));
            assert!(wan.is_connected(), "scale {scale} disconnected");
            assert!(wan.node_by_name(&format!("S{}-5", scale - 1)).is_some());
        }
    }
}
