//! Graphviz DOT export of WAN topologies.
//!
//! Operators reason about topologies visually; `to_dot` renders sites,
//! links, current rates and SNR headroom so augmentation decisions can be
//! eyeballed (`dot -Tsvg topology.dot`).

use crate::wan::WanTopology;
use rwc_optics::ModulationTable;
use std::fmt::Write as _;

/// Renders the topology as an undirected Graphviz graph.
///
/// Each edge is labelled `capacity @ snr`; links whose SNR supports a
/// faster rung (per `table`) are drawn bold green, degraded links (below
/// their current rung's threshold) bold red.
pub fn to_dot(wan: &WanTopology, table: &ModulationTable) -> String {
    let mut out = String::from("graph wan {\n  layout=neato;\n  node [shape=ellipse];\n");
    for id in wan.node_ids() {
        let node = wan.node(id);
        match node.location {
            Some((lat, lon)) => {
                // Rough plate-carrée projection for neato pinning.
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\", pos=\"{:.2},{:.2}!\"];",
                    id.0,
                    node.name,
                    lon / 2.0,
                    lat / 2.0
                );
            }
            None => {
                let _ = writeln!(out, "  n{} [label=\"{}\"];", id.0, node.name);
            }
        }
    }
    for (_, link) in wan.links() {
        let style = if !link.healthy(table) {
            " color=red penwidth=2"
        } else if !link.upgrades(table).is_empty() {
            " color=darkgreen penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{} @ {}\"{}];",
            link.a.0,
            link.b.0,
            link.capacity(),
            link.snr,
            style
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rwc_util::units::Db;

    #[test]
    fn dot_contains_all_nodes_and_links() {
        let wan = builders::abilene();
        let dot = to_dot(&wan, &ModulationTable::paper_default());
        assert!(dot.starts_with("graph wan {"));
        assert!(dot.trim_end().ends_with('}'));
        for id in wan.node_ids() {
            assert!(dot.contains(&format!("\"{}\"", wan.node(id).name)));
        }
        assert_eq!(dot.matches(" -- ").count(), wan.n_links());
    }

    #[test]
    fn geographic_nodes_are_pinned() {
        let wan = builders::abilene();
        let dot = to_dot(&wan, &ModulationTable::paper_default());
        assert!(dot.contains("pos=\""), "abilene has coordinates");
    }

    #[test]
    fn health_colours() {
        let mut wan = builders::fig7_example();
        let table = ModulationTable::paper_default();
        wan.set_snr(crate::wan::LinkId(0), Db(13.0)); // upgradable
        wan.set_snr(crate::wan::LinkId(1), Db(4.0)); // degraded
        wan.set_snr(crate::wan::LinkId(2), Db(7.0)); // plain healthy
        wan.set_snr(crate::wan::LinkId(3), Db(7.0));
        let dot = to_dot(&wan, &table);
        assert!(dot.contains("darkgreen"));
        assert!(dot.contains("color=red"));
    }
}
