//! A minimal directed multigraph.
//!
//! Design goals, in order: parallel-edge support (Algorithm 1 inserts fake
//! links *next to* real ones), cache-friendly integer ids, and a small
//! surface that the flow/TE layers can consume without adapters. Nodes and
//! edges are never removed in place — the TE loop re-derives topologies
//! each round — but [`Graph::filter_edges`] produces pruned copies.

use serde::{Deserialize, Serialize};

/// Index of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// A directed edge with its payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge<E> {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Payload (capacity, cost, link reference, …).
    pub payload: E,
}

/// A directed multigraph with node payloads `N` and edge payloads `E`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self { nodes: Vec::new(), edges: Vec::new(), out_adj: Vec::new(), in_adj: Vec::new() }
    }
}

impl<N, E> Graph<N, E> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(payload);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge. Parallel edges and self-loops are allowed.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, payload: E) -> EdgeId {
        assert!(from.0 < self.nodes.len(), "from node out of range");
        assert!(to.0 < self.nodes.len(), "to node out of range");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, payload });
        self.out_adj[from.0].push(id);
        self.in_adj[to.0].push(id);
        id
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node payload.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable node payload.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Edge record.
    pub fn edge(&self, id: EdgeId) -> &Edge<E> {
        &self.edges[id.0]
    }

    /// Mutable edge payload.
    pub fn edge_payload_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.0].payload
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterator over `(EdgeId, &Edge)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge<E>)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge<E>)> {
        self.out_adj[node.0].iter().map(move |&id| (id, &self.edges[id.0]))
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge<E>)> {
        self.in_adj[node.0].iter().map(move |&id| (id, &self.edges[id.0]))
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adj[node.0].len()
    }

    /// All parallel edges from `from` to `to`.
    pub fn edges_between(&self, from: NodeId, to: NodeId) -> Vec<EdgeId> {
        self.out_adj[from.0]
            .iter()
            .copied()
            .filter(|&id| self.edges[id.0].to == to)
            .collect()
    }

    /// A copy keeping only edges satisfying the predicate (edge ids are
    /// renumbered; node ids are preserved).
    pub fn filter_edges<F>(&self, mut keep: F) -> Graph<N, E>
    where
        N: Clone,
        E: Clone,
        F: FnMut(EdgeId, &Edge<E>) -> bool,
    {
        let mut g = Graph::new();
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for (id, e) in self.edges() {
            if keep(id, e) {
                g.add_edge(e.from, e.to, e.payload.clone());
            }
        }
        g
    }

    /// A copy with edge payloads mapped through `f`.
    pub fn map_edges<F, E2>(&self, mut f: F) -> Graph<N, E2>
    where
        N: Clone,
        F: FnMut(EdgeId, &Edge<E>) -> E2,
    {
        let mut g = Graph::new();
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for (id, e) in self.edges() {
            g.add_edge(e.from, e.to, f(id, e));
        }
        g
    }

    /// True if every node can reach every other node (treating edges as
    /// undirected) — the usual sanity check on generated WANs.
    pub fn is_connected_undirected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for (_, e) in self.out_edges(n) {
                if !seen[e.to.0] {
                    seen[e.to.0] = true;
                    stack.push(e.to);
                }
            }
            for (_, e) in self.in_edges(n) {
                if !seen[e.from.0] {
                    seen[e.from.0] = true;
                    stack.push(e.from);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph<&'static str, u32> {
        // a -> b -> d, a -> c -> d
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        g
    }

    #[test]
    fn construction_and_accessors() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(*g.node(NodeId(1)), "b");
        assert_eq!(g.edge(EdgeId(0)).payload, 1);
        assert_eq!(g.edge(EdgeId(0)).from, NodeId(0));
        assert_eq!(g.edge(EdgeId(0)).to, NodeId(1));
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        let out: Vec<u32> = g.out_edges(NodeId(0)).map(|(_, e)| e.payload).collect();
        assert_eq!(out, vec![1, 2]);
        let into: Vec<u32> = g.in_edges(NodeId(3)).map(|(_, e)| e.payload).collect();
        assert_eq!(into, vec![3, 4]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g: Graph<(), u32> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 10);
        let e2 = g.add_edge(a, b, 20);
        assert_ne!(e1, e2);
        assert_eq!(g.edges_between(a, b), vec![e1, e2]);
        assert_eq!(g.edges_between(b, a), Vec::<EdgeId>::new());
    }

    #[test]
    fn mutation() {
        let mut g = diamond();
        *g.edge_payload_mut(EdgeId(2)) = 99;
        assert_eq!(g.edge(EdgeId(2)).payload, 99);
        *g.node_mut(NodeId(0)) = "z";
        assert_eq!(*g.node(NodeId(0)), "z");
    }

    #[test]
    fn filter_and_map() {
        let g = diamond();
        let pruned = g.filter_edges(|_, e| e.payload % 2 == 1);
        assert_eq!(pruned.n_edges(), 2);
        assert_eq!(pruned.n_nodes(), 4);
        let doubled = g.map_edges(|_, e| e.payload * 2);
        let payloads: Vec<u32> = doubled.edges().map(|(_, e)| e.payload).collect();
        assert_eq!(payloads, vec![2, 4, 6, 8]);
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(g.is_connected_undirected());
        let mut disconnected: Graph<(), ()> = Graph::new();
        disconnected.add_node(());
        disconnected.add_node(());
        assert!(!disconnected.is_connected_undirected());
        let empty: Graph<(), ()> = Graph::new();
        assert!(empty.is_connected_undirected());
    }

    #[test]
    #[should_panic]
    fn add_edge_validates_nodes() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph<String, u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(g.n_edges(), back.n_edges());
        assert_eq!(back.edge(EdgeId(3)).payload, 4);
    }
}
