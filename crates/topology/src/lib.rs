//! # rwc-topology
//!
//! WAN topology substrate for the *Run, Walk, Crawl* reproduction.
//!
//! The paper's abstraction operates on an IP-layer topology whose links are
//! optical wavelengths (one wavelength = one IP link). This crate provides:
//!
//! - [`graph`]: a minimal directed **multigraph** — parallel edges are
//!   first-class because Algorithm 1's fake links are exactly parallel
//!   edges next to their real counterparts;
//! - [`wan`]: the WAN model: named sites, fiber cables, and wavelength
//!   links with lengths, SNR and current modulation;
//! - [`builders`]: hard-coded research topologies (Abilene, a B4-like
//!   graph, the paper's own Fig. 7 four-node example) and regular families
//!   (ring, grid, full mesh);
//! - [`random`]: Waxman and geometric random WANs over North-America-like
//!   coordinates;
//! - [`paths`]: Dijkstra shortest paths and Yen's k-shortest paths;
//! - JSON import/export via `serde` on all types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod export;
pub mod graph;
pub mod paths;
pub mod random;
pub mod wan;

pub use graph::{EdgeId, Graph, NodeId};
pub use wan::{WanLink, WanNode, WanTopology};
