//! Shortest paths over WAN topologies.
//!
//! Dijkstra with a caller-supplied link weight (hops, kilometres, inverse
//! capacity, …) and Yen's algorithm for k loopless shortest paths — the
//! path inventory tunnel-based TE (B4-style) selects from.

use crate::graph::NodeId;
use crate::wan::{LinkId, WanTopology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A path: alternating semantics — `nodes` has one more entry than
/// `links`, and `links[i]` joins `nodes[i]` to `nodes[i+1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed links.
    pub links: Vec<LinkId>,
    /// Total weight under the metric used to find it.
    pub weight: f64,
}

impl Path {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for a zero-hop (source == sink) path.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("paths have at least one node")
    }

    /// Sink node.
    pub fn sink(&self) -> NodeId {
        *self.nodes.last().expect("paths have at least one node")
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap over distance (reverse of the default max-heap).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.0.cmp(&other.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `src` to `dst` under a per-link weight.
///
/// Links with non-finite or negative weight are treated as unusable.
/// Returns `None` if `dst` is unreachable.
pub fn shortest_path<W>(wan: &WanTopology, src: NodeId, dst: NodeId, weight: W) -> Option<Path>
where
    W: Fn(LinkId) -> f64,
{
    shortest_path_avoiding(wan, src, dst, &weight, &[], &[])
}

/// Dijkstra variant that ignores the given links and nodes (Yen's spur
/// computation). `avoid_nodes` never blocks `src` itself.
fn shortest_path_avoiding<W>(
    wan: &WanTopology,
    src: NodeId,
    dst: NodeId,
    weight: &W,
    avoid_links: &[LinkId],
    avoid_nodes: &[NodeId],
) -> Option<Path>
where
    W: Fn(LinkId) -> f64,
{
    let n = wan.n_nodes();
    assert!(src.0 < n && dst.0 < n, "endpoint out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: src });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node.0] {
            continue;
        }
        if node == dst {
            break;
        }
        for lid in wan.incident(node) {
            if avoid_links.contains(&lid) {
                continue;
            }
            let link = wan.link(lid);
            let next = link.opposite(node);
            if avoid_nodes.contains(&next) && next != dst {
                continue;
            }
            if avoid_nodes.contains(&next) {
                continue;
            }
            let w = weight(lid);
            if !w.is_finite() || w < 0.0 {
                continue;
            }
            let nd = d + w;
            if nd < dist[next.0] {
                dist[next.0] = nd;
                prev[next.0] = Some((node, lid));
                heap.push(HeapEntry { dist: nd, node: next });
            }
        }
    }
    if !dist[dst.0].is_finite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.0].expect("reachable node must have predecessor");
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links, weight: dist[dst.0] })
}

/// Yen's algorithm: the `k` shortest loopless paths from `src` to `dst`.
///
/// Returns fewer than `k` paths when the graph does not contain that many.
pub fn k_shortest_paths<W>(
    wan: &WanTopology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: W,
) -> Vec<Path>
where
    W: Fn(LinkId) -> f64,
{
    assert!(k > 0, "k must be positive");
    let Some(first) = shortest_path(wan, src, dst, &weight) else {
        return Vec::new();
    };
    let mut found = vec![first];
    let mut candidates: Vec<Path> = Vec::new();
    while found.len() < k {
        let last = found.last().unwrap().clone();
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_links = &last.links[..spur_idx];

            // Block the next link of every found path sharing this root.
            let mut avoid_links: Vec<LinkId> = Vec::new();
            for p in &found {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(&l) = p.links.get(spur_idx) {
                        avoid_links.push(l);
                    }
                }
            }
            // Block root nodes (except the spur node) for looplessness.
            let avoid_nodes: Vec<NodeId> =
                root_nodes[..spur_idx].to_vec();

            if let Some(spur) = shortest_path_avoiding(
                wan,
                spur_node,
                dst,
                &weight,
                &avoid_links,
                &avoid_nodes,
            ) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur.links);
                let root_weight: f64 = root_links.iter().map(|&l| weight(l)).sum();
                let total = Path { nodes, links, weight: root_weight + spur.weight };
                let duplicate = found.iter().chain(candidates.iter()).any(|p| p.links == total.links);
                if !duplicate {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| f64::total_cmp(&a.weight, &b.weight));
        found.push(candidates.remove(0));
    }
    found
}

/// Convenience: hop-count weight (every link costs 1).
pub fn hop_weight(_: LinkId) -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn shortest_by_hops_on_fig7() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let p = shortest_path(&wan, a, b, hop_weight).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.source(), a);
        assert_eq!(p.sink(), b);
        assert_eq!(p.weight, 1.0);
    }

    #[test]
    fn shortest_by_length_on_abilene() {
        let wan = builders::abilene();
        let sea = wan.node_by_name("SEA").unwrap();
        let nyc = wan.node_by_name("NYC").unwrap();
        let p = shortest_path(&wan, sea, nyc, |l| wan.link(l).length_km).unwrap();
        // SEA–DEN–KSC–IPL–CHI–NYC = 2113+970+818+294+1453 = 5648 km.
        assert!((p.weight - 5648.0).abs() < 1.0, "weight={}", p.weight);
        assert_eq!(p.len(), 5);
        // Path invariant: links[i] connects nodes[i], nodes[i+1].
        for (i, &l) in p.links.iter().enumerate() {
            let link = wan.link(l);
            let (x, y) = (p.nodes[i], p.nodes[i + 1]);
            assert!((link.a == x && link.b == y) || (link.a == y && link.b == x));
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut wan = crate::wan::WanTopology::new();
        let a = wan.add_node("A", None);
        let b = wan.add_node("B", None);
        assert!(shortest_path(&wan, a, b, hop_weight).is_none());
    }

    #[test]
    fn zero_hop_path() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let p = shortest_path(&wan, a, a, hop_weight).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.weight, 0.0);
    }

    #[test]
    fn infinite_weight_blocks_links() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        // Block the direct A–B link; the detour must be used.
        let direct = wan
            .links()
            .find(|(_, l)| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .unwrap()
            .0;
        let p = shortest_path(&wan, a, b, |l| if l == direct { f64::INFINITY } else { 1.0 })
            .unwrap();
        assert!(p.len() >= 2);
        assert!(!p.links.contains(&direct));
    }

    #[test]
    fn yen_k_shortest_on_fig7() {
        let wan = builders::fig7_example();
        let a = wan.node_by_name("A").unwrap();
        let b = wan.node_by_name("B").unwrap();
        let paths = k_shortest_paths(&wan, a, b, 3, hop_weight);
        // The Fig. 7 square has exactly two loopless A→B paths: the direct
        // hop and A-C-D-B.
        assert_eq!(paths.len(), 2);
        // Weights non-decreasing.
        assert!(paths.windows(2).all(|w| w[0].weight <= w[1].weight));
        // First is the direct hop; the other is the detour.
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 3);
        // All loopless.
        for p in &paths {
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
        // Distinct.
        assert_ne!(paths[0].links, paths[1].links);
    }

    #[test]
    fn yen_exhausts_small_graphs() {
        let wan = builders::ring(4, 100.0);
        let a = crate::graph::NodeId(0);
        let c = crate::graph::NodeId(2);
        // A 4-ring has exactly 2 loopless paths between opposite corners.
        let paths = k_shortest_paths(&wan, a, c, 10, hop_weight);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[1].len(), 2);
    }

    #[test]
    fn yen_on_abilene_agrees_with_dijkstra() {
        let wan = builders::abilene();
        let sea = wan.node_by_name("SEA").unwrap();
        let atl = wan.node_by_name("ATL").unwrap();
        let w = |l: LinkId| wan.link(l).length_km;
        let best = shortest_path(&wan, sea, atl, w).unwrap();
        let k = k_shortest_paths(&wan, sea, atl, 4, w);
        assert_eq!(k[0].links, best.links);
        assert_eq!(k.len(), 4);
        assert!(k.windows(2).all(|p| p[0].weight <= p[1].weight + 1e-9));
    }
}
