//! Random WAN generation over North-America-like geography.
//!
//! The paper's backbone spans North America. For scaling studies we
//! generate Waxman random graphs over a pool of real city coordinates:
//! sample `n` cities, guarantee connectivity with a Euclidean minimum
//! spanning tree, then add Waxman extra links
//! (`P(u,v) = α · exp(−d(u,v) / (β·L))`, `L` = max pairwise distance).

use crate::graph::NodeId;
use crate::wan::WanTopology;
use rwc_util::rng::Xoshiro256;

/// `(name, latitude, longitude)` of candidate PoP cities.
pub const NA_CITIES: [(&str, f64, f64); 24] = [
    ("SEA", 47.61, -122.33),
    ("PDX", 45.52, -122.68),
    ("SFO", 37.77, -122.42),
    ("LAX", 34.05, -118.24),
    ("SAN", 32.72, -117.16),
    ("PHX", 33.45, -112.07),
    ("LAS", 36.17, -115.14),
    ("SLC", 40.76, -111.89),
    ("DEN", 39.74, -104.99),
    ("ABQ", 35.08, -106.65),
    ("DFW", 32.78, -96.80),
    ("HOU", 29.76, -95.37),
    ("MSP", 44.98, -93.27),
    ("KSC", 39.10, -94.58),
    ("STL", 38.63, -90.20),
    ("CHI", 41.88, -87.63),
    ("IPL", 39.77, -86.16),
    ("ATL", 33.75, -84.39),
    ("MIA", 25.76, -80.19),
    ("CLT", 35.23, -80.84),
    ("WDC", 38.91, -77.04),
    ("PHL", 39.95, -75.17),
    ("NYC", 40.71, -74.01),
    ("BOS", 42.36, -71.06),
];

/// Great-circle distance between two `(lat, lon)` points, km.
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    const R: f64 = 6371.0;
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

/// Parameters of the Waxman generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanConfig {
    /// Number of sites (≤ [`NA_CITIES`] length).
    pub n_nodes: usize,
    /// Waxman α: overall link density, `0 < α ≤ 1`.
    pub alpha: f64,
    /// Waxman β: distance sensitivity, `0 < β ≤ 1` (larger = more long
    /// links).
    pub beta: f64,
    /// Fiber routes are longer than great circles; multiply by this.
    pub route_factor: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        Self { n_nodes: 12, alpha: 0.35, beta: 0.4, route_factor: 1.3, seed: 1 }
    }
}

/// Generates a connected Waxman WAN over sampled North-American cities.
pub fn waxman(config: &WaxmanConfig) -> WanTopology {
    assert!(config.n_nodes >= 2, "need at least two sites");
    assert!(config.n_nodes <= NA_CITIES.len(), "not enough candidate cities");
    assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha out of (0,1]");
    assert!(config.beta > 0.0 && config.beta <= 1.0, "beta out of (0,1]");
    assert!(config.route_factor >= 1.0, "routes cannot beat great circles");
    let mut rng = Xoshiro256::seed_from_u64(config.seed);

    // Sample distinct cities.
    let mut pool: Vec<usize> = (0..NA_CITIES.len()).collect();
    rng.shuffle(&mut pool);
    let chosen = &pool[..config.n_nodes];

    let mut wan = WanTopology::new();
    let ids: Vec<NodeId> = chosen
        .iter()
        .map(|&i| {
            let (name, lat, lon) = NA_CITIES[i];
            wan.add_node(name, Some((lat, lon)))
        })
        .collect();
    let pos = |i: usize| {
        let (_, lat, lon) = NA_CITIES[chosen[i]];
        (lat, lon)
    };
    let n = config.n_nodes;
    let dist =
        |i: usize, j: usize| haversine_km(pos(i), pos(j)) * config.route_factor;

    // Connectivity backbone: Prim's MST over route distances.
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut added: Vec<(usize, usize)> = Vec::new();
    for _ in 1..n {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !in_tree[i] {
                continue;
            }
            for (j, &jt) in in_tree.iter().enumerate().take(n) {
                if jt {
                    continue;
                }
                let d = dist(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("tree not spanning");
        in_tree[j] = true;
        added.push((i, j));
    }

    // Waxman extras.
    let max_d = {
        let mut m: f64 = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                m = m.max(dist(i, j));
            }
        }
        m
    };
    for i in 0..n {
        for j in i + 1..n {
            if added.contains(&(i, j)) || added.contains(&(j, i)) {
                continue;
            }
            let p = config.alpha * (-dist(i, j) / (config.beta * max_d)).exp();
            if rng.chance(p) {
                added.push((i, j));
            }
        }
    }

    for (i, j) in added {
        wan.add_link(ids[i], ids[j], dist(i, j).max(1.0));
    }
    wan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_pairs() {
        // SEA–NYC great circle ≈ 3,870 km.
        let sea = (47.61, -122.33);
        let nyc = (40.71, -74.01);
        let d = haversine_km(sea, nyc);
        assert!((d - 3870.0).abs() < 60.0, "d={d}");
        // Zero distance to self.
        assert!(haversine_km(sea, sea) < 1e-9);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let cfg = WaxmanConfig::default();
        let a = waxman(&cfg);
        let b = waxman(&cfg);
        assert_eq!(a, b);
        assert!(a.is_connected());
        assert_eq!(a.n_nodes(), 12);
        // MST guarantees at least n-1 links.
        assert!(a.n_links() >= 11);
    }

    #[test]
    fn different_seeds_differ() {
        let a = waxman(&WaxmanConfig::default());
        let b = waxman(&WaxmanConfig { seed: 2, ..WaxmanConfig::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn alpha_controls_density() {
        let sparse = waxman(&WaxmanConfig { alpha: 0.05, seed: 3, ..WaxmanConfig::default() });
        let dense = waxman(&WaxmanConfig { alpha: 0.95, beta: 0.9, seed: 3, ..WaxmanConfig::default() });
        assert!(dense.n_links() > sparse.n_links());
    }

    #[test]
    fn full_size_generation() {
        let wan = waxman(&WaxmanConfig { n_nodes: 24, seed: 4, ..WaxmanConfig::default() });
        assert_eq!(wan.n_nodes(), 24);
        assert!(wan.is_connected());
        // Link lengths inflated by the route factor but still plausible.
        for (_, l) in wan.links() {
            assert!(l.length_km > 0.0 && l.length_km < 8_000.0);
        }
    }

    #[test]
    #[should_panic]
    fn too_many_nodes_rejected() {
        waxman(&WaxmanConfig { n_nodes: 99, ..WaxmanConfig::default() });
    }
}
