//! The WAN model: sites, fiber cables and wavelength (IP) links.
//!
//! A [`WanTopology`] is a set of named sites joined by *undirected*
//! wavelength links (traffic engineering treats each direction separately;
//! [`WanTopology::to_graph`] expands every link into two directed edges).
//! Each link knows which fiber cable it rides, its length, its current
//! modulation (hence capacity) and its current SNR — everything the
//! run/walk/crawl controller needs to decide feasible rates.

use crate::graph::{Graph, NodeId};
use rwc_optics::{Modulation, ModulationTable};
use rwc_util::units::{Db, Gbps};
use serde::{Deserialize, Serialize};

/// Index of a link within a [`WanTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// A WAN site (PoP / datacenter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanNode {
    /// Site name ("SEA", "NYC", …).
    pub name: String,
    /// Optional geographic position `(latitude, longitude)` in degrees.
    pub location: Option<(f64, f64)>,
}

/// One wavelength = one IP link (undirected).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanLink {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Which fiber cable the wavelength rides.
    pub fiber_id: usize,
    /// Index of the wavelength on its cable.
    pub wavelength_index: usize,
    /// Route length in km.
    pub length_km: f64,
    /// Currently configured modulation (sets the IP-layer capacity).
    pub modulation: Modulation,
    /// Most recent SNR reading.
    pub snr: Db,
}

impl WanLink {
    /// Current IP-layer capacity.
    pub fn capacity(&self) -> Gbps {
        self.modulation.capacity()
    }

    /// Rungs above the current rate that the present SNR supports.
    pub fn upgrades(&self, table: &ModulationTable) -> Vec<Modulation> {
        table.upgrades(self.snr, self.modulation)
    }

    /// Whether the link's SNR still supports its configured rate.
    pub fn healthy(&self, table: &ModulationTable) -> bool {
        table.supports(self.snr, self.modulation)
    }

    /// The other endpoint, given one of them.
    pub fn opposite(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            assert_eq!(n, self.b, "node not on link");
            self.a
        }
    }
}

/// Payload of the directed expansion produced by [`WanTopology::to_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectedLink {
    /// The undirected link this edge came from.
    pub link: LinkId,
    /// Capacity in the edge's direction.
    pub capacity: Gbps,
}

/// A wide-area network topology.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WanTopology {
    nodes: Vec<WanNode>,
    links: Vec<WanLink>,
}

impl WanTopology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site.
    pub fn add_node(&mut self, name: impl Into<String>, location: Option<(f64, f64)>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(WanNode { name: name.into(), location });
        id
    }

    /// Adds a link at the 100 G default rate. SNR defaults to the
    /// link-budget estimate for the route length.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, length_km: f64) -> LinkId {
        assert!(a != b, "self-loop links are not WAN links");
        assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len(), "node out of range");
        assert!(length_km > 0.0, "link length must be positive");
        let snr = rwc_optics::LinkBudget::for_route_km(length_km).snr();
        let id = LinkId(self.links.len());
        self.links.push(WanLink {
            a,
            b,
            fiber_id: id.0, // one cable per link unless overridden
            wavelength_index: 0,
            length_km,
            modulation: Modulation::DpQpsk100,
            snr,
        });
        id
    }

    /// Number of sites.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Site payload.
    pub fn node(&self, id: NodeId) -> &WanNode {
        &self.nodes[id.0]
    }

    /// Looks a site up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Link record.
    pub fn link(&self, id: LinkId) -> &WanLink {
        &self.links[id.0]
    }

    /// Mutable link record.
    pub fn link_mut(&mut self, id: LinkId) -> &mut WanLink {
        &mut self.links[id.0]
    }

    /// `(LinkId, &WanLink)` iterator.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &WanLink)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Links incident to a node.
    pub fn incident(&self, n: NodeId) -> Vec<LinkId> {
        self.links()
            .filter(|(_, l)| l.a == n || l.b == n)
            .map(|(id, _)| id)
            .collect()
    }

    /// Updates a link's SNR reading.
    pub fn set_snr(&mut self, id: LinkId, snr: Db) {
        self.links[id.0].snr = snr;
    }

    /// Reconfigures a link's modulation.
    pub fn set_modulation(&mut self, id: LinkId, m: Modulation) {
        self.links[id.0].modulation = m;
    }

    /// Sum of link capacities.
    pub fn total_capacity(&self) -> Gbps {
        self.links.iter().map(WanLink::capacity).sum()
    }

    /// Expands to a directed multigraph: two directed edges per link.
    pub fn to_graph(&self) -> Graph<WanNode, DirectedLink> {
        let mut g = Graph::new();
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for (id, l) in self.links() {
            let payload = DirectedLink { link: id, capacity: l.capacity() };
            g.add_edge(l.a, l.b, payload);
            g.add_edge(l.b, l.a, payload);
        }
        g
    }

    /// True if the topology is one connected component.
    pub fn is_connected(&self) -> bool {
        self.to_graph().is_connected_undirected()
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serialisation cannot fail")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> (WanTopology, NodeId, NodeId, LinkId) {
        let mut wan = WanTopology::new();
        let a = wan.add_node("A", Some((47.6, -122.3)));
        let b = wan.add_node("B", None);
        let l = wan.add_link(a, b, 800.0);
        (wan, a, b, l)
    }

    #[test]
    fn construction() {
        let (wan, a, b, l) = two_node();
        assert_eq!(wan.n_nodes(), 2);
        assert_eq!(wan.n_links(), 1);
        assert_eq!(wan.node(a).name, "A");
        assert_eq!(wan.node_by_name("B"), Some(b));
        assert_eq!(wan.node_by_name("Z"), None);
        assert_eq!(wan.link(l).length_km, 800.0);
        assert_eq!(wan.link(l).modulation, Modulation::DpQpsk100);
        assert_eq!(wan.total_capacity(), Gbps(100.0));
    }

    #[test]
    fn default_snr_from_link_budget() {
        let (wan, _, _, l) = two_node();
        let expected = rwc_optics::LinkBudget::for_route_km(800.0).snr();
        assert_eq!(wan.link(l).snr, expected);
        // An 800 km route is healthy at 100 G.
        assert!(wan.link(l).healthy(&ModulationTable::paper_default()));
    }

    #[test]
    fn upgrades_follow_snr() {
        let (mut wan, _, _, l) = two_node();
        let table = ModulationTable::paper_default();
        wan.set_snr(l, Db(12.8));
        let ups = wan.link(l).upgrades(&table);
        assert_eq!(ups.len(), 4, "125/150/175/200 all feasible");
        wan.set_snr(l, Db(5.0));
        assert!(wan.link(l).upgrades(&table).is_empty());
        assert!(!wan.link(l).healthy(&table), "below the 100 G threshold");
    }

    #[test]
    fn modulation_change_updates_capacity() {
        let (mut wan, _, _, l) = two_node();
        wan.set_modulation(l, Modulation::Hybrid175);
        assert_eq!(wan.total_capacity(), Gbps(175.0));
    }

    #[test]
    fn directed_expansion() {
        let (wan, a, b, l) = two_node();
        let g = wan.to_graph();
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.n_edges(), 2);
        let forward = g.edges_between(a, b);
        let backward = g.edges_between(b, a);
        assert_eq!(forward.len(), 1);
        assert_eq!(backward.len(), 1);
        assert_eq!(g.edge(forward[0]).payload.link, l);
        assert_eq!(g.edge(forward[0]).payload.capacity, Gbps(100.0));
    }

    #[test]
    fn opposite_endpoint() {
        let (wan, a, b, l) = two_node();
        assert_eq!(wan.link(l).opposite(a), b);
        assert_eq!(wan.link(l).opposite(b), a);
    }

    #[test]
    #[should_panic]
    fn opposite_rejects_foreign_node() {
        let (mut wan, a, _, l) = two_node();
        let c = wan.add_node("C", None);
        let link = wan.link(l).clone();
        let _ = link.opposite(c);
        let _ = a;
    }

    #[test]
    fn incident_links() {
        let mut wan = WanTopology::new();
        let a = wan.add_node("A", None);
        let b = wan.add_node("B", None);
        let c = wan.add_node("C", None);
        let ab = wan.add_link(a, b, 100.0);
        let bc = wan.add_link(b, c, 100.0);
        assert_eq!(wan.incident(b), vec![ab, bc]);
        assert_eq!(wan.incident(a), vec![ab]);
    }

    #[test]
    fn connectivity() {
        let (wan, ..) = two_node();
        assert!(wan.is_connected());
        let mut disc = WanTopology::new();
        disc.add_node("X", None);
        disc.add_node("Y", None);
        assert!(!disc.is_connected());
    }

    #[test]
    fn json_round_trip() {
        let (wan, ..) = two_node();
        let json = wan.to_json();
        let back = WanTopology::from_json(&json).unwrap();
        assert_eq!(wan, back);
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop() {
        let mut wan = WanTopology::new();
        let a = wan.add_node("A", None);
        wan.add_link(a, a, 10.0);
    }
}
