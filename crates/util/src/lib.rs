//! # rwc-util
//!
//! Shared foundations for the `rwc` workspace (a reproduction of
//! *Run, Walk, Crawl: Towards Dynamic Link Capacities*, HotNets 2017).
//!
//! This crate deliberately has no heavy dependencies; it provides:
//!
//! - [`rng`]: deterministic, seedable PRNGs — the serial [`rng::Xoshiro256`]
//!   used by the legacy generation path, and the counter-based
//!   [`rng::CounterRng`] (Philox-2×64) whose sample *k* is a pure function of
//!   `(seed, stream, domain, k)`, enabling embarrassingly parallel batch
//!   generation — plus the sampling routines the simulators need (normal,
//!   lognormal, exponential, Poisson, Pareto). The stochastic SNR processes
//!   and failure generators must be bit-reproducible across machines and
//!   crate upgrades, so the generators and all distributions are implemented
//!   here rather than pulled from `rand_distr`.
//! - [`simd`]: vectorized bulk-sampling kernels (runtime-dispatched
//!   AVX2/SSE2 with a bit-identical scalar fallback) for the batch
//!   generation pipeline.
//! - [`time`]: a simulated clock. Nothing in the workspace reads wall-clock
//!   time; every experiment is replayable.
//! - [`units`]: strongly typed decibels ([`units::Db`]) and capacities
//!   ([`units::Gbps`]) so signal-quality math cannot silently mix linear and
//!   logarithmic quantities.
//! - [`stats`]: empirical CDFs, quantiles, histograms and summary statistics
//!   used by every figure reproduction.
//! - [`special`]: `erf`/`erfc`/Q-function used by the theoretical
//!   symbol-error-rate models in `rwc-optics`.

// `deny` rather than `forbid`: the SIMD kernels in [`simd`] need a scoped
// `#[allow(unsafe_code)]` for `core::arch` intrinsics (same policy as the
// counting allocator in `rwc-bench`). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod simd;
pub mod special;
pub mod stats;
pub mod time;
pub mod units;

pub use rng::{CounterRng, Xoshiro256};
pub use time::{SimDuration, SimTime};
pub use units::{Db, Gbps};
