//! # rwc-util
//!
//! Shared foundations for the `rwc` workspace (a reproduction of
//! *Run, Walk, Crawl: Towards Dynamic Link Capacities*, HotNets 2017).
//!
//! This crate deliberately has no heavy dependencies; it provides:
//!
//! - [`rng`]: a deterministic, seedable PRNG ([`rng::Xoshiro256`]) plus the
//!   sampling routines the simulators need (normal, lognormal, exponential,
//!   Poisson, Pareto). The stochastic SNR processes and failure generators
//!   must be bit-reproducible across machines and crate upgrades, so the
//!   generator and all distributions are implemented here rather than pulled
//!   from `rand_distr`.
//! - [`time`]: a simulated clock. Nothing in the workspace reads wall-clock
//!   time; every experiment is replayable.
//! - [`units`]: strongly typed decibels ([`units::Db`]) and capacities
//!   ([`units::Gbps`]) so signal-quality math cannot silently mix linear and
//!   logarithmic quantities.
//! - [`stats`]: empirical CDFs, quantiles, histograms and summary statistics
//!   used by every figure reproduction.
//! - [`special`]: `erf`/`erfc`/Q-function used by the theoretical
//!   symbol-error-rate models in `rwc-optics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod special;
pub mod stats;
pub mod time;
pub mod units;

pub use rng::Xoshiro256;
pub use time::{SimDuration, SimTime};
pub use units::{Db, Gbps};
