//! Deterministic random number generation and sampling.
//!
//! Everything stochastic in the workspace (SNR processes, failure tickets,
//! demand matrices, AWGN channels) draws from [`Xoshiro256`], a from-scratch
//! implementation of the xoshiro256** generator seeded through SplitMix64.
//! Implementing the generator and the distribution samplers locally — instead
//! of depending on `StdRng`/`rand_distr` — guarantees that a given seed
//! reproduces the *same* synthetic backbone forever, independent of upstream
//! algorithm changes. `rand::RngCore` is implemented so the generator remains
//! interoperable with the wider `rand` ecosystem (e.g. `SliceRandom`).

use rand::RngCore;

/// xoshiro256** 1.0 — a small, fast, high-quality PRNG.
///
/// State is seeded via SplitMix64 from a single `u64`, following the
/// reference implementation by Blackman & Vigna.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator from this one.
    ///
    /// Used to give each link / ticket / trial its own stream so that adding
    /// one more link does not perturb every other link's randomness.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(base)
    }

    /// The raw generator state, for checkpointing a stream mid-flight.
    ///
    /// A generator rebuilt via [`from_state`](Self::from_state) continues
    /// the stream exactly where this one stands.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`state`](Self::state) snapshot.
    ///
    /// The all-zero state is a fixed point of xoshiro256** (the stream
    /// would be constant zero), so it is rejected; every state captured
    /// from a seeded generator is non-zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping is fine here: simulation code
        // tolerates the ~2^-64 modulo bias, and determinism matters more.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample parameterised by the *underlying* normal's `mu` and
    /// `sigma` (i.e. the sample is `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal sample parameterised by the desired *median* and the
    /// multiplicative spread `sigma` (log-space standard deviation).
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "lognormal median must be positive");
        self.lognormal(median.ln(), sigma)
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Poisson sample with the given rate `lambda`.
    ///
    /// Uses Knuth's product method for small `lambda` and a normal
    /// approximation above 30 (rates in this workspace are small — events per
    /// link per observation window — so the approximation branch is rare).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson rate must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Pareto (type I) sample with scale `x_min` and shape `alpha`.
    ///
    /// Heavy-tailed; used for outage durations.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Picks an index according to the given (not necessarily normalised)
    /// non-negative weights. Panics if all weights are zero or the slice is
    /// empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index requires a positive total weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (Xoshiro256::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = Xoshiro256::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = Xoshiro256::seed_from_u64(7);
        let mut parent2 = Xoshiro256::seed_from_u64(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A different stream id gives a different child stream.
        let mut parent3 = Xoshiro256::seed_from_u64(7);
        let mut c3 = parent3.fork(4);
        let mut c1b = Xoshiro256::seed_from_u64(7).fork(3);
        assert_ne!(c3.next_u64(), c1b.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Xoshiro256::seed_from_u64(61);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Xoshiro256::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic]
    fn from_state_rejects_zero_state() {
        Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(19);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_rate() {
        let mut rng = Xoshiro256::seed_from_u64(29);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(2.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = Xoshiro256::seed_from_u64(37);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn lognormal_median_matches() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(60.0, 0.4)).collect();
        samples.sort_unstable_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 60.0).abs() < 1.5, "median={median}");
    }

    #[test]
    fn pareto_lower_bound() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(47);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio={ratio}");
    }

    #[test]
    #[should_panic]
    fn weighted_index_panics_on_zero_total() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        rng.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(53);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity shuffle");
    }

    #[test]
    fn rngcore_fill_bytes_deterministic() {
        use rand::RngCore;
        let mut a = Xoshiro256::seed_from_u64(59);
        let mut b = Xoshiro256::seed_from_u64(59);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}

// ---------------------------------------------------------------------------
// Counter-based generation (the batch path)
// ---------------------------------------------------------------------------

/// Philox-2×64 round multiplier (Salmon et al., *Parallel Random Numbers:
/// As Easy as 1, 2, 3*, SC'11).
pub(crate) const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Weyl key increment (the 64-bit golden ratio), per the same paper.
pub(crate) const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Round count. The reference implementation recommends 10 for Philox-2×64
/// (BigCrush passes from 6; 10 keeps the published safety margin).
pub(crate) const PHILOX_ROUNDS: u32 = 10;

/// A counter-based random generator: Philox-2×64-10 keyed by
/// `(seed, stream, domain)` and indexed by a 64-bit block counter.
///
/// Unlike [`Xoshiro256`], a `CounterRng` has **no mutable state**: block
/// `k` of a given key is a pure function, so any window of a stream can be
/// produced independently, in any order, on any thread — nothing needs to
/// be threaded, checkpointed or replayed. This is what makes batch SNR
/// generation embarrassingly parallel: sample `k` of link `j` is
/// `f(seed, j, domain, k)` and nothing else.
///
/// The uniform and normal accessors below are the *canonical scalar
/// definitions* of the batch sample stream; [`crate::simd`] provides
/// vectorized fills that are bit-identical to them (every operation is a
/// correctly-rounded IEEE-754 primitive evaluated in the same order, and
/// fused multiply-add is never used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    pub(crate) key: u64,
    pub(crate) ctr_hi: u64,
}

impl CounterRng {
    /// Keys a generator from `(seed, stream, domain)`.
    ///
    /// `stream` is typically a link id and `domain` a purpose tag; distinct
    /// tuples give statistically independent streams (the tuple is mixed
    /// through SplitMix64 into the Philox key and the counter's high word).
    pub fn keyed(seed: u64, stream: u64, domain: u64) -> Self {
        let mut state = seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(domain.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let key = splitmix64(&mut state);
        let ctr_hi = splitmix64(&mut state);
        Self { key, ctr_hi }
    }

    /// Derives an independent sub-stream (same seed material, new domain).
    pub fn derive(&self, salt: u64) -> Self {
        let mut state = self
            .key
            .wrapping_add(self.ctr_hi.rotate_left(32))
            .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let key = splitmix64(&mut state);
        let ctr_hi = splitmix64(&mut state);
        Self { key, ctr_hi }
    }

    /// The raw 128-bit Philox block at `counter`: a pure function of
    /// `(key, counter)` — calling it twice, in any order, on any thread,
    /// returns the same words.
    #[inline]
    pub fn block(&self, counter: u64) -> [u64; 2] {
        let mut x0 = counter;
        let mut x1 = self.ctr_hi;
        let mut key = self.key;
        for _ in 0..PHILOX_ROUNDS {
            let prod = (PHILOX_M as u128) * (x0 as u128);
            let (hi, lo) = ((prod >> 64) as u64, prod as u64);
            x0 = hi ^ key ^ x1;
            x1 = lo;
            key = key.wrapping_add(PHILOX_W);
        }
        [x0, x1]
    }

    /// Two uniforms in `[0, 1)` from block `counter` (52 mantissa bits via
    /// the exponent-splice trick, so the conversion vectorizes).
    #[inline]
    pub fn uniform_pair(&self, counter: u64) -> (f64, f64) {
        let [a, b] = self.block(counter);
        (unit_f64(a), unit_f64(b))
    }

    /// The canonical batch normal pair at `counter`: a pair-consuming
    /// Box–Muller over the block's two uniforms, `(r·cos, r·sin)`.
    ///
    /// Uses [`fast_ln`] / [`fast_sincos_turn`] (absolute error < 1e-8 on
    /// the resulting normals) so the vector paths in [`crate::simd`] can
    /// reproduce it bit-for-bit.
    #[inline]
    pub fn normal_pair(&self, counter: u64) -> (f64, f64) {
        let [a, b] = self.block(counter);
        // u1 ∈ (0, 1]: 2 − splice(a) is exact (both operands share the
        // [1, 2) binade), which keeps ln's argument away from zero.
        let u1 = 2.0 - f64::from_bits((a >> 12) | 0x3FF0_0000_0000_0000);
        let u2 = unit_f64(b);
        let r = (-2.0 * fast_ln(u1)).sqrt();
        let (s, c) = fast_sincos_turn(u2);
        (r * c, r * s)
    }

    /// Normal `index` of the stream: lane `index & 1` of pair `index >> 1`.
    #[inline]
    pub fn normal_at(&self, index: u64) -> f64 {
        let pair = self.normal_pair(index >> 1);
        if index & 1 == 0 { pair.0 } else { pair.1 }
    }
}

/// `[0, 1)` uniform from the top 52 bits of a random word: splice the bits
/// into the mantissa of a `[1, 2)` double and subtract 1. Unlike a
/// `u64 → f64` convert this is two integer ops plus one exact subtraction,
/// so it vectorizes on every SIMD ISA.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    f64::from_bits((bits >> 12) | 0x3FF0_0000_0000_0000) - 1.0
}

/// Natural log for finite positive inputs, accurate to ~1e-11 relative.
///
/// Branch-free polynomial form (exponent extracted by bit-splicing, the
/// `m > √2` adjustment done with an arithmetic select) so the SIMD paths
/// can mirror it operation-for-operation. **Not** a general `ln`: no
/// handling of zero, negatives, infinities, NaN or subnormals — callers
/// feed it uniforms from `(0, 1]`.
#[inline]
pub(crate) fn fast_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    // Biased exponent to f64 without an int→float convert: splice it into
    // the mantissa of 2^52, subtract (2^52 + bias).
    let e_raw =
        f64::from_bits(0x4330_0000_0000_0000 | (bits >> 52)) - (4_503_599_627_370_496.0 + 1023.0);
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Halve mantissas above √2 so t below stays in [−0.1716, 0.1716].
    let adj = if m > std::f64::consts::SQRT_2 { 1.0 } else { 0.0 };
    let e = e_raw + adj;
    let m = m * (1.0 - 0.5 * adj);
    // atanh form: ln m = 2 atanh t, t = (m−1)/(m+1); odd series in t.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut p = 2.0 / 11.0;
    p = p * t2 + 2.0 / 9.0;
    p = p * t2 + 2.0 / 7.0;
    p = p * t2 + 2.0 / 5.0;
    p = p * t2 + 2.0 / 3.0;
    p = p * t2 + 2.0;
    e * std::f64::consts::LN_2 + t * p
}

/// Round-to-nearest-integer constant: adding and subtracting 1.5·2^52
/// forces a f64 in (−2^51, 2^51) to the nearest integer in the rounding
/// step, with no float→int→float round trip.
pub(crate) const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// `(sin 2πu, cos 2πu)` for `u ∈ [0, 1)`, absolute error < 1e-8.
///
/// Quarter-turn range reduction with a float-only parity select
/// (`k·(2−k)` is the parity of `k ∈ {0, 1, 2}`), then odd/even Taylor
/// polynomials on `|φ| ≤ π/2` — fully branch-free so the SIMD paths can
/// mirror it bit-for-bit.
#[inline]
pub(crate) fn fast_sincos_turn(u: f64) -> (f64, f64) {
    let k2 = (2.0 * u + ROUND_MAGIC) - ROUND_MAGIC; // rint(2u) ∈ {0, 1, 2}
    let w = u - 0.5 * k2; // |w| ≤ 0.25 turn
    let phi = std::f64::consts::TAU * w; // |φ| ≤ π/2
    let z = phi * phi;
    let mut s = 1.0 / 6_227_020_800.0; // 1/13!
    s = s * z - 1.0 / 39_916_800.0;
    s = s * z + 1.0 / 362_880.0;
    s = s * z - 1.0 / 5_040.0;
    s = s * z + 1.0 / 120.0;
    s = s * z - 1.0 / 6.0;
    s = s * z + 1.0;
    let s = phi * s;
    let mut c = 1.0 / 479_001_600.0; // 1/12!
    c = c * z - 1.0 / 3_628_800.0;
    c = c * z + 1.0 / 40_320.0;
    c = c * z - 1.0 / 720.0;
    c = c * z + 1.0 / 24.0;
    c = c * z - 0.5;
    c = c * z + 1.0;
    // sin(φ + kπ) = ±sin φ, cos(φ + kπ) = ±cos φ, same sign, by k's parity.
    let sign = 1.0 - 2.0 * (k2 * (2.0 - k2));
    (sign * s, sign * c)
}

#[cfg(test)]
mod counter_tests {
    use super::*;

    #[test]
    fn same_key_same_block() {
        let a = CounterRng::keyed(7, 3, 1);
        let b = CounterRng::keyed(7, 3, 1);
        for k in [0u64, 1, 2, 1_000_000, u64::MAX] {
            assert_eq!(a.block(k), b.block(k));
        }
    }

    #[test]
    fn counter_access_is_pure_and_order_independent() {
        let rng = CounterRng::keyed(42, 11, 2);
        let forward: Vec<[u64; 2]> = (0..64).map(|k| rng.block(k)).collect();
        let backward: Vec<[u64; 2]> = (0..64).rev().map(|k| rng.block(k)).collect();
        for (k, blk) in forward.iter().enumerate() {
            assert_eq!(*blk, backward[63 - k]);
            assert_eq!(*blk, rng.block(k as u64), "revisit must reproduce");
        }
    }

    #[test]
    fn distinct_tuples_give_distinct_streams() {
        let base = CounterRng::keyed(1, 2, 3);
        for other in [
            CounterRng::keyed(2, 2, 3),
            CounterRng::keyed(1, 3, 3),
            CounterRng::keyed(1, 2, 4),
            base.derive(1),
            base.derive(2),
        ] {
            assert_ne!(base.block(0), other.block(0));
            assert_ne!(base.block(1), other.block(1));
        }
    }

    #[test]
    fn derive_is_deterministic_and_salt_sensitive() {
        let rng = CounterRng::keyed(9, 9, 9);
        assert_eq!(rng.derive(5), rng.derive(5));
        assert_ne!(rng.derive(5), rng.derive(6));
    }

    #[test]
    fn uniform_pair_in_unit_interval_with_half_mean() {
        let rng = CounterRng::keyed(5, 0, 0);
        let mut sum = 0.0;
        let n = 200_000u64;
        for k in 0..n {
            let (a, b) = rng.uniform_pair(k);
            assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
            sum += a + b;
        }
        let mean = sum / (2 * n) as f64;
        assert!((mean - 0.5).abs() < 2e-3, "mean {mean}");
    }

    #[test]
    fn normal_pair_moments() {
        let rng = CounterRng::keyed(17, 4, 1);
        let (mut sum, mut sum2, mut sum3, mut sum4) = (0.0, 0.0, 0.0, 0.0);
        let pairs = 500_000u64;
        for k in 0..pairs {
            let (a, b) = rng.normal_pair(k);
            for x in [a, b] {
                sum += x;
                sum2 += x * x;
                sum3 += x * x * x;
                sum4 += x * x * x * x;
            }
        }
        let n = (2 * pairs) as f64;
        let mean = sum / n;
        let var = sum2 / n - mean * mean;
        assert!(mean.abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 5e-3, "var {var}");
        assert!((sum3 / n).abs() < 2e-2, "skew {}", sum3 / n);
        assert!((sum4 / n - 3.0).abs() < 5e-2, "kurtosis {}", sum4 / n);
    }

    #[test]
    fn normal_at_selects_pair_lanes() {
        let rng = CounterRng::keyed(3, 3, 3);
        for k in 0..32u64 {
            let (a, b) = rng.normal_pair(k);
            assert_eq!(rng.normal_at(2 * k), a);
            assert_eq!(rng.normal_at(2 * k + 1), b);
        }
    }

    #[test]
    fn fast_ln_matches_std_on_unit_interval() {
        let rng = CounterRng::keyed(23, 0, 0);
        let mut worst = 0.0f64;
        for k in 0..200_000u64 {
            let (u, _) = rng.uniform_pair(k);
            let x = 1.0 - u; // (0, 1]
            worst = worst.max((fast_ln(x) - x.ln()).abs());
        }
        for x in [f64::MIN_POSITIVE, 2f64.powi(-52), 0.5, 1.0 - 1e-15, 1.0] {
            worst = worst.max((fast_ln(x) - x.ln()).abs());
        }
        assert!(worst < 1e-9, "worst abs error {worst:e}");
    }

    #[test]
    fn fast_sincos_matches_std_on_unit_interval() {
        let rng = CounterRng::keyed(29, 0, 0);
        let mut worst = 0.0f64;
        let mut check = |u: f64| {
            let (s, c) = fast_sincos_turn(u);
            let (s2, c2) = (std::f64::consts::TAU * u).sin_cos();
            worst = worst.max((s - s2).abs().max((c - c2).abs()));
        };
        for k in 0..200_000u64 {
            check(rng.uniform_pair(k).1);
        }
        for u in [0.0, 0.25, 0.5, 0.75, 0.249_999_999_9, 0.750_000_000_1, 1.0 - 1e-16] {
            check(u);
        }
        assert!(worst < 1e-8, "worst abs error {worst:e}");
    }

    #[test]
    fn philox_avalanche_between_adjacent_counters() {
        // Adjacent counters must differ in roughly half the output bits.
        let rng = CounterRng::keyed(101, 7, 0);
        let mut total = 0u32;
        let trials = 1024u64;
        for k in 0..trials {
            let a = rng.block(k);
            let b = rng.block(k + 1);
            total += (a[0] ^ b[0]).count_ones() + (a[1] ^ b[1]).count_ones();
        }
        let mean_flips = total as f64 / trials as f64;
        assert!((mean_flips - 64.0).abs() < 3.0, "mean flips {mean_flips}");
    }
}
