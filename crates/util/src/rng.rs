//! Deterministic random number generation and sampling.
//!
//! Everything stochastic in the workspace (SNR processes, failure tickets,
//! demand matrices, AWGN channels) draws from [`Xoshiro256`], a from-scratch
//! implementation of the xoshiro256** generator seeded through SplitMix64.
//! Implementing the generator and the distribution samplers locally — instead
//! of depending on `StdRng`/`rand_distr` — guarantees that a given seed
//! reproduces the *same* synthetic backbone forever, independent of upstream
//! algorithm changes. `rand::RngCore` is implemented so the generator remains
//! interoperable with the wider `rand` ecosystem (e.g. `SliceRandom`).

use rand::RngCore;

/// xoshiro256** 1.0 — a small, fast, high-quality PRNG.
///
/// State is seeded via SplitMix64 from a single `u64`, following the
/// reference implementation by Blackman & Vigna.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator from this one.
    ///
    /// Used to give each link / ticket / trial its own stream so that adding
    /// one more link does not perturb every other link's randomness.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(base)
    }

    /// The raw generator state, for checkpointing a stream mid-flight.
    ///
    /// A generator rebuilt via [`from_state`](Self::from_state) continues
    /// the stream exactly where this one stands.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`state`](Self::state) snapshot.
    ///
    /// The all-zero state is a fixed point of xoshiro256** (the stream
    /// would be constant zero), so it is rejected; every state captured
    /// from a seeded generator is non-zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping is fine here: simulation code
        // tolerates the ~2^-64 modulo bias, and determinism matters more.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample parameterised by the *underlying* normal's `mu` and
    /// `sigma` (i.e. the sample is `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal sample parameterised by the desired *median* and the
    /// multiplicative spread `sigma` (log-space standard deviation).
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "lognormal median must be positive");
        self.lognormal(median.ln(), sigma)
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Poisson sample with the given rate `lambda`.
    ///
    /// Uses Knuth's product method for small `lambda` and a normal
    /// approximation above 30 (rates in this workspace are small — events per
    /// link per observation window — so the approximation branch is rare).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson rate must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Pareto (type I) sample with scale `x_min` and shape `alpha`.
    ///
    /// Heavy-tailed; used for outage durations.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Picks an index according to the given (not necessarily normalised)
    /// non-negative weights. Panics if all weights are zero or the slice is
    /// empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index requires a positive total weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (Xoshiro256::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = Xoshiro256::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = Xoshiro256::seed_from_u64(7);
        let mut parent2 = Xoshiro256::seed_from_u64(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A different stream id gives a different child stream.
        let mut parent3 = Xoshiro256::seed_from_u64(7);
        let mut c3 = parent3.fork(4);
        let mut c1b = Xoshiro256::seed_from_u64(7).fork(3);
        assert_ne!(c3.next_u64(), c1b.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Xoshiro256::seed_from_u64(61);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Xoshiro256::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic]
    fn from_state_rejects_zero_state() {
        Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(19);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_rate() {
        let mut rng = Xoshiro256::seed_from_u64(29);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(2.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = Xoshiro256::seed_from_u64(37);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn lognormal_median_matches() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(60.0, 0.4)).collect();
        samples.sort_unstable_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 60.0).abs() < 1.5, "median={median}");
    }

    #[test]
    fn pareto_lower_bound() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(47);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio={ratio}");
    }

    #[test]
    #[should_panic]
    fn weighted_index_panics_on_zero_total() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        rng.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(53);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity shuffle");
    }

    #[test]
    fn rngcore_fill_bytes_deterministic() {
        use rand::RngCore;
        let mut a = Xoshiro256::seed_from_u64(59);
        let mut b = Xoshiro256::seed_from_u64(59);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
