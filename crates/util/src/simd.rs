//! Vectorized batch sampling kernels.
//!
//! [`fill_normal_pairs`] materialises a contiguous run of
//! [`CounterRng`](crate::rng::CounterRng) Box–Muller pairs into a caller
//! buffer. The output is **bit-identical on every path** — AVX2, SSE2 and
//! the plain scalar fallback — because each lane evaluates exactly the same
//! sequence of correctly-rounded IEEE-754 operations as
//! [`CounterRng::normal_pair`](crate::rng::CounterRng::normal_pair):
//! the same polynomial, in the same order, with no fused multiply-add and
//! no reassociation. The SIMD paths are therefore a pure throughput
//! optimisation; determinism and cross-machine reproducibility are decided
//! by the scalar definition alone.
//!
//! `unsafe` policy: this is the one module in `rwc-util` allowed to use
//! `unsafe` (mirroring the counting allocator in `rwc-bench`). It is
//! confined to `core::arch` intrinsic calls plus two raw-pointer stores
//! into a bounds-checked output slice; everything is testable against the
//! safe scalar path, and [`simd_tests`] asserts bitwise equality on every
//! path the host supports.

use crate::rng::{CounterRng, PHILOX_M, PHILOX_ROUNDS, PHILOX_W};

/// Fills `out` (an even-length slice) with consecutive Box–Muller pairs:
/// `out[2i] = pair(first_pair + i).0`, `out[2i + 1] = pair(first_pair + i).1`.
///
/// Dispatches to the widest SIMD path the host supports; the result does
/// not depend on the path taken.
pub fn fill_normal_pairs(rng: &CounterRng, first_pair: u64, out: &mut [f64]) {
    assert_eq!(out.len() % 2, 0, "normal pairs come two samples at a time");
    #[cfg(target_arch = "x86_64")]
    {
        x86::fill_dispatch(rng, first_pair, out);
    }
    #[cfg(not(target_arch = "x86_64"))]
    fill_scalar(rng, first_pair, out);
}

/// The canonical scalar fill: one [`CounterRng::normal_pair`] per slot.
/// Reference implementation for the SIMD paths and non-x86 fallback.
pub fn fill_scalar(rng: &CounterRng, first_pair: u64, out: &mut [f64]) {
    assert_eq!(out.len() % 2, 0, "normal pairs come two samples at a time");
    for (i, slot) in out.chunks_exact_mut(2).enumerate() {
        let (a, b) = rng.normal_pair(first_pair + i as u64);
        slot[0] = a;
        slot[1] = b;
    }
}

/// Four Philox-2×64 blocks with interleaved rounds: the serial multiply
/// chain of one block hides behind the other three, which roughly triples
/// scalar throughput. Bit-identical to four [`CounterRng::block`] calls.
#[inline(always)]
fn philox4(ctr0: u64, ctr_hi: u64, seed_key: u64) -> [[u64; 2]; 4] {
    let mut x = [ctr0, ctr0 + 1, ctr0 + 2, ctr0 + 3];
    let mut y = [ctr_hi; 4];
    let mut key = seed_key;
    for _ in 0..PHILOX_ROUNDS {
        for lane in 0..4 {
            let prod = (PHILOX_M as u128) * (x[lane] as u128);
            let (hi, lo) = ((prod >> 64) as u64, prod as u64);
            x[lane] = hi ^ key ^ y[lane];
            y[lane] = lo;
        }
        key = key.wrapping_add(PHILOX_W);
    }
    [[x[0], y[0]], [x[1], y[1]], [x[2], y[2]], [x[3], y[3]]]
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{philox4, CounterRng};
    use core::arch::x86_64::*;

    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
    const EXP_SPLICE: i64 = 0x4330_0000_0000_0000;
    const MANTISSA: i64 = 0x000F_FFFF_FFFF_FFFF_u64 as i64;
    const EXP_BIAS: f64 = 4_503_599_627_370_496.0 + 1023.0;
    const ROUND_MAGIC: f64 = crate::rng::ROUND_MAGIC;

    /// Picks the widest available path: AVX2 if the host has it, else SSE2
    /// (unconditional on x86_64).
    pub(super) fn fill_dispatch(rng: &CounterRng, first_pair: u64, out: &mut [f64]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { fill_avx2(rng, first_pair, out) };
        } else {
            fill_sse2(rng, first_pair, out);
        }
    }

    /// SSE2 path (baseline on x86_64): two Box–Muller pairs per vector.
    pub(super) fn fill_sse2(rng: &CounterRng, first_pair: u64, out: &mut [f64]) {
        let n_pairs = out.len() / 2;
        let main = n_pairs & !3;
        let (key, ctr_hi) = (rng.key, rng.ctr_hi);
        for i in (0..main).step_by(4) {
            let blocks = philox4(first_pair + i as u64, ctr_hi, key);
            // SAFETY: `i + 3 < n_pairs`, so slots `2i .. 2i + 8` are in
            // bounds; `bm2` writes exactly four f64 from `dst`.
            unsafe {
                let dst = out.as_mut_ptr().add(2 * i);
                bm2(blocks[0], blocks[1], dst);
                bm2(blocks[2], blocks[3], dst.add(4));
            }
        }
        super::fill_scalar(rng, first_pair + main as u64, &mut out[2 * main..]);
    }

    /// Two pairs (four samples) of Box–Muller via 2-lane SSE2.
    ///
    /// SAFETY contract: `dst` must be valid for four consecutive writes.
    #[inline(always)]
    unsafe fn bm2(blk0: [u64; 2], blk1: [u64; 2], dst: *mut f64) {
        // SAFETY: SSE2 is unconditionally available on x86_64; the only
        // memory access is the two stores through `dst` (caller contract).
        unsafe {
            let ubits = _mm_set_epi64x(
                ((blk1[0] >> 12) | ONE_BITS) as i64,
                ((blk0[0] >> 12) | ONE_BITS) as i64,
            );
            let vbits = _mm_set_epi64x(
                ((blk1[1] >> 12) | ONE_BITS) as i64,
                ((blk0[1] >> 12) | ONE_BITS) as i64,
            );
            // u1 = 2 − splice ∈ (0, 1]; u2 = splice − 1 ∈ [0, 1).
            let u1 = _mm_sub_pd(_mm_set1_pd(2.0), _mm_castsi128_pd(ubits));
            let u2 = _mm_sub_pd(_mm_castsi128_pd(vbits), _mm_set1_pd(1.0));
            // ln(u1), mirroring rng::fast_ln.
            let bits = _mm_castpd_si128(u1);
            let e_raw = _mm_sub_pd(
                _mm_castsi128_pd(_mm_or_si128(
                    _mm_srli_epi64(bits, 52),
                    _mm_set1_epi64x(EXP_SPLICE),
                )),
                _mm_set1_pd(EXP_BIAS),
            );
            let m = _mm_castsi128_pd(_mm_or_si128(
                _mm_and_si128(bits, _mm_set1_epi64x(MANTISSA)),
                _mm_set1_epi64x(ONE_BITS as i64),
            ));
            let mask = _mm_cmpgt_pd(m, _mm_set1_pd(std::f64::consts::SQRT_2));
            let adj = _mm_and_pd(mask, _mm_set1_pd(1.0));
            let e = _mm_add_pd(e_raw, adj);
            let m = _mm_mul_pd(
                m,
                _mm_sub_pd(_mm_set1_pd(1.0), _mm_mul_pd(_mm_set1_pd(0.5), adj)),
            );
            let one = _mm_set1_pd(1.0);
            let t = _mm_div_pd(_mm_sub_pd(m, one), _mm_add_pd(m, one));
            let t2 = _mm_mul_pd(t, t);
            let mut p = _mm_set1_pd(2.0 / 11.0);
            p = _mm_add_pd(_mm_mul_pd(p, t2), _mm_set1_pd(2.0 / 9.0));
            p = _mm_add_pd(_mm_mul_pd(p, t2), _mm_set1_pd(2.0 / 7.0));
            p = _mm_add_pd(_mm_mul_pd(p, t2), _mm_set1_pd(2.0 / 5.0));
            p = _mm_add_pd(_mm_mul_pd(p, t2), _mm_set1_pd(2.0 / 3.0));
            p = _mm_add_pd(_mm_mul_pd(p, t2), _mm_set1_pd(2.0));
            let lnv = _mm_add_pd(
                _mm_mul_pd(e, _mm_set1_pd(std::f64::consts::LN_2)),
                _mm_mul_pd(t, p),
            );
            let r = _mm_sqrt_pd(_mm_mul_pd(_mm_set1_pd(-2.0), lnv));
            // (sin, cos) of 2π·u2, mirroring rng::fast_sincos_turn.
            let magic = _mm_set1_pd(ROUND_MAGIC);
            let k2 = _mm_sub_pd(_mm_add_pd(_mm_add_pd(u2, u2), magic), magic);
            let w = _mm_sub_pd(u2, _mm_mul_pd(_mm_set1_pd(0.5), k2));
            let phi = _mm_mul_pd(_mm_set1_pd(std::f64::consts::TAU), w);
            let z = _mm_mul_pd(phi, phi);
            let mut s = _mm_set1_pd(1.0 / 6_227_020_800.0);
            s = _mm_sub_pd(_mm_mul_pd(s, z), _mm_set1_pd(1.0 / 39_916_800.0));
            s = _mm_add_pd(_mm_mul_pd(s, z), _mm_set1_pd(1.0 / 362_880.0));
            s = _mm_sub_pd(_mm_mul_pd(s, z), _mm_set1_pd(1.0 / 5_040.0));
            s = _mm_add_pd(_mm_mul_pd(s, z), _mm_set1_pd(1.0 / 120.0));
            s = _mm_sub_pd(_mm_mul_pd(s, z), _mm_set1_pd(1.0 / 6.0));
            s = _mm_add_pd(_mm_mul_pd(s, z), one);
            let s = _mm_mul_pd(phi, s);
            let mut c = _mm_set1_pd(1.0 / 479_001_600.0);
            c = _mm_sub_pd(_mm_mul_pd(c, z), _mm_set1_pd(1.0 / 3_628_800.0));
            c = _mm_add_pd(_mm_mul_pd(c, z), _mm_set1_pd(1.0 / 40_320.0));
            c = _mm_sub_pd(_mm_mul_pd(c, z), _mm_set1_pd(1.0 / 720.0));
            c = _mm_add_pd(_mm_mul_pd(c, z), _mm_set1_pd(1.0 / 24.0));
            c = _mm_sub_pd(_mm_mul_pd(c, z), _mm_set1_pd(0.5));
            c = _mm_add_pd(_mm_mul_pd(c, z), one);
            let two = _mm_set1_pd(2.0);
            let sign = _mm_sub_pd(one, _mm_mul_pd(two, _mm_mul_pd(k2, _mm_sub_pd(two, k2))));
            let rc = _mm_mul_pd(r, _mm_mul_pd(sign, c));
            let rs = _mm_mul_pd(r, _mm_mul_pd(sign, s));
            _mm_storeu_pd(dst, _mm_unpacklo_pd(rc, rs));
            _mm_storeu_pd(dst.add(2), _mm_unpackhi_pd(rc, rs));
        }
    }

    /// AVX2 path: four Box–Muller pairs per vector.
    ///
    /// SAFETY contract: the caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn fill_avx2(rng: &CounterRng, first_pair: u64, out: &mut [f64]) {
        let n_pairs = out.len() / 2;
        let main = n_pairs & !3;
        let (key, ctr_hi) = (rng.key, rng.ctr_hi);
        // SAFETY: AVX2 is enabled for this fn (caller-verified); stores go
        // through `dst` at offsets `2i .. 2i + 8` with `i + 3 < n_pairs`.
        unsafe {
            let one = _mm256_set1_pd(1.0);
            let two = _mm256_set1_pd(2.0);
            for i in (0..main).step_by(4) {
                let bl = philox4(first_pair + i as u64, ctr_hi, key);
                let ubits = _mm256_set_epi64x(
                    ((bl[3][0] >> 12) | ONE_BITS) as i64,
                    ((bl[2][0] >> 12) | ONE_BITS) as i64,
                    ((bl[1][0] >> 12) | ONE_BITS) as i64,
                    ((bl[0][0] >> 12) | ONE_BITS) as i64,
                );
                let vbits = _mm256_set_epi64x(
                    ((bl[3][1] >> 12) | ONE_BITS) as i64,
                    ((bl[2][1] >> 12) | ONE_BITS) as i64,
                    ((bl[1][1] >> 12) | ONE_BITS) as i64,
                    ((bl[0][1] >> 12) | ONE_BITS) as i64,
                );
                let u1 = _mm256_sub_pd(two, _mm256_castsi256_pd(ubits));
                let u2 = _mm256_sub_pd(_mm256_castsi256_pd(vbits), one);
                let bits = _mm256_castpd_si256(u1);
                let e_raw = _mm256_sub_pd(
                    _mm256_castsi256_pd(_mm256_or_si256(
                        _mm256_srli_epi64(bits, 52),
                        _mm256_set1_epi64x(EXP_SPLICE),
                    )),
                    _mm256_set1_pd(EXP_BIAS),
                );
                let m = _mm256_castsi256_pd(_mm256_or_si256(
                    _mm256_and_si256(bits, _mm256_set1_epi64x(MANTISSA)),
                    _mm256_set1_epi64x(ONE_BITS as i64),
                ));
                let mask = _mm256_cmp_pd(m, _mm256_set1_pd(std::f64::consts::SQRT_2), _CMP_GT_OQ);
                let adj = _mm256_and_pd(mask, one);
                let e = _mm256_add_pd(e_raw, adj);
                let m = _mm256_mul_pd(
                    m,
                    _mm256_sub_pd(one, _mm256_mul_pd(_mm256_set1_pd(0.5), adj)),
                );
                let t = _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
                let t2 = _mm256_mul_pd(t, t);
                let mut p = _mm256_set1_pd(2.0 / 11.0);
                p = _mm256_add_pd(_mm256_mul_pd(p, t2), _mm256_set1_pd(2.0 / 9.0));
                p = _mm256_add_pd(_mm256_mul_pd(p, t2), _mm256_set1_pd(2.0 / 7.0));
                p = _mm256_add_pd(_mm256_mul_pd(p, t2), _mm256_set1_pd(2.0 / 5.0));
                p = _mm256_add_pd(_mm256_mul_pd(p, t2), _mm256_set1_pd(2.0 / 3.0));
                p = _mm256_add_pd(_mm256_mul_pd(p, t2), two);
                let lnv = _mm256_add_pd(
                    _mm256_mul_pd(e, _mm256_set1_pd(std::f64::consts::LN_2)),
                    _mm256_mul_pd(t, p),
                );
                let r = _mm256_sqrt_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), lnv));
                let magic = _mm256_set1_pd(ROUND_MAGIC);
                let k2 = _mm256_sub_pd(_mm256_add_pd(_mm256_add_pd(u2, u2), magic), magic);
                let w = _mm256_sub_pd(u2, _mm256_mul_pd(_mm256_set1_pd(0.5), k2));
                let phi = _mm256_mul_pd(_mm256_set1_pd(std::f64::consts::TAU), w);
                let z = _mm256_mul_pd(phi, phi);
                let mut s = _mm256_set1_pd(1.0 / 6_227_020_800.0);
                s = _mm256_sub_pd(_mm256_mul_pd(s, z), _mm256_set1_pd(1.0 / 39_916_800.0));
                s = _mm256_add_pd(_mm256_mul_pd(s, z), _mm256_set1_pd(1.0 / 362_880.0));
                s = _mm256_sub_pd(_mm256_mul_pd(s, z), _mm256_set1_pd(1.0 / 5_040.0));
                s = _mm256_add_pd(_mm256_mul_pd(s, z), _mm256_set1_pd(1.0 / 120.0));
                s = _mm256_sub_pd(_mm256_mul_pd(s, z), _mm256_set1_pd(1.0 / 6.0));
                s = _mm256_add_pd(_mm256_mul_pd(s, z), one);
                let s = _mm256_mul_pd(phi, s);
                let mut c = _mm256_set1_pd(1.0 / 479_001_600.0);
                c = _mm256_sub_pd(_mm256_mul_pd(c, z), _mm256_set1_pd(1.0 / 3_628_800.0));
                c = _mm256_add_pd(_mm256_mul_pd(c, z), _mm256_set1_pd(1.0 / 40_320.0));
                c = _mm256_sub_pd(_mm256_mul_pd(c, z), _mm256_set1_pd(1.0 / 720.0));
                c = _mm256_add_pd(_mm256_mul_pd(c, z), _mm256_set1_pd(1.0 / 24.0));
                c = _mm256_sub_pd(_mm256_mul_pd(c, z), _mm256_set1_pd(0.5));
                c = _mm256_add_pd(_mm256_mul_pd(c, z), one);
                let sign =
                    _mm256_sub_pd(one, _mm256_mul_pd(two, _mm256_mul_pd(k2, _mm256_sub_pd(two, k2))));
                let rc = _mm256_mul_pd(r, _mm256_mul_pd(sign, c));
                let rs = _mm256_mul_pd(r, _mm256_mul_pd(sign, s));
                // Interleave lanes to (rc0, rs0, rc1, rs1, rc2, rs2, rc3, rs3).
                let lo = _mm256_unpacklo_pd(rc, rs);
                let hi = _mm256_unpackhi_pd(rc, rs);
                let dst = out.as_mut_ptr().add(2 * i);
                _mm256_storeu_pd(dst, _mm256_permute2f128_pd(lo, hi, 0x20));
                _mm256_storeu_pd(dst.add(4), _mm256_permute2f128_pd(lo, hi, 0x31));
            }
        }
        super::fill_scalar(rng, first_pair + main as u64, &mut out[2 * main..]);
    }
}

#[cfg(test)]
mod simd_tests {
    use super::*;

    fn reference(rng: &CounterRng, first_pair: u64, n_pairs: usize) -> Vec<u64> {
        let mut out = vec![0.0; 2 * n_pairs];
        fill_scalar(rng, first_pair, &mut out);
        out.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn dispatched_fill_matches_scalar_bitwise() {
        for (seed, stream, first) in [(1u64, 0u64, 0u64), (42, 13, 7), (9, 2, 1 << 40)] {
            let rng = CounterRng::keyed(seed, stream, 5);
            // Odd pair counts exercise the tail path.
            for n_pairs in [1usize, 2, 3, 4, 5, 8, 127, 4096] {
                let mut out = vec![0.0; 2 * n_pairs];
                fill_normal_pairs(&rng, first, &mut out);
                let got: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, reference(&rng, first, n_pairs), "n_pairs {n_pairs}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_path_matches_scalar_bitwise() {
        let rng = CounterRng::keyed(77, 5, 5);
        let mut out = vec![0.0; 2 * 1027];
        x86::fill_sse2(&rng, 123, &mut out);
        let got: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, reference(&rng, 123, 1027));
    }

    #[test]
    fn fill_is_windowable() {
        // Filling [0, 2n) in one go equals filling [0, n) and [n, 2n).
        let rng = CounterRng::keyed(3, 3, 3);
        let mut whole = vec![0.0; 4 * 100];
        fill_normal_pairs(&rng, 0, &mut whole);
        let mut first = vec![0.0; 2 * 100];
        let mut second = vec![0.0; 2 * 100];
        fill_normal_pairs(&rng, 0, &mut first);
        fill_normal_pairs(&rng, 100, &mut second);
        let recombined: Vec<f64> = first.into_iter().chain(second).collect();
        assert_eq!(
            whole.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            recombined.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "two samples at a time")]
    fn odd_length_output_panics() {
        let rng = CounterRng::keyed(1, 1, 1);
        fill_normal_pairs(&rng, 0, &mut [0.0; 3]);
    }
}
