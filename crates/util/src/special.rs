//! Special functions for communication-theory math.
//!
//! The modulation models in `rwc-optics` need the Gaussian error function
//! to compute theoretical symbol-error rates, and its inverse to derive
//! SNR requirements from target error rates. `std` does not provide these,
//! so they are implemented here with well-known rational approximations.

/// Error function `erf(x)`, accurate to about 1.2e-7.
///
/// Uses the Abramowitz & Stegun 7.1.26-style approximation refined by
/// W. J. Cody; adequate for error-rate estimation (we never need more than
/// ~6 significant digits of a BER).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Implemented directly (rather than as `1 - erf`) to stay accurate in the
/// deep tail, where symbol error rates live (e.g. `erfc(5) ~ 1.5e-12`).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // Numerical Recipes' erfc approximation (fractional error < 1.2e-7
    // everywhere, relative error small in the tail).
    let z = x;
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = -z * z - 1.26551223
        + t * (1.00002368
            + t * (0.37409196
                + t * (0.09678418
                    + t * (-0.18628806
                        + t * (0.27886807
                            + t * (-1.13520398
                                + t * (1.48851587
                                    + t * (-0.82215223 + t * 0.17087277))))))));
    t * poly.exp()
}

/// The Gaussian tail probability `Q(x) = P(N(0,1) > x)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the Q-function, computed by bisection on the monotone
/// [`q_function`].
///
/// Accepts probabilities in `(0, 1)`; accurate to ~1e-10 in `x`. Used to
/// convert a target symbol-error rate into a required SNR.
pub fn q_inverse(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "q_inverse domain is (0,1), got {p}");
    let (mut lo, mut hi) = (-40.0, 40.0);
    // 100 bisection steps: interval shrinks to 80 * 2^-100, far below f64 eps.
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Natural logarithm of the gamma function (Lanczos approximation).
///
/// Needed for Poisson tail probabilities in telemetry statistics.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is positive reals");
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {} want {want}", erf(x));
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -30..=30 {
            let x = i as f64 / 7.0;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_is_positive_and_small() {
        let t5 = erfc(5.0);
        assert!(t5 > 0.0 && t5 < 2e-11, "erfc(5)={t5}");
        let t3 = erfc(3.0);
        assert!((t3 - 2.209e-5).abs() < 2e-7, "erfc(3)={t3}");
    }

    #[test]
    fn q_function_known_values() {
        // erfc is a rational approximation: exact to ~1.2e-7, not to ulps.
        assert!((q_function(0.0) - 0.5).abs() < 2e-7);
        // Q(1.6449) ~ 0.05, Q(2.3263) ~ 0.01
        assert!((q_function(1.6448536) - 0.05).abs() < 1e-6);
        assert!((q_function(2.3263479) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn q_inverse_round_trip() {
        for &p in &[0.4, 0.1, 1e-2, 1e-4, 1e-6, 1e-9] {
            let x = q_inverse(p);
            let back = q_function(x);
            assert!(
                (back / p - 1.0).abs() < 1e-3,
                "p={p} x={x} back={back}"
            );
        }
    }

    #[test]
    fn q_inverse_monotone() {
        assert!(q_inverse(1e-6) > q_inverse(1e-3));
        assert!(q_inverse(0.4) > q_inverse(0.5 - 1e-9) - 1.0);
    }

    #[test]
    #[should_panic]
    fn q_inverse_rejects_out_of_domain() {
        q_inverse(0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..10u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-9);
    }
}
