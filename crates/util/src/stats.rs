//! Statistical primitives for the measurement-study reproductions.
//!
//! Every figure in the paper's §2 is a distribution summary: CDFs of SNR
//! variation (Fig. 2a), of feasible capacities (Fig. 2b), of SNR at failure
//! (Fig. 4c), of reconfiguration latency (Fig. 6b), plus percentage shares
//! (Fig. 4a/4b). This module provides the empirical CDF, quantiles,
//! histograms and summaries those reproductions are built from.

use std::fmt;

/// Below this length an LSD radix sort's histogram setup costs more than a
/// comparison sort of the whole slice; [`sort_f64`] falls back to
/// `sort_unstable_by(f64::total_cmp)`.
const RADIX_CUTOFF: usize = 64;

/// Maps an `f64` onto a `u64` key whose unsigned order equals the IEEE-754
/// *total order* of the float (`-NaN < -inf < … < -0.0 < +0.0 < … < +NaN`):
/// positive floats get their sign bit flipped, negative floats are fully
/// inverted. Monotone and invertible, so a radix sort on the keys is an
/// exact value sort — no epsilon, no NaN panic.
#[inline]
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    bits ^ (((bits as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Sorts `values` ascending in IEEE-754 total order.
///
/// Equivalent to `sort_unstable_by(f64::total_cmp)` but O(n) instead of
/// O(n log n): an exact LSD radix sort over the total-order bit keys, one
/// byte per pass, with uniform-digit passes skipped (SNR data spans a few
/// dB, so the exponent bytes are nearly constant and most passes vanish).
/// Unlike the `partial_cmp(..).unwrap()` idiom this never panics on NaN —
/// NaNs deterministically sort to the ends.
pub fn sort_f64(values: &mut [f64]) {
    let mut scratch = Vec::new();
    sort_f64_with_scratch(values, &mut scratch);
}

/// [`sort_f64`] with a caller-owned scratch buffer, for hot loops that sort
/// one trace per link and want zero steady-state allocation. The scratch is
/// resized to `values.len()` once and reused across calls.
pub fn sort_f64_with_scratch(values: &mut [f64], scratch: &mut Vec<f64>) {
    let n = values.len();
    if n < RADIX_CUTOFF {
        values.sort_unstable_by(f64::total_cmp);
        return;
    }
    scratch.clear();
    scratch.resize(n, 0.0);

    // One prefix scan builds all eight byte histograms, so fully uniform
    // digits (the common case for the high exponent bytes) are detected and
    // their passes skipped without touching the data again.
    let mut hist = [[0usize; 256]; 8];
    for &v in values.iter() {
        let key = total_order_key(v);
        for (byte, h) in hist.iter_mut().enumerate() {
            h[((key >> (8 * byte)) & 0xFF) as usize] += 1;
        }
    }

    // `src` flips between the caller's slice and the scratch each performed
    // pass; a final copy lands the result back in `values` if needed.
    let mut in_values = true;
    for (byte, h) in hist.iter().enumerate() {
        if h.contains(&n) {
            continue; // every key shares this byte — nothing to reorder
        }
        let mut offsets = [0usize; 256];
        let mut running = 0usize;
        for (digit, &count) in h.iter().enumerate() {
            offsets[digit] = running;
            running += count;
        }
        let (src, dst): (&[f64], &mut [f64]) = if in_values {
            (&*values, scratch.as_mut_slice())
        } else {
            (scratch.as_slice(), &mut *values)
        };
        for &v in src.iter() {
            let digit = ((total_order_key(v) >> (8 * byte)) & 0xFF) as usize;
            dst[offsets[digit]] = v;
            offsets[digit] += 1;
        }
        in_values = !in_values;
    }
    if !in_values {
        values.copy_from_slice(scratch);
    }
}

/// An empirical cumulative distribution function over `f64` samples.
///
/// Construction sorts the samples once; evaluation is a binary search.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. Non-finite samples are rejected.
    ///
    /// Panics if `samples` is empty or contains NaN/infinite values —
    /// distribution figures over no data are always a bug upstream.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF over zero samples");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "ECDF samples must be finite"
        );
        sort_f64(&mut samples);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty sample sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`), using nearest-rank on the sorted
    /// samples.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile q out of [0,1]: {q}");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Evaluates the ECDF at `n` evenly spaced points across the sample
    /// range, returning `(x, P(X <= x))` pairs — the series a CDF plot needs.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "series needs at least two points");
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }

    /// Sorted access to the underlying samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of the samples. Panics on empty input.
    pub fn of(samples: &[f64]) -> Summary {
        let ecdf = Ecdf::new(samples.to_vec());
        let mean = ecdf.mean();
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min: ecdf.min(),
            p25: ecdf.quantile(0.25),
            median: ecdf.median(),
            p75: ecdf.quantile(0.75),
            p95: ecdf.quantile(0.95),
            max: ecdf.max(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p25={:.3} med={:.3} p75={:.3} p95={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.p25,
            self.median,
            self.p75,
            self.p95,
            self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with an overflow/underflow policy
/// of clamping into the edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds/bins");
        Self { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Adds one observation (clamped into the edge bins if out of range).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Percentage shares of category totals, for Fig. 4a/4b-style bar charts.
///
/// Given per-category magnitudes, returns percentages summing to 100
/// (subject to rounding in the caller's presentation).
pub fn percentage_shares(magnitudes: &[f64]) -> Vec<f64> {
    let total: f64 = magnitudes.iter().sum();
    assert!(total > 0.0, "percentage shares of a zero total");
    magnitudes.iter().map(|m| 100.0 * m / total).collect()
}

/// Smallest contiguous interval of sorted samples covering at least
/// `coverage` of them — the 1-D highest-density region the paper uses to
/// characterise SNR stability (Fig. 2a).
///
/// Returns `(low, high)`. For multimodal data this is the narrowest single
/// window, matching the paper's definition ("the smallest interval in which
/// 95% or more of the SNR values are concentrated").
pub fn highest_density_interval(sorted: &[f64], coverage: f64) -> (f64, f64) {
    assert!(!sorted.is_empty(), "HDI of zero samples");
    assert!(
        (0.0..=1.0).contains(&coverage) && coverage > 0.0,
        "coverage out of (0,1]: {coverage}"
    );
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let n = sorted.len();
    let k = ((coverage * n as f64).ceil() as usize).clamp(1, n);
    let mut best = (sorted[0], sorted[n - 1]);
    let mut best_width = f64::INFINITY;
    for start in 0..=(n - k) {
        let width = sorted[start + k - 1] - sorted[start];
        if width < best_width {
            best_width = width;
            best = (sorted[start], sorted[start + k - 1]);
        }
    }
    best
}

/// [`highest_density_interval`] of *unsorted* samples, bit-identical to
/// sorting first but cheaper: the window scan only ever reads positions
/// `0..=n-k` and `k-1..n` of the sorted order — the two tails — so for
/// high coverage the middle ~90% of samples never needs sorting at all.
/// Two `select_nth` partitions put the exact full-sort values at every
/// position the scan reads (the multiset below any sorted position is
/// unique, and equal `f64`s in total order are bit-identical), then only
/// the tails are comparison-sorted. O(n) plus two O(n·(1−coverage)) tail
/// sorts; reorders `values` in place.
pub fn hdi_of_unsorted(values: &mut [f64], coverage: f64) -> (f64, f64) {
    assert!(!values.is_empty(), "HDI of zero samples");
    assert!(
        (0.0..=1.0).contains(&coverage) && coverage > 0.0,
        "coverage out of (0,1]: {coverage}"
    );
    let n = values.len();
    let k = ((coverage * n as f64).ceil() as usize).clamp(1, n);
    let tail = n - k;
    if tail >= k {
        // Low coverage: the window positions cover most of the slice, so a
        // partial sort saves nothing.
        sort_f64(values);
        return highest_density_interval(values, coverage);
    }
    if tail > 0 {
        // Partition at k-1: the pivot lands in its sorted place, the right
        // part holds exactly the top `tail` values of the sorted order.
        let (left, _pivot, right) = values.select_nth_unstable_by(k - 1, f64::total_cmp);
        right.sort_unstable_by(f64::total_cmp);
        if tail == left.len() {
            left.sort_unstable_by(f64::total_cmp);
        } else {
            let (low_tail, _p, _rest) = left.select_nth_unstable_by(tail, f64::total_cmp);
            low_tail.sort_unstable_by(f64::total_cmp);
        }
    } else {
        // Full coverage: the only window is the whole sample range.
        let mut min = values[0];
        let mut max = values[0];
        for &v in values.iter() {
            if v.total_cmp(&min).is_lt() {
                min = v;
            }
            if v.total_cmp(&max).is_gt() {
                max = v;
            }
        }
        return (min, max);
    }
    // Positions 0 and n-1 are in sorted place, so this matches the sorted
    // scan's initial value even when no window improves on it.
    let mut best = (values[0], values[n - 1]);
    let mut best_width = f64::INFINITY;
    for start in 0..=tail {
        let width = values[start + k - 1] - values[start];
        if width < best_width {
            best_width = width;
            best = (values[start], values[start + k - 1]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert_eq!(e.mean(), 2.5);
    }

    #[test]
    fn ecdf_quantiles_nearest_rank() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.25), 25.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.median(), 50.0);
    }

    #[test]
    #[should_panic]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let e = Ecdf::new(vec![1.0, 1.5, 2.0, 8.0, 9.0]);
        let s = e.series(50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn summary_display_is_parseable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.000"));
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.9, -3.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        // bins: [0,2) [2,4) [4,6) [6,8) [8,10)
        assert_eq!(h.counts(), &[3, 1, 1, 0, 2]); // -3 clamps low, 42 clamps high
        let centers = h.centers();
        assert_eq!(centers[0].0, 1.0);
        assert_eq!(centers[4].0, 9.0);
    }

    #[test]
    fn percentage_shares_sum_to_100() {
        let shares = percentage_shares(&[20.0, 10.0, 45.0, 25.0]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((shares[2] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn hdi_narrow_cluster_with_outliers() {
        // 95 points in [10.0, 10.94], 5 deep outliers near zero: the 95% HDI
        // must hug the cluster, while the range spans everything. This is
        // exactly the Fig. 2a distinction between HDR and range.
        let mut samples: Vec<f64> = (0..95).map(|i| 10.0 + i as f64 * 0.01).collect();
        samples.extend([0.1, 0.2, 0.3, 0.2, 0.1]);
        sort_f64(&mut samples);
        let (lo, hi) = highest_density_interval(&samples, 0.95);
        assert!(lo >= 10.0 && hi <= 10.94 + 1e-9, "({lo},{hi})");
        assert!(hi - lo < 1.0);
    }

    #[test]
    fn hdi_full_coverage_is_range() {
        let samples = vec![1.0, 2.0, 7.0];
        assert_eq!(highest_density_interval(&samples, 1.0), (1.0, 7.0));
    }

    #[test]
    fn hdi_single_sample() {
        assert_eq!(highest_density_interval(&[5.0], 0.95), (5.0, 5.0));
    }

    #[test]
    fn hdi_coverage_respected() {
        // Uniform grid: 95% HDI of n=100 must contain >= 95 points.
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (lo, hi) = highest_density_interval(&samples, 0.95);
        let inside = samples.iter().filter(|&&x| x >= lo && x <= hi).count();
        assert!(inside >= 95);
    }

    /// Deterministic pseudo-random f64s without pulling `rng` into this
    /// module: SplitMix64 over the index, scaled into a signed range.
    fn mixed(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64 - 0.5) * 2e4
    }

    #[test]
    fn radix_matches_total_cmp_sort() {
        // Above and below the small-n comparison fallback, signed values,
        // duplicates, and signed zeros.
        for n in [0usize, 1, 2, 17, RADIX_CUTOFF - 1, RADIX_CUTOFF, 500, 4096] {
            let mut values: Vec<f64> = (0..n as u64).map(mixed).collect();
            if n > 4 {
                values[1] = values[3]; // force duplicates
                values[2] = -0.0;
                values[4] = 0.0;
            }
            let mut expected = values.clone();
            expected.sort_unstable_by(f64::total_cmp);
            sort_f64(&mut values);
            let same = values.iter().zip(&expected).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "radix sort diverged from total_cmp at n={n}");
        }
    }

    #[test]
    fn radix_narrow_band_skips_passes_correctly() {
        // SNR-like data: a few dB of spread, so every exponent byte is
        // uniform and most radix passes are skipped. The skip logic must
        // still produce a fully sorted slice.
        let mut values: Vec<f64> = (0..2000u64).map(|i| 11.0 + (mixed(i).abs() % 3.0)).collect();
        let mut expected = values.clone();
        expected.sort_unstable_by(f64::total_cmp);
        sort_f64(&mut values);
        assert_eq!(values, expected);
    }

    #[test]
    fn radix_handles_nan_and_infinities_without_panicking() {
        // The partial_cmp idiom this replaces panicked here.
        let mut values: Vec<f64> = (0..200u64).map(mixed).collect();
        values[10] = f64::NAN;
        values[20] = -f64::NAN;
        values[30] = f64::INFINITY;
        values[40] = f64::NEG_INFINITY;
        let mut expected = values.clone();
        expected.sort_unstable_by(f64::total_cmp);
        sort_f64(&mut values);
        let same = values.iter().zip(&expected).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "NaN/inf placement diverged from total order");
        assert!(values[0].is_nan() && values[0].is_sign_negative());
        assert!(values[199].is_nan() && values[199].is_sign_positive());
    }

    #[test]
    fn radix_scratch_reuse_is_clean() {
        // A dirty, oversized scratch from a previous (larger, NaN-laden)
        // sort must not leak into a later, smaller sort.
        let mut scratch = vec![f64::NAN; 1000];
        let mut first: Vec<f64> = (0..600u64).map(mixed).collect();
        first[13] = f64::NAN;
        sort_f64_with_scratch(&mut first, &mut scratch);
        let mut second: Vec<f64> = (0..100u64).map(|i| mixed(i + 7)).collect();
        let mut expected = second.clone();
        expected.sort_unstable_by(f64::total_cmp);
        sort_f64_with_scratch(&mut second, &mut scratch);
        assert_eq!(second, expected);
    }

    #[test]
    fn hdi_of_unsorted_matches_sorted_scan() {
        // The selection-based HDI must agree bit-for-bit with sorting first
        // and scanning, across coverages on both sides of the partial-sort
        // guard, on duplicates, and down to one sample.
        for n in [1usize, 2, 3, 10, 97, 1000, 5000] {
            for coverage in [0.3, 0.5, 0.8, 0.95, 1.0] {
                let mut values: Vec<f64> = (0..n as u64).map(mixed).collect();
                if n > 6 {
                    values[1] = values[5]; // duplicates across the pivot
                    values[2] = values[5];
                }
                let mut sorted = values.clone();
                sort_f64(&mut sorted);
                let expected = highest_density_interval(&sorted, coverage);
                let got = hdi_of_unsorted(&mut values, coverage);
                assert!(
                    got.0.to_bits() == expected.0.to_bits()
                        && got.1.to_bits() == expected.1.to_bits(),
                    "HDI diverged at n={n} coverage={coverage}: {got:?} vs {expected:?}"
                );
            }
        }
    }

    #[test]
    fn hdi_of_unsorted_narrow_cluster_with_outliers() {
        // Same fixture as the sorted-scan test: the 95% HDI hugs the
        // cluster even though the slice arrives unsorted.
        let mut samples: Vec<f64> = (0..95).map(|i| 10.0 + i as f64 * 0.01).collect();
        samples.extend([0.1, 0.2, 0.3, 0.2, 0.1]);
        let (lo, hi) = hdi_of_unsorted(&mut samples, 0.95);
        assert!(lo >= 10.0 && hi <= 10.94 + 1e-9, "({lo},{hi})");
    }

    #[test]
    fn total_order_key_is_monotone_on_boundary_values() {
        let ordered = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            f64::MAX,
            f64::INFINITY,
        ];
        for pair in ordered.windows(2) {
            assert!(
                total_order_key(pair[0]) <= total_order_key(pair[1]),
                "key order broke between {} and {}",
                pair[0],
                pair[1]
            );
        }
        // -0.0 and +0.0 are *distinct* in total order — the keys must be too.
        assert!(total_order_key(-0.0) < total_order_key(0.0));
    }
}
