//! Statistical primitives for the measurement-study reproductions.
//!
//! Every figure in the paper's §2 is a distribution summary: CDFs of SNR
//! variation (Fig. 2a), of feasible capacities (Fig. 2b), of SNR at failure
//! (Fig. 4c), of reconfiguration latency (Fig. 6b), plus percentage shares
//! (Fig. 4a/4b). This module provides the empirical CDF, quantiles,
//! histograms and summaries those reproductions are built from.

use std::fmt;

/// An empirical cumulative distribution function over `f64` samples.
///
/// Construction sorts the samples once; evaluation is a binary search.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. Non-finite samples are rejected.
    ///
    /// Panics if `samples` is empty or contains NaN/infinite values —
    /// distribution figures over no data are always a bug upstream.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF over zero samples");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "ECDF samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty sample sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`), using nearest-rank on the sorted
    /// samples.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile q out of [0,1]: {q}");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Evaluates the ECDF at `n` evenly spaced points across the sample
    /// range, returning `(x, P(X <= x))` pairs — the series a CDF plot needs.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "series needs at least two points");
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }

    /// Sorted access to the underlying samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of the samples. Panics on empty input.
    pub fn of(samples: &[f64]) -> Summary {
        let ecdf = Ecdf::new(samples.to_vec());
        let mean = ecdf.mean();
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min: ecdf.min(),
            p25: ecdf.quantile(0.25),
            median: ecdf.median(),
            p75: ecdf.quantile(0.75),
            p95: ecdf.quantile(0.95),
            max: ecdf.max(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p25={:.3} med={:.3} p75={:.3} p95={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.p25,
            self.median,
            self.p75,
            self.p95,
            self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with an overflow/underflow policy
/// of clamping into the edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds/bins");
        Self { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Adds one observation (clamped into the edge bins if out of range).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Percentage shares of category totals, for Fig. 4a/4b-style bar charts.
///
/// Given per-category magnitudes, returns percentages summing to 100
/// (subject to rounding in the caller's presentation).
pub fn percentage_shares(magnitudes: &[f64]) -> Vec<f64> {
    let total: f64 = magnitudes.iter().sum();
    assert!(total > 0.0, "percentage shares of a zero total");
    magnitudes.iter().map(|m| 100.0 * m / total).collect()
}

/// Smallest contiguous interval of sorted samples covering at least
/// `coverage` of them — the 1-D highest-density region the paper uses to
/// characterise SNR stability (Fig. 2a).
///
/// Returns `(low, high)`. For multimodal data this is the narrowest single
/// window, matching the paper's definition ("the smallest interval in which
/// 95% or more of the SNR values are concentrated").
pub fn highest_density_interval(sorted: &[f64], coverage: f64) -> (f64, f64) {
    assert!(!sorted.is_empty(), "HDI of zero samples");
    assert!(
        (0.0..=1.0).contains(&coverage) && coverage > 0.0,
        "coverage out of (0,1]: {coverage}"
    );
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let n = sorted.len();
    let k = ((coverage * n as f64).ceil() as usize).clamp(1, n);
    let mut best = (sorted[0], sorted[n - 1]);
    let mut best_width = f64::INFINITY;
    for start in 0..=(n - k) {
        let width = sorted[start + k - 1] - sorted[start];
        if width < best_width {
            best_width = width;
            best = (sorted[start], sorted[start + k - 1]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert_eq!(e.mean(), 2.5);
    }

    #[test]
    fn ecdf_quantiles_nearest_rank() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.25), 25.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.median(), 50.0);
    }

    #[test]
    #[should_panic]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let e = Ecdf::new(vec![1.0, 1.5, 2.0, 8.0, 9.0]);
        let s = e.series(50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn summary_display_is_parseable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.000"));
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.9, -3.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        // bins: [0,2) [2,4) [4,6) [6,8) [8,10)
        assert_eq!(h.counts(), &[3, 1, 1, 0, 2]); // -3 clamps low, 42 clamps high
        let centers = h.centers();
        assert_eq!(centers[0].0, 1.0);
        assert_eq!(centers[4].0, 9.0);
    }

    #[test]
    fn percentage_shares_sum_to_100() {
        let shares = percentage_shares(&[20.0, 10.0, 45.0, 25.0]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((shares[2] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn hdi_narrow_cluster_with_outliers() {
        // 95 points in [10.0, 10.94], 5 deep outliers near zero: the 95% HDI
        // must hug the cluster, while the range spans everything. This is
        // exactly the Fig. 2a distinction between HDR and range.
        let mut samples: Vec<f64> = (0..95).map(|i| 10.0 + i as f64 * 0.01).collect();
        samples.extend([0.1, 0.2, 0.3, 0.2, 0.1]);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = highest_density_interval(&samples, 0.95);
        assert!(lo >= 10.0 && hi <= 10.94 + 1e-9, "({lo},{hi})");
        assert!(hi - lo < 1.0);
    }

    #[test]
    fn hdi_full_coverage_is_range() {
        let samples = vec![1.0, 2.0, 7.0];
        assert_eq!(highest_density_interval(&samples, 1.0), (1.0, 7.0));
    }

    #[test]
    fn hdi_single_sample() {
        assert_eq!(highest_density_interval(&[5.0], 0.95), (5.0, 5.0));
    }

    #[test]
    fn hdi_coverage_respected() {
        // Uniform grid: 95% HDI of n=100 must contain >= 95 points.
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (lo, hi) = highest_density_interval(&samples, 0.95);
        let inside = samples.iter().filter(|&&x| x >= lo && x <= hi).count();
        assert!(inside >= 95);
    }
}
