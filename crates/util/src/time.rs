//! Simulated time.
//!
//! The paper's telemetry is sampled every 15 minutes for 2.5 years; its BVT
//! experiments measure latencies from milliseconds to minutes. A single
//! millisecond-resolution simulated clock covers both regimes. Wall-clock
//! time is never consulted anywhere in the workspace — experiments are fully
//! replayable from a seed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with millisecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    millis: u64,
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration { millis: 0 };
    /// The paper's telemetry sampling interval: 15 minutes.
    pub const TELEMETRY_TICK: SimDuration = SimDuration::from_minutes(15);

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self { millis }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self { millis: secs * 1_000 }
    }

    /// Construct from minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        Self::from_secs(minutes * 60)
    }

    /// Construct from hours.
    pub const fn from_hours(hours: u64) -> Self {
        Self::from_minutes(hours * 60)
    }

    /// Construct from days.
    pub const fn from_days(days: u64) -> Self {
        Self::from_hours(days * 24)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self { millis: (secs * 1_000.0).round().max(0.0) as u64 }
    }

    /// Construct from fractional hours, rounding to the nearest millisecond.
    pub fn from_hours_f64(hours: f64) -> Self {
        Self::from_secs_f64(hours * 3_600.0)
    }

    /// Total milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.millis
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.millis as f64 / 1_000.0
    }

    /// Duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.as_hours_f64() / 24.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { millis: self.millis.saturating_sub(rhs.millis) }
    }

    /// Number of whole `tick`-sized steps that fit in this duration.
    pub fn ticks(self, tick: SimDuration) -> u64 {
        assert!(tick.millis > 0, "tick must be positive");
        self.millis / tick.millis
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration { millis: self.millis + rhs.millis }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.millis += rhs.millis;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { millis: self.millis.checked_sub(rhs.millis).expect("negative SimDuration") }
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration { millis: self.millis * rhs }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration { millis: self.millis / rhs }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.millis;
        if ms < 1_000 {
            write!(f, "{ms}ms")
        } else if ms < 60_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if ms < 3_600_000 {
            write!(f, "{:.1}min", self.as_secs_f64() / 60.0)
        } else if ms < 86_400_000 {
            write!(f, "{:.1}h", self.as_hours_f64())
        } else {
            write!(f, "{:.1}d", self.as_days_f64())
        }
    }
}

/// An instant on the simulated timeline (milliseconds since experiment
/// start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    millis: u64,
}

impl SimTime {
    /// The experiment epoch.
    pub const EPOCH: SimTime = SimTime { millis: 0 };

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Self { millis }
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.millis
    }

    /// Elapsed time since the epoch.
    pub const fn since_epoch(self) -> SimDuration {
        SimDuration::from_millis(self.millis)
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_millis(
            self.millis.checked_sub(earlier.millis).expect("duration_since: earlier is later"),
        )
    }

    /// Saturating variant of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_millis(self.millis.saturating_sub(earlier.millis))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime { millis: self.millis + rhs.as_millis() }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.millis += rhs.as_millis();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime { millis: self.millis.checked_sub(rhs.as_millis()).expect("SimTime before epoch") }
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.millis = self.millis.checked_sub(rhs.as_millis()).expect("SimTime before epoch");
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", self.since_epoch())
    }
}

/// Iterator over evenly spaced instants: `start`, `start + tick`, … while
/// `< end`.
#[derive(Debug, Clone)]
pub struct Ticks {
    next: SimTime,
    end: SimTime,
    tick: SimDuration,
}

impl Ticks {
    /// Ticks covering `[start, end)` at the given interval.
    pub fn new(start: SimTime, end: SimTime, tick: SimDuration) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        Self { next: start, end, tick }
    }

    /// Ticks at the paper's 15-minute telemetry interval over a horizon.
    pub fn telemetry(horizon: SimDuration) -> Self {
        Self::new(SimTime::EPOCH, SimTime::EPOCH + horizon, SimDuration::TELEMETRY_TICK)
    }
}

impl Iterator for Ticks {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next += self.tick;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .end
            .saturating_duration_since(self.next)
            .as_millis()
            .div_ceil(self.tick.as_millis()) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Ticks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_minutes(60));
        assert_eq!(SimDuration::from_minutes(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(68.125);
        assert!((d.as_secs_f64() - 68.125).abs() < 1e-9);
        let h = SimDuration::from_hours_f64(2.5);
        assert!((h.as_hours_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_secs(90);
        let b = SimDuration::from_secs(30);
        assert_eq!(a + b, SimDuration::from_secs(120));
        assert_eq!(a - b, SimDuration::from_secs(60));
        assert_eq!(a * 2, SimDuration::from_secs(180));
        assert_eq!(a / 3, SimDuration::from_secs(30));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let _ = SimDuration::from_secs(1) - SimDuration::from_secs(2);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::EPOCH + SimDuration::from_hours(5);
        assert_eq!(t.duration_since(SimTime::EPOCH), SimDuration::from_hours(5));
        let earlier = t - SimDuration::from_hours(2);
        assert_eq!(earlier.since_epoch(), SimDuration::from_hours(3));
        assert_eq!(
            SimTime::EPOCH.saturating_duration_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    fn tick_count_over_paper_horizon() {
        // 2.5 years of 15-minute samples: the paper's per-link series length.
        let horizon = SimDuration::from_days(913); // ~2.5 years
        let n = Ticks::telemetry(horizon).count();
        assert_eq!(n as u64, horizon.ticks(SimDuration::TELEMETRY_TICK));
        assert_eq!(n, 913 * 96);
    }

    #[test]
    fn ticks_half_open_interval() {
        let start = SimTime::EPOCH;
        let end = SimTime::EPOCH + SimDuration::from_minutes(45);
        let ticks: Vec<_> = Ticks::new(start, end, SimDuration::from_minutes(15)).collect();
        assert_eq!(ticks.len(), 3);
        assert_eq!(ticks[0], start);
        assert_eq!(ticks[2], start + SimDuration::from_minutes(30));
    }

    #[test]
    fn ticks_exact_size() {
        let it = Ticks::telemetry(SimDuration::from_days(10));
        assert_eq!(it.len(), 960);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_millis(35).to_string(), "35ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.00s");
        assert_eq!(SimDuration::from_secs(68).to_string(), "1.1min");
        assert_eq!(SimDuration::from_hours(5).to_string(), "5.0h");
        assert_eq!(SimDuration::from_days(913).to_string(), "913.0d");
    }
}
