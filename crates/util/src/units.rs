//! Strongly typed physical units.
//!
//! Two quantities dominate the paper: signal-to-noise ratios in decibels and
//! link capacities in Gbps. Both are newtypes over `f64` so that linear and
//! logarithmic values, or capacities and SNRs, cannot be mixed accidentally.
//!
//! Decibel arithmetic follows the usual convention: adding [`Db`] values
//! corresponds to multiplying linear ratios (gains/losses compose
//! additively in log space).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A power ratio expressed in decibels.
///
/// Used for SNR, amplifier gain, fiber attenuation and link-budget margins.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

impl Db {
    /// Zero decibels (a linear ratio of 1).
    pub const ZERO: Db = Db(0.0);

    /// Converts a linear power ratio to decibels.
    ///
    /// Ratios at or below zero (a fully extinguished signal) map to
    /// negative infinity, which the rest of the workspace treats as
    /// loss-of-light.
    pub fn from_linear(ratio: f64) -> Db {
        if ratio <= 0.0 {
            Db(f64::NEG_INFINITY)
        } else {
            Db(10.0 * ratio.log10())
        }
    }

    /// Converts to a linear power ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Raw decibel value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// True if this value represents a completely lost signal.
    pub fn is_loss_of_light(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// Component-wise minimum.
    pub fn min(self, other: Db) -> Db {
        Db(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Db) -> Db {
        Db(self.0.max(other.0))
    }

    /// Clamps into `[lo, hi]`.
    pub fn clamp(self, lo: Db, hi: Db) -> Db {
        Db(self.0.clamp(lo.0, hi.0))
    }

    /// Absolute difference, as a decibel span.
    pub fn abs_diff(self, other: Db) -> Db {
        Db((self.0 - other.0).abs())
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_loss_of_light() {
            write!(f, "-inf dB")
        } else {
            write!(f, "{:.2} dB", self.0)
        }
    }
}

/// A data rate in gigabits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Gbps(pub f64);

impl Gbps {
    /// Zero capacity.
    pub const ZERO: Gbps = Gbps(0.0);

    /// Raw Gbps value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to terabits per second.
    pub fn as_tbps(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Component-wise minimum.
    pub fn min(self, other: Gbps) -> Gbps {
        Gbps(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Gbps) -> Gbps {
        Gbps(self.0.max(other.0))
    }

    /// Saturating subtraction (floors at zero).
    pub fn saturating_sub(self, rhs: Gbps) -> Gbps {
        Gbps((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Gbps {
    type Output = Gbps;
    fn add(self, rhs: Gbps) -> Gbps {
        Gbps(self.0 + rhs.0)
    }
}

impl AddAssign for Gbps {
    fn add_assign(&mut self, rhs: Gbps) {
        self.0 += rhs.0;
    }
}

impl Sub for Gbps {
    type Output = Gbps;
    fn sub(self, rhs: Gbps) -> Gbps {
        Gbps(self.0 - rhs.0)
    }
}

impl SubAssign for Gbps {
    fn sub_assign(&mut self, rhs: Gbps) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Gbps {
    type Output = Gbps;
    fn mul(self, rhs: f64) -> Gbps {
        Gbps(self.0 * rhs)
    }
}

impl Div<f64> for Gbps {
    type Output = Gbps;
    fn div(self, rhs: f64) -> Gbps {
        Gbps(self.0 / rhs)
    }
}

impl Div for Gbps {
    /// Ratio of two capacities (dimensionless).
    type Output = f64;
    fn div(self, rhs: Gbps) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Gbps {
    fn sum<I: Iterator<Item = Gbps>>(iter: I) -> Gbps {
        iter.fold(Gbps::ZERO, Add::add)
    }
}

impl fmt::Display for Gbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.2} Tbps", self.as_tbps())
        } else {
            write!(f, "{:.0} Gbps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_round_trip() {
        for &db in &[0.0, 3.0, 6.5, 12.8, -5.0] {
            let back = Db::from_linear(Db(db).to_linear()).value();
            assert!((back - db).abs() < 1e-10, "{db} -> {back}");
        }
    }

    #[test]
    fn db_known_values() {
        assert!((Db(10.0).to_linear() - 10.0).abs() < 1e-12);
        assert!((Db(3.0).to_linear() - 1.995).abs() < 0.01);
        assert!((Db::from_linear(100.0).value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn loss_of_light() {
        assert!(Db::from_linear(0.0).is_loss_of_light());
        assert!(Db::from_linear(-1.0).is_loss_of_light());
        assert!(!Db(0.0).is_loss_of_light());
        assert_eq!(Db::from_linear(0.0).to_string(), "-inf dB");
    }

    #[test]
    fn db_arithmetic_composes_gains() {
        // +3 dB twice is (almost exactly) a factor of ~3.98 linear.
        let total = Db(3.0) + Db(3.0);
        assert!((total.to_linear() - 3.981).abs() < 0.01);
        assert_eq!(Db(10.0) - Db(4.0), Db(6.0));
        assert_eq!(-Db(2.5), Db(-2.5));
        assert_eq!(Db(2.0) * 3.0, Db(6.0));
    }

    #[test]
    fn db_min_max_clamp() {
        assert_eq!(Db(1.0).min(Db(2.0)), Db(1.0));
        assert_eq!(Db(1.0).max(Db(2.0)), Db(2.0));
        assert_eq!(Db(5.0).clamp(Db(0.0), Db(3.0)), Db(3.0));
        assert_eq!(Db(7.0).abs_diff(Db(9.5)), Db(2.5));
    }

    #[test]
    fn gbps_arithmetic() {
        assert_eq!(Gbps(100.0) + Gbps(75.0), Gbps(175.0));
        assert_eq!(Gbps(200.0) - Gbps(50.0), Gbps(150.0));
        assert_eq!(Gbps(100.0) * 2.0, Gbps(200.0));
        assert_eq!(Gbps(200.0) / 2.0, Gbps(100.0));
        assert!((Gbps(200.0) / Gbps(100.0) - 2.0).abs() < 1e-12);
        assert_eq!(Gbps(50.0).saturating_sub(Gbps(80.0)), Gbps::ZERO);
    }

    #[test]
    fn gbps_sum_and_tbps() {
        let fleet: Gbps = (0..2000).map(|_| Gbps(72.5)).sum();
        assert!((fleet.as_tbps() - 145.0).abs() < 1e-9, "the paper's headline gain");
        assert_eq!(fleet.to_string(), "145.00 Tbps");
        assert_eq!(Gbps(100.0).to_string(), "100 Gbps");
    }
}
