//! Property tests for the statistical and numeric foundations.

use proptest::prelude::*;
use rwc_util::special::{q_function, q_inverse};
use rwc_util::stats::{highest_density_interval, Ecdf, Summary};
use rwc_util::units::{Db, Gbps};

proptest! {
    #[test]
    fn ecdf_is_a_cdf(samples in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let ecdf = Ecdf::new(samples.clone());
        // Bounds.
        prop_assert_eq!(ecdf.cdf(f64::MIN), 0.0);
        prop_assert_eq!(ecdf.cdf(ecdf.max()), 1.0);
        // Monotonicity on a probe grid.
        let (lo, hi) = (ecdf.min(), ecdf.max());
        let mut last = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let p = ecdf.cdf(x);
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn quantiles_bracket_samples(samples in proptest::collection::vec(-1e3f64..1e3, 1..200),
                                 q in 0.0f64..=1.0) {
        let ecdf = Ecdf::new(samples);
        let v = ecdf.quantile(q);
        prop_assert!(v >= ecdf.min() && v <= ecdf.max());
        // Quantiles are monotone in q.
        prop_assert!(ecdf.quantile((q / 2.0).max(0.0)) <= v + 1e-12);
    }

    #[test]
    fn summary_orderings(samples in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.p25 && s.p25 <= s.median);
        prop_assert!(s.median <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn hdi_width_shrinks_with_coverage(
        mut samples in proptest::collection::vec(-1e3f64..1e3, 3..200),
        c1 in 0.2f64..0.9,
    ) {
        rwc_util::stats::sort_f64(&mut samples);
        let c2 = (c1 + 0.1).min(1.0);
        let (lo1, hi1) = highest_density_interval(&samples, c1);
        let (lo2, hi2) = highest_density_interval(&samples, c2);
        prop_assert!(hi1 - lo1 <= hi2 - lo2 + 1e-12, "more coverage cannot be narrower");
    }

    #[test]
    fn db_linear_roundtrip(db in -60.0f64..60.0) {
        let back = Db::from_linear(Db(db).to_linear()).value();
        prop_assert!((back - db).abs() < 1e-9);
    }

    #[test]
    fn db_addition_multiplies_ratios(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let sum = Db(a) + Db(b);
        let product = Db(a).to_linear() * Db(b).to_linear();
        prop_assert!((sum.to_linear() / product - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gbps_saturating_sub_never_negative(a in 0.0f64..1e4, b in 0.0f64..1e4) {
        prop_assert!(Gbps(a).saturating_sub(Gbps(b)) >= Gbps::ZERO);
    }

    #[test]
    fn q_inverse_is_right_inverse(p in 1e-9f64..0.4999) {
        let x = q_inverse(p);
        prop_assert!((q_function(x) / p - 1.0).abs() < 1e-2, "p={p} x={x}");
    }

    #[test]
    fn rng_uniform_in_bounds(seed in 0u64..1000, lo in -1e3f64..0.0, width in 1e-3f64..1e3) {
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let u = rng.uniform_in(lo, hi);
            prop_assert!((lo..hi).contains(&u));
        }
    }

    #[test]
    fn rng_below_in_range(seed in 0u64..1000, n in 1usize..10_000) {
        let mut rng = rwc_util::rng::Xoshiro256::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }
}
