//! Failure replay: link flaps instead of link failures (the paper's §2.2).
//!
//! ```text
//! cargo run --release --example availability
//! ```
//!
//! Replays a synthetic seven-month failure-ticket corpus under the binary
//! up/down policy versus dynamic capacities, then drives the
//! run/walk/crawl controller over raw SNR traces and counts the
//! degradations it rides out as capacity flaps.

use rwc::core::controller::{Controller, ControllerConfig};
use rwc::failures::availability::AvailabilityReport;
use rwc::failures::{RootCause, TicketAnalysis, TicketConfig, TicketGenerator};
use rwc::optics::ModulationTable;
use rwc::telemetry::{FleetConfig, FleetGenerator};
use rwc::topology::wan::LinkId;
use rwc::topology::WanTopology;
use rwc::util::time::SimDuration;
use rwc::util::units::{Db, Gbps};

fn main() {
    // --- Ticket corpus (Fig. 4) ---------------------------------------
    let tickets = TicketGenerator::new(TicketConfig::paper()).generate();
    let analysis = TicketAnalysis::new(&tickets);
    println!("{} unplanned failure tickets over 7 months", analysis.total_events());
    let ev = analysis.event_shares_percent();
    for (i, cause) in RootCause::ALL.iter().enumerate() {
        println!("  {:<24} {:>5.1}% of events", cause.to_string(), ev[i]);
    }
    println!(
        "fiber cuts are NOT the main culprit: {:.1}% of events leave usable signal paths",
        100.0 * analysis.fraction_non_fiber_cut()
    );

    // --- Binary vs dynamic replay ---------------------------------------
    let table = ModulationTable::paper_default();
    let replay = AvailabilityReport::replay(&tickets, &table, Gbps(100.0));
    println!("\n— binary links vs dynamic links —");
    println!(
        "outages: {} → {} ({:.1}% of failure events become 50 G+ flaps)",
        replay.total_events,
        replay.hard_outages,
        100.0 * replay.events_avoided_fraction()
    );
    println!(
        "outage hours: {:.0} → {:.0}",
        replay.binary_outage.as_hours_f64(),
        replay.dynamic_outage.as_hours_f64()
    );

    // --- Controller on raw SNR ------------------------------------------
    println!("\n— run/walk/crawl controller on raw telemetry —");
    let fleet = FleetGenerator::new(FleetConfig {
        n_fibers: 2,
        wavelengths_per_fiber: 20,
        horizon: SimDuration::from_days(120),
        ..FleetConfig::paper()
    });
    let mut wan = WanTopology::new();
    let hub = wan.add_node("HUB", None);
    for i in 0..fleet.n_links() {
        let s = wan.add_node(format!("S{i}"), None);
        wan.add_link(hub, s, 500.0);
    }
    let mut controller = Controller::new(ControllerConfig::default(), wan.n_links(), 3);
    let mut flaps = 0;
    let mut downs = 0;
    for link_id in 0..fleet.n_links() {
        let link = fleet.link(link_id);
        for (t, snr) in link.trace.iter() {
            let r =
                controller.sweep(&mut wan, &[(LinkId(link_id), Some(Db(snr.value())))], t);
            flaps += r.failures_avoided;
            downs += r.went_down.len();
        }
    }
    println!(
        "{} links × 120 days: {} degradations ridden out as capacity flaps, {} hard downs",
        fleet.n_links(),
        flaps,
        downs
    );
    println!("every flap is a failure a fixed-capacity link would have suffered");
}
