//! Fleet capacity planning from SNR telemetry (the paper's §2.1).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! Generates a synthetic telemetry fleet, computes each link's 95%
//! highest-density region, and reports how much capacity the fleet could
//! gain by encoding each link at the rate feasible at its HDR floor —
//! the analysis behind the paper's Figs. 2a/2b and its 145 Tbps headline.

use rwc::optics::{Modulation, ModulationTable};
use rwc::telemetry::{FleetConfig, FleetGenerator};
use rwc::util::time::SimDuration;
use rwc::util::units::{Db, Gbps};

fn main() {
    // A 400-link fleet over six months (drop to paper scale with
    // FleetConfig::paper() if you have a minute to spare).
    let cfg = FleetConfig {
        n_fibers: 10,
        horizon: SimDuration::from_days(180),
        ..FleetConfig::paper()
    };
    let gen = FleetGenerator::new(cfg);
    println!(
        "analysing {} links × {} of 15-min SNR samples…",
        gen.n_links(),
        gen.config().horizon
    );

    let table = ModulationTable::paper_default();
    let acc = gen.fleet_analysis(&table);

    println!("\n— SNR stability (Fig. 2a) —");
    println!(
        "95% HDR width: median {:.2} dB; {:.1}% of links below 2 dB (paper: 83%)",
        acc.hdr_width_ecdf().median(),
        100.0 * acc.fraction_hdr_below(Db(2.0))
    );
    println!(
        "SNR range (max−min): median {:.1} dB — rare events dwarf daily wander",
        acc.range_ecdf().median()
    );

    println!("\n— feasible capacities (Fig. 2b) —");
    for m in Modulation::LADDER {
        let frac = acc.fraction_feasible_at_least(m.capacity());
        println!("  ≥ {:>5} : {:>5.1}% of links", m.capacity(), 100.0 * frac);
    }

    let gain = acc.total_gain();
    let per_link = gain / acc.len() as f64;
    println!("\n— the headline —");
    println!(
        "re-encoding every link at its HDR floor gains {gain} ({per_link} per link; \
         scaled to 2,000 links ≈ {:.0} Tbps — paper: 145 Tbps)",
        per_link.value() * 2000.0 / 1000.0
    );
    assert!(gain > Gbps::ZERO);
}
