//! Driving a bandwidth-variable transceiver over MDIO (the paper's §3.1
//! testbed), comparing the stock and the proposed reconfiguration
//! procedures.
//!
//! ```text
//! cargo run --example hitless_reconfig
//! ```

use rwc::optics::bvt::{regs, Bvt, LatencyModel, ReconfigProcedure, sample_latencies};
use rwc::optics::Modulation;
use rwc::util::rng::Xoshiro256;
use rwc::util::stats::Ecdf;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(0xB47);

    // --- One reconfiguration, step by step, over the MDIO interface ----
    let mut bvt = Bvt::new(Modulation::DpQpsk100);
    println!("vendor id: {:#06x}", bvt.mdio_read(regs::VENDOR_ID).unwrap());
    println!("module at {}, laser on: {}", bvt.modulation(), bvt.laser_on());

    println!("\n— legacy procedure (what shipping firmware does) —");
    let report = bvt
        .mdio_write(regs::MODULATION, 5 /* DP-16QAM */, &mut rng)
        .unwrap()
        .unwrap();
    for (phase, duration) in &report.phases {
        println!("  {phase:<20} {duration}");
    }
    println!("  TOTAL LINK DOWNTIME  {}", report.downtime);

    println!("\n— efficient procedure (laser stays lit) —");
    bvt.mdio_write(regs::PROCEDURE, 1, &mut rng).unwrap();
    let report = bvt.mdio_write(regs::MODULATION, 1 /* DP-QPSK */, &mut rng).unwrap().unwrap();
    for (phase, duration) in &report.phases {
        println!("  {phase:<20} {duration}");
    }
    println!("  TOTAL LINK DOWNTIME  {}", report.downtime);

    // --- 200 trials each, like the paper's Fig. 6b ----------------------
    println!("\n— 200-trial latency distributions (Fig. 6b) —");
    let model = LatencyModel::default();
    for (name, proc_) in [
        ("legacy   ", ReconfigProcedure::Legacy),
        ("efficient", ReconfigProcedure::Efficient),
    ] {
        let secs: Vec<f64> = sample_latencies(proc_, &model, 200, &mut rng)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        let e = Ecdf::new(secs);
        println!(
            "{name}: mean {:>8.3} s   median {:>8.3} s   p95 {:>8.3} s",
            e.mean(),
            e.median(),
            e.quantile(0.95)
        );
    }
    println!("\npaper: 68 s → 35 ms; hitless capacity change is within reach");
}
