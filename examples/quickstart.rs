//! Quickstart: the paper's Fig. 7 walk-through, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the four-node example network, grows the demands past the static
//! capacity, augments the topology (Algorithm 1), hands it to an
//! *unmodified* TE algorithm, and translates the result back into capacity
//! upgrades + flows.

use rwc::core::{augment, translate, AugmentConfig, PenaltyPolicy};
use rwc::te::{DemandMatrix, Priority, TeAlgorithm, TeSolver};
use rwc::topology::builders;
use rwc::topology::wan::LinkId;
use rwc::util::units::{Db, Gbps};

fn main() {
    // --- Topology: Fig. 7a --------------------------------------------
    let mut wan = builders::fig7_example();
    for (id, _) in wan.clone().links() {
        wan.set_snr(id, Db(7.5)); // healthy at 100 G, no headroom
    }
    // Links (A,B) and (C,D) have the SNR to double their capacity.
    wan.set_snr(LinkId(0), Db(13.0));
    wan.set_snr(LinkId(1), Db(13.0));
    println!("topology: {} sites, {} links, total {}", wan.n_nodes(), wan.n_links(), wan.total_capacity());

    // --- Demands grow from 100 to 125 G --------------------------------
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut demands = DemandMatrix::new();
    demands.add(a, b, Gbps(125.0), Priority::Elastic);
    demands.add(c, d, Gbps(125.0), Priority::Elastic);
    println!("demands: A→B = C→D = 125 Gbps (links are 100 G)");

    // --- Algorithm 1: augment ------------------------------------------
    let cfg = AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() };
    let aug = augment(&wan, &demands, &cfg, &[]);
    println!(
        "augmented graph: {} real + {} fake edges (penalty 100 per unit)",
        aug.n_real_edges,
        aug.fake_edges.len()
    );

    // --- Unmodified TE on the augmented graph --------------------------
    let te = TeSolver::builder().build().expect("default TE solver");
    let solution = te.solve(&aug.problem);
    println!("TE routed {:.0} of 250 Gbps", solution.total);

    // --- Translate back ------------------------------------------------
    let result = translate(&aug, &wan, &solution).expect("translation");
    for (link, target) in &result.upgrades {
        let l = wan.link(*link);
        println!(
            "upgrade: {}–{} from {} to {target}",
            wan.node(l.a).name,
            wan.node(l.b).name,
            l.modulation
        );
    }
    println!(
        "{} upgrade(s) needed — the paper's point: ONE reconfiguration serves both grown demands",
        result.upgrades.len()
    );
    assert_eq!(result.upgrades.len(), 1);
}
