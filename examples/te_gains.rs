//! Throughput gains from dynamic capacities on a real research topology
//! (the paper's closing simulation).
//!
//! ```text
//! cargo run --release --example te_gains
//! ```
//!
//! Runs SWAN-style TE over the Abilene backbone under a growing gravity
//! demand matrix, with and without the graph abstraction, and prints the
//! throughput side by side.

use rwc::core::network::DynamicCapacityNetwork;
use rwc::core::{AugmentConfig, PenaltyPolicy};
use rwc::core::controller::ControllerConfig;
use rwc::te::swan::SwanTe;
use rwc::te::DemandMatrix;
use rwc::topology::builders;
use rwc::util::time::{SimDuration, SimTime};
use rwc::util::units::Gbps;

fn main() {
    let wan = builders::abilene();
    println!(
        "Abilene: {} sites, {} links, static capacity {}",
        wan.n_nodes(),
        wan.n_links(),
        wan.total_capacity()
    );

    let base = DemandMatrix::gravity(&wan, Gbps(wan.total_capacity().value() * 0.5), 21);
    let mut network = DynamicCapacityNetwork::new(
        wan,
        AugmentConfig { penalty: PenaltyPolicy::Uniform(1.0), ..Default::default() },
        ControllerConfig::default(),
        7,
    );

    println!("\n{:>6} {:>14} {:>14} {:>8} {:>9}", "load", "static Gbps", "dynamic Gbps", "gain%", "upgrades");
    let algo = SwanTe::default();
    let mut now = SimTime::EPOCH;
    for load in [0.5, 1.0, 1.5, 2.0, 2.5] {
        let demands = base.scaled(load);
        let round = network.te_round(&demands, &algo, now);
        println!(
            "{load:>6.2} {:>14.0} {:>14.0} {:>8.1} {:>9}",
            round.static_throughput,
            round.throughput,
            100.0 * round.gain(),
            round.translation.upgrades.len()
        );
        now += SimDuration::from_minutes(15);
    }
    println!("\nlight load: identical (no upgrades needed); heavy load: dynamic capacity wins");
}
