//! Operator tooling tour: JSON interchange, Graphviz export, shared-risk
//! analysis and reliability accounting.
//!
//! ```text
//! cargo run --example topology_tools
//! ```

use rwc::failures::reliability::{binary_reliability, dynamic_reliability, nines};
use rwc::failures::{TicketConfig, TicketGenerator};
use rwc::optics::ModulationTable;
use rwc::te::srlg::{cut_impact, shared_risk_groups, srlg_disjoint_paths};
use rwc::te::{DemandMatrix, TeAlgorithm};
use rwc::topology::builders;
use rwc::topology::export::to_dot;
use rwc::topology::WanTopology;
use rwc::util::units::Gbps;

fn main() {
    let mut wan = builders::abilene();
    let table = ModulationTable::paper_default();

    // --- JSON round-trip (the interchange format) -----------------------
    let json = wan.to_json();
    let restored = WanTopology::from_json(&json).unwrap();
    assert_eq!(wan, restored);
    println!("JSON interchange: {} bytes for Abilene", json.len());

    // --- Graphviz export -------------------------------------------------
    let dot = to_dot(&wan, &table);
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/abilene.dot", &dot).unwrap();
    println!("wrote results/abilene.dot  (render: dot -Tsvg -Kneato results/abilene.dot)");

    // --- Shared-risk groups ----------------------------------------------
    // Put the two Chicago-area routes on one conduit to make it interesting.
    let ipl_chi = rwc::topology::wan::LinkId(9);
    let chi_nyc = rwc::topology::wan::LinkId(11);
    let shared_fiber = wan.link(ipl_chi).fiber_id;
    wan.link_mut(chi_nyc).fiber_id = shared_fiber;
    let groups = shared_risk_groups(&wan);
    println!("\n{} fiber conduits carry {} links", groups.len(), wan.n_links());

    let sea = wan.node_by_name("SEA").unwrap();
    let nyc = wan.node_by_name("NYC").unwrap();
    match srlg_disjoint_paths(&wan, sea, nyc, 8) {
        Some((primary, backup)) => println!(
            "SEA→NYC fiber-disjoint pair: primary {:.0} km over {} hops, backup {:.0} km over {} hops",
            primary.weight,
            primary.len(),
            backup.weight,
            backup.len()
        ),
        None => println!("SEA→NYC has no fiber-disjoint pair!"),
    }

    // --- What does cutting that conduit cost? -----------------------------
    let dm = DemandMatrix::gravity(&wan, Gbps(800.0), 5);
    let problem = rwc::te::problem::TeProblem::from_wan(&wan, &dm);
    let sol = rwc::te::swan::SwanTe::default().solve(&problem);
    let impact = cut_impact(&wan, &problem, &sol, shared_fiber);
    println!(
        "cutting conduit {}: {} links dark, {} of capacity gone, {:.0} G of live traffic stranded",
        shared_fiber,
        impact.links_down.len(),
        impact.capacity_lost,
        impact.traffic_stranded
    );

    // --- Reliability bookkeeping ------------------------------------------
    let cfg = TicketConfig::paper();
    let tickets = TicketGenerator::new(cfg.clone()).generate();
    let b = binary_reliability(&tickets, cfg.window, cfg.n_links);
    let d = dynamic_reliability(&tickets, &table, cfg.window, cfg.n_links);
    println!(
        "\nfleet reliability: binary {:.2} nines (MTTR {}) → dynamic {:.2} nines (MTTR {})",
        nines(b.availability),
        b.mttr,
        nines(d.availability),
        d.mttr
    );
}
