//! A week in the life of a dynamic-capacity WAN.
//!
//! ```text
//! cargo run --release --example week_in_the_life
//! ```
//!
//! Binds the Fig. 7 topology to synthetic SNR telemetry and simulates a
//! week of 15-minute ticks: the run/walk/crawl controller rides out SNR
//! degradations, hourly TE rounds exploit headroom through the graph
//! abstraction, and demand follows a diurnal cycle.

use rwc::core::scenario::{Scenario, ScenarioConfig};
use rwc::te::swan::SwanTe;
use rwc::te::{DemandMatrix, Priority};
use rwc::telemetry::FleetConfig;
use rwc::topology::builders;
use rwc::util::time::SimDuration;
use rwc::util::units::Gbps;

fn main() {
    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut demands = DemandMatrix::new();
    demands.add(a, b, Gbps(120.0), Priority::Elastic);
    demands.add(c, d, Gbps(120.0), Priority::Elastic);

    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: SimDuration::from_days(10),
        fiber_baseline_mean_db: 13.5,
        fiber_baseline_sd_db: 0.2,
        wavelength_jitter_sd_db: 0.3,
        ..FleetConfig::paper()
    };

    let mut scenario = Scenario::builder(wan, fleet, demands)
        .config(ScenarioConfig::default())
        .build()
        .expect("example scenario wiring is valid");
    println!("simulating 7 days × 96 telemetry ticks/day, hourly TE rounds…\n");
    let report = scenario
        .run(SimDuration::from_days(7), &SwanTe::default())
        .expect("a 7-day run fits the 10-day telemetry horizon");

    println!("{:>6} {:>7} {:>10} {:>10} {:>9}", "hour", "demand", "static", "dynamic", "upgrades");
    for s in report.samples.iter().step_by(12) {
        println!(
            "{:>6.0} {:>6.2}x {:>10.0} {:>10.0} {:>9}",
            s.time.since_epoch().as_hours_f64(),
            s.demand_scale,
            s.static_throughput,
            s.throughput,
            s.upgrades
        );
    }
    println!("\nover the week:");
    println!("  mean dynamic-over-static gain : {:.1}%", 100.0 * report.mean_gain());
    println!("  degradations ridden out       : {} flaps", report.flaps);
    println!("  hard link downs               : {}", report.hard_downs);
    println!("  reconfiguration downtime      : {}", report.reconfig_downtime);
    println!("  total traffic churn           : {:.0} Gbps moved", report.total_churn());
}
