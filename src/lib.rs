//! # rwc — Run, Walk, Crawl: dynamic link capacities for optical WANs
//!
//! A from-scratch Rust reproduction of *Run, Walk, Crawl: Towards Dynamic
//! Link Capacities* (Singh, Ghobadi, Foerster, Filer, Gill — HotNets 2017).
//!
//! The paper argues that optical WAN links should adapt their capacity to
//! their measured signal-to-noise ratio instead of running at a fixed rate
//! behind conservative margins, and contributes a **graph abstraction**
//! that lets unmodified traffic-engineering controllers drive those
//! adaptive capacities. This crate re-exports the full workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`util`] | deterministic RNG, simulated time, `Db`/`Gbps` units, stats |
//! | [`obs`] | observability: counters/gauges/histograms, typed events, sinks |
//! | [`optics`] | modulation ladder, link budgets, constellations, BVT model |
//! | [`telemetry`] | synthetic 2.5-year SNR fleet (the paper's measurement corpus) |
//! | [`harness`] | crash-safe sweep runtime: checkpoint/resume, panic-isolated workers, chaos injection |
//! | [`serve`] | sharded controller daemon: bounded ingest, load shedding, shard supervision, crash recovery |
//! | [`failures`] | failure-ticket corpus + root-cause/availability analyses |
//! | [`faults`] | deterministic fault injection: BVT/telemetry/TE fault plans |
//! | [`topology`] | WAN graphs: Abilene, B4-like, Waxman, the paper's Fig. 7 |
//! | [`flow`] | Dinic, min-cost max-flow, multicommodity FPTAS |
//! | [`lp`] | two-phase simplex + flow-problem encoders (exact baselines) |
//! | [`te`] | SWAN-, B4-, CSPF-style TE + consistent updates |
//! | [`core`] | **the paper's contribution**: Algorithm 1 augmentation, Theorem 1, the run/walk/crawl controller |
//!
//! ## Quickstart
//!
//! ```rust
//! use rwc::core::{augment, AugmentConfig, translate, PenaltyPolicy};
//! use rwc::te::{DemandMatrix, Priority, TeAlgorithm};
//! use rwc::topology::builders;
//! use rwc::util::units::{Db, Gbps};
//!
//! // The paper's Fig. 7 network: all links 100 G; A–B and C–D have the
//! // SNR headroom to double.
//! let mut wan = builders::fig7_example();
//! for (id, _) in wan.clone().links() {
//!     wan.set_snr(id, Db(7.5));
//! }
//! wan.set_snr(rwc::topology::wan::LinkId(0), Db(13.0));
//! wan.set_snr(rwc::topology::wan::LinkId(1), Db(13.0));
//!
//! // Demands grow from 100 to 125 G on both pairs.
//! let (a, b) = (wan.node_by_name("A").unwrap(), wan.node_by_name("B").unwrap());
//! let (c, d) = (wan.node_by_name("C").unwrap(), wan.node_by_name("D").unwrap());
//! let mut demands = DemandMatrix::new();
//! demands.add(a, b, Gbps(125.0), Priority::Elastic);
//! demands.add(c, d, Gbps(125.0), Priority::Elastic);
//!
//! // Algorithm 1: augment, hand to an unmodified TE algorithm, translate.
//! let cfg = AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() };
//! let aug = augment(&wan, &demands, &cfg, &[]);
//! let solution = rwc::te::exact::ExactTe::default().solve(&aug.problem);
//! let result = translate(&aug, &wan, &solution).expect("translation");
//!
//! assert!((solution.total - 250.0).abs() < 1e-6, "all demand routed");
//! assert!(result.requires_changes(), "some link must be upgraded");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rwc_core as core;
pub use rwc_failures as failures;
pub use rwc_faults as faults;
pub use rwc_flow as flow;
pub use rwc_harness as harness;
pub use rwc_lp as lp;
pub use rwc_obs as obs;
pub use rwc_optics as optics;
pub use rwc_serve as serve;
pub use rwc_te as te;
pub use rwc_telemetry as telemetry;
pub use rwc_topology as topology;
pub use rwc_util as util;
