//! Determinism of the fault-injection pipeline: the same fault plan and
//! scenario seed must yield a byte-identical report, run to run — the
//! property that makes fault campaigns reproducible and diffable.

use rwc::core::scenario::{Scenario, ScenarioConfig, ScenarioReport};
use rwc::faults::FaultPlanConfig;
use rwc::te::demand::{DemandMatrix, Priority};
use rwc::te::swan::SwanTe;
use rwc::telemetry::FleetConfig;
use rwc::topology::builders;
use rwc::util::time::SimDuration;
use rwc::util::units::Gbps;

fn run_campaign() -> ScenarioReport {
    let wan = builders::fig7_example();
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(120.0), Priority::Elastic);
    dm.add(c, d, Gbps(120.0), Priority::Elastic);
    let fleet = FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 4,
        horizon: SimDuration::from_days(4),
        fiber_baseline_mean_db: 13.0,
        fiber_baseline_sd_db: 0.3,
        wavelength_jitter_sd_db: 0.5,
        ..FleetConfig::paper()
    };
    let plan = FaultPlanConfig {
        n_links: wan.n_links(),
        horizon: SimDuration::from_days(3),
        bvt_rate_per_link_day: 1.5,
        telemetry_rate_per_link_day: 1.5,
        te_rate_per_day: 1.0,
        seed: 0xD0_0D,
        ..FaultPlanConfig::default()
    }
    .generate();
    let config = ScenarioConfig { fault_plan: Some(plan), ..ScenarioConfig::default() };
    let mut scenario = Scenario::builder(wan, fleet, dm)
        .config(config)
        .build()
        .expect("fault campaign wiring is valid");
    scenario.run(SimDuration::from_days(3), &SwanTe::default()).unwrap()
}

#[test]
fn same_plan_same_seed_byte_identical_reports() {
    let a = serde_json::to_string(&run_campaign()).unwrap();
    let b = serde_json::to_string(&run_campaign()).unwrap();
    assert_eq!(a, b, "fault campaign must be byte-for-byte reproducible");
    // And it exercised something: the serialised report mentions at least
    // one non-zero degradation counter.
    let report = run_campaign();
    assert!(
        report.te_fallbacks + report.stale_holds + report.retries as usize + report.flaps > 0,
        "campaign was a no-op; plan too sparse to be a meaningful check"
    );
}
