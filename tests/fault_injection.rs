//! Negative-path and property tests for the fault-injection subsystem:
//! the MDIO surface under bad inputs, transceiver state consistency after
//! failed reconfigurations, and the controller's quarantine invariant.

use proptest::prelude::*;
use rwc::core::controller::{Controller, ControllerConfig};
use rwc::faults::BvtFault;
use rwc::optics::bvt::{regs, Bvt, BvtError, BvtStatus, ReconfigProcedure};
use rwc::optics::Modulation;
use rwc::topology::builders;
use rwc::topology::wan::LinkId;
use rwc::util::rng::Xoshiro256;
use rwc::util::time::SimTime;
use rwc::util::units::Db;

fn bvt() -> (Bvt, Xoshiro256) {
    (Bvt::new(Modulation::DpQpsk100), Xoshiro256::seed_from_u64(7))
}

// ---- MDIO negative paths -------------------------------------------------

#[test]
fn reading_an_unmapped_register_errors() {
    let (mut bvt, _) = bvt();
    let err = bvt.mdio_read(0x7777).unwrap_err();
    assert_eq!(err, BvtError::UnknownRegister(0x7777));
}

#[test]
fn read_only_registers_reject_writes() {
    let (mut bvt, mut rng) = bvt();
    for reg in [regs::VENDOR_ID, regs::STATUS, regs::RECONFIG_COUNT] {
        let err = bvt.mdio_write(reg, 1, &mut rng).unwrap_err();
        assert_eq!(err, BvtError::ReadOnly(reg));
    }
}

#[test]
fn out_of_range_modulation_value_is_rejected() {
    let (mut bvt, mut rng) = bvt();
    let err = bvt.mdio_write(regs::MODULATION, 0x00FF, &mut rng).unwrap_err();
    assert!(
        matches!(err, BvtError::InvalidValue { reg, .. } if reg == regs::MODULATION),
        "{err}"
    );
    // Nothing changed.
    assert_eq!(bvt.modulation(), Modulation::DpQpsk100);
    assert_eq!(bvt.status(), BvtStatus::Ready);
}

#[test]
fn writes_while_faulted_are_rejected_until_reset() {
    let (mut bvt, mut rng) = bvt();
    bvt.inject_fault(BvtFault::RelockFailure);
    // A modulation write rides through `reconfigure`, which trips.
    let err = bvt
        .mdio_write(regs::MODULATION, 3, &mut rng)
        .unwrap_err();
    assert!(matches!(err, BvtError::ReconfigFailed { .. }), "{err}");
    assert_eq!(bvt.status(), BvtStatus::Faulted);
    // While faulted, further writes bounce with Busy — including plain
    // register writes, the module needs a reset first.
    let err = bvt.mdio_write(regs::MODULATION, 1, &mut rng).unwrap_err();
    assert_eq!(err, BvtError::Busy);
    let err = bvt.mdio_write(regs::PROCEDURE, 0, &mut rng).unwrap_err();
    assert_eq!(err, BvtError::Busy);
    // The status register stays readable and reports the fault bit.
    let status = bvt.mdio_read(regs::STATUS).unwrap();
    assert_ne!(status & 0b100, 0, "fault bit must be set");
    bvt.reset(&mut rng);
    assert_eq!(bvt.status(), BvtStatus::Ready);
    bvt.mdio_write(regs::PROCEDURE, 0, &mut rng).unwrap();
}

// ---- Property: transceiver state stays consistent ------------------------

const FAULTS: [BvtFault; 4] = [
    BvtFault::RelockFailure,
    BvtFault::StuckLaser,
    BvtFault::MdioTimeout,
    BvtFault::CorruptRegister,
];

fn arb_fault() -> impl Strategy<Value = BvtFault> {
    (0usize..FAULTS.len()).prop_map(|i| FAULTS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever fault trips a reconfiguration, the module's state stays
    /// internally consistent: lock implies light, the modulation register
    /// holds one of the two formats involved, and a reset always recovers
    /// a Ready, lit, locked module.
    #[test]
    fn failed_reconfigure_leaves_consistent_state(
        fault in arb_fault(),
        legacy in proptest::bool::ANY,
        from_idx in 0usize..6,
        to_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let from = Modulation::LADDER[from_idx];
        let to = Modulation::LADDER[to_idx];
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut bvt = Bvt::new(from);
        bvt.set_procedure(if legacy {
            ReconfigProcedure::Legacy
        } else {
            ReconfigProcedure::Efficient
        });
        bvt.inject_fault(fault);
        match bvt.reconfigure(to, &mut rng) {
            Ok(_) => {
                // No-op changes and corrupt-register faults don't trip.
                prop_assert_eq!(bvt.status(), BvtStatus::Ready);
                prop_assert!(bvt.laser_on() && bvt.locked());
                prop_assert_eq!(bvt.modulation(), to);
            }
            Err(BvtError::Timeout) => {
                // Command never reached the module: fully unchanged.
                prop_assert_eq!(bvt.status(), BvtStatus::Ready);
                prop_assert!(bvt.laser_on() && bvt.locked());
                prop_assert_eq!(bvt.modulation(), from);
            }
            Err(BvtError::ReconfigFailed { .. }) => {
                prop_assert_eq!(bvt.status(), BvtStatus::Faulted);
                // Lock implies light — never "locked in the dark".
                prop_assert!(!bvt.locked() || bvt.laser_on());
                let m = bvt.modulation();
                prop_assert!(m == from || m == to, "landed on {m}");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
        // Recovery is always possible and always complete.
        bvt.reset(&mut rng);
        prop_assert_eq!(bvt.status(), BvtStatus::Ready);
        prop_assert!(bvt.laser_on() && bvt.locked());
        prop_assert_eq!(bvt.pending_fault(), None);
    }

    /// The quarantine pin is never an infeasible modulation: after any
    /// streak of faulted changes, a link is either pinned at a rate its
    /// last-known-good SNR supports, or declared down — never "up" at a
    /// rate the signal cannot carry.
    #[test]
    fn quarantine_never_pins_infeasible_modulation(
        fault in arb_fault(),
        snr_db in 6.8f64..15.0,
        to_idx in 0usize..6,
        seed in 0u64..500,
    ) {
        let mut wan = builders::fig7_example();
        let link = LinkId(0);
        let snr = Db(snr_db);
        wan.set_snr(link, snr);
        let config = ControllerConfig {
            auto_upgrade: false,
            max_retries: 1,
            quarantine_after: 2,
            ..ControllerConfig::default()
        };
        let table = config.table.clone();
        let n_links = wan.n_links();
        let mut controller = Controller::new(config, n_links, seed);
        let now = SimTime::EPOCH;
        // Establish last-known-good telemetry on every link.
        let readings: Vec<(LinkId, Option<Db>)> =
            (0..n_links).map(|l| (LinkId(l), Some(wan.link(LinkId(l)).snr))).collect();
        controller.sweep(&mut wan, &readings, now);

        // Hammer the link with faulted changes until it quarantines.
        let target = Modulation::LADDER[to_idx];
        for _ in 0..4 {
            if controller.is_quarantined(link, now) {
                break;
            }
            controller.inject_bvt_fault(link, fault);
            let _ = controller.execute_change(&mut wan, link, target, now);
        }

        if controller.is_quarantined(link, now) {
            let pinned = wan.link(link).modulation;
            prop_assert!(
                controller.is_down(link) || table.supports(snr, pinned),
                "quarantined at {pinned} with {snr} (down={})",
                controller.is_down(link)
            );
        }
    }
}
