//! End-to-end integration: the paper's Fig. 7 scenario driven through the
//! top-level [`DynamicCapacityNetwork`] API with several TE algorithms.

use rwc::core::controller::ControllerConfig;
use rwc::core::network::DynamicCapacityNetwork;
use rwc::core::{AugmentConfig, PenaltyPolicy};
use rwc::te::b4::B4Te;
use rwc::te::cspf::CspfTe;
use rwc::te::swan::SwanTe;
use rwc::te::{DemandMatrix, Priority, TeAlgorithm, TeSolver};
use rwc::topology::builders;
use rwc::topology::wan::{LinkId, WanTopology};
use rwc::util::time::{SimDuration, SimTime};
use rwc::util::units::{Db, Gbps};

fn fig7_wan() -> WanTopology {
    let mut wan = builders::fig7_example();
    for (id, _) in wan.clone().links() {
        wan.set_snr(id, Db(7.5));
    }
    wan.set_snr(LinkId(0), Db(13.0));
    wan.set_snr(LinkId(1), Db(13.0));
    wan
}

fn grown_demands(wan: &WanTopology) -> DemandMatrix {
    let a = wan.node_by_name("A").unwrap();
    let b = wan.node_by_name("B").unwrap();
    let c = wan.node_by_name("C").unwrap();
    let d = wan.node_by_name("D").unwrap();
    let mut dm = DemandMatrix::new();
    dm.add(a, b, Gbps(125.0), Priority::Elastic);
    dm.add(c, d, Gbps(125.0), Priority::Elastic);
    dm
}

fn exact() -> TeSolver {
    TeSolver::builder().build().expect("default TE solver")
}

fn network(wan: WanTopology) -> DynamicCapacityNetwork {
    DynamicCapacityNetwork::new(
        wan,
        AugmentConfig { penalty: PenaltyPolicy::paper_example(), ..Default::default() },
        ControllerConfig::default(),
        1,
    )
}

#[test]
fn exact_te_fully_routes_and_upgrades_once() {
    let wan = fig7_wan();
    let demands = grown_demands(&wan);
    let mut net = network(wan);
    let round = net.te_round(&demands, &exact(), SimTime::EPOCH);
    assert!((round.throughput - 250.0).abs() < 1e-6, "throughput={}", round.throughput);
    assert_eq!(round.translation.upgrades.len(), 1, "{:?}", round.translation.upgrades);
    // Static links could not have carried both demands fully.
    assert!(round.static_throughput < 250.0 - 1.0);
}

#[test]
fn every_te_algorithm_benefits_from_augmentation() {
    let algorithms: Vec<(&str, Box<dyn TeAlgorithm>)> = vec![
        ("swan", Box::new(SwanTe::default())),
        ("b4", Box::new(B4Te::default())),
        ("cspf", Box::new(CspfTe::default())),
        ("exact", Box::new(exact())),
    ];
    for (name, algo) in algorithms {
        let wan = fig7_wan();
        let demands = grown_demands(&wan);
        let mut net = network(wan);
        let round = net.te_round(&demands, algo.as_ref(), SimTime::EPOCH);
        assert!(
            round.throughput >= round.static_throughput - 1.0,
            "{name}: dynamic {} must not trail static {}",
            round.throughput,
            round.static_throughput
        );
        assert!(
            round.throughput > 230.0,
            "{name}: dynamic throughput only {}",
            round.throughput
        );
    }
}

#[test]
fn applied_upgrades_persist_into_next_round() {
    let wan = fig7_wan();
    let demands = grown_demands(&wan);
    let mut net = network(wan);
    let first = net.te_round(&demands, &exact(), SimTime::EPOCH);
    assert!(first.translation.requires_changes());
    // Same demands again: capacity is already there, so no new upgrades.
    let second = net.te_round(
        &demands,
        &exact(),
        SimTime::EPOCH + SimDuration::from_minutes(15),
    );
    assert!(!second.translation.requires_changes(), "{:?}", second.translation.upgrades);
    assert!((second.static_throughput - 250.0).abs() < 1e-6, "upgraded topology carries all");
}

#[test]
fn snr_collapse_walks_down_then_te_adapts() {
    let wan = fig7_wan();
    let demands = grown_demands(&wan);
    let mut net = network(wan);
    let healthy = net.te_round(&demands, &exact(), SimTime::EPOCH);
    // Link 0 collapses to 4 dB: crawl at 50 G instead of failing.
    let sweep =
        net.ingest(&[(LinkId(0), Some(Db(4.0)))], SimTime::EPOCH + SimDuration::from_hours(1));
    assert_eq!(sweep.failures_avoided, 1);
    assert_eq!(net.wan().link(LinkId(0)).modulation, rwc::optics::Modulation::DpBpsk50);
    let degraded = net.te_round(
        &demands,
        &exact(),
        SimTime::EPOCH + SimDuration::from_hours(1) + SimDuration::from_minutes(1),
    );
    // The network reroutes around the crawling link (possibly upgrading
    // the other horizontal link to compensate): throughput never exceeds
    // the healthy value but stays far above a binary-failure topology.
    assert!(degraded.throughput <= healthy.throughput + 1e-6);
    assert!(degraded.throughput > 150.0, "throughput={}", degraded.throughput);
    // A binary policy would have lost the whole 100 G link instead of
    // keeping 50 G of it.
    assert!(net.wan().link(LinkId(0)).capacity() == Gbps(50.0));
}

#[test]
fn consistent_update_plan_accompanies_upgrades() {
    let wan = fig7_wan();
    let demands = grown_demands(&wan);
    let mut net = network(wan);
    let round = net.te_round(&demands, &exact(), SimTime::EPOCH);
    let plan = round.update_plan.expect("upgrades need an update plan");
    // Hitless (efficient BVT): the interim state keeps the links alive at
    // the lower rate, so interim throughput stays close to final.
    assert!(plan.interim.total > 0.0);
    assert!(plan.final_solution.total >= plan.interim.total - 1e-6);
    assert!(round.reconfig_downtime < SimDuration::from_secs(1), "efficient BVT");
}
