//! Integration: the simplex LP as ground truth for every combinatorial
//! solver, on structured (non-random) instances that exercise deeper
//! paths than the unit tests.

use rwc::flow::mcf::{greedy_mcf, max_multicommodity_flow, Commodity};
use rwc::flow::network::FlowNetwork;
use rwc::lp::flows::{max_flow_lp_value, max_multicommodity_lp_total, min_cost_max_flow_lp};
use rwc::te::demand::DemandMatrix;
use rwc::te::problem::TeProblem;
use rwc::topology::builders;
use rwc::util::units::Gbps;

/// Abilene's directed expansion as plain edge lists.
fn abilene_edges() -> (usize, Vec<(usize, usize, f64)>) {
    let wan = builders::abilene();
    let p = TeProblem::from_wan(&wan, &DemandMatrix::new());
    let edges = p.net.edges().iter().map(|e| (e.from, e.to, e.capacity)).collect();
    (p.net.n_nodes(), edges)
}

#[test]
fn dinic_matches_lp_on_abilene() {
    let (n, edges) = abilene_edges();
    let mut net = FlowNetwork::new(n);
    for &(u, v, c) in &edges {
        net.add_edge(u, v, c, 0.0);
    }
    for (src, dst) in [(0usize, 10usize), (2, 9), (5, 0)] {
        let dinic = rwc::flow::max_flow(&net, src, dst);
        let lp = max_flow_lp_value(n, &edges, src, dst);
        assert!(
            (dinic.value - lp).abs() < 1e-6,
            "{src}->{dst}: dinic {} vs lp {lp}",
            dinic.value
        );
    }
}

#[test]
fn min_cost_matches_lp_with_length_costs() {
    // Cost = route length: the min-cost max-flow then prefers short fiber.
    let wan = builders::abilene();
    let mut net = FlowNetwork::new(wan.n_nodes());
    let mut edges = Vec::new();
    for (_, l) in wan.links() {
        let c = l.capacity().value();
        net.add_edge(l.a.0, l.b.0, c, l.length_km);
        edges.push((l.a.0, l.b.0, c, l.length_km));
        net.add_edge(l.b.0, l.a.0, c, l.length_km);
        edges.push((l.b.0, l.a.0, c, l.length_km));
    }
    let mc = rwc::flow::min_cost_max_flow(&net, 0, 10);
    let (lp_value, lp_cost) = min_cost_max_flow_lp(wan.n_nodes(), &edges, 0, 10);
    assert!((mc.flow.value - lp_value).abs() < 1e-6);
    assert!((mc.cost - lp_cost).abs() < 1e-3, "ssp {} vs lp {}", mc.cost, lp_cost);
}

#[test]
fn mcf_solvers_bracket_the_lp_optimum() {
    // Three commodities fighting over Abilene's west-east cut.
    let (n, edges) = abilene_edges();
    let mut net = FlowNetwork::new(n);
    for &(u, v, c) in &edges {
        net.add_edge(u, v, c, 0.0);
    }
    let commodities = vec![
        Commodity { source: 0, sink: 10, demand: 150.0 }, // SEA→NYC
        Commodity { source: 1, sink: 9, demand: 150.0 },  // SNV→WDC
        Commodity { source: 2, sink: 8, demand: 150.0 },  // LAX→ATL
    ];
    let triples: Vec<(usize, usize, f64)> =
        commodities.iter().map(|c| (c.source, c.sink, c.demand)).collect();
    let lp = max_multicommodity_lp_total(n, &edges, &triples);
    let gk = max_multicommodity_flow(&net, &commodities, 0.05);
    gk.validate(&net, &commodities).unwrap();
    let greedy = greedy_mcf(&net, &commodities);
    greedy.validate(&net, &commodities).unwrap();
    assert!(gk.total <= lp + 1e-6, "gk {} above LP {lp}", gk.total);
    assert!(greedy.total <= lp + 1e-6);
    assert!(gk.total >= lp * 0.8, "gk {} too far below LP {lp}", gk.total);
}

#[test]
fn gravity_matrix_total_dominated_by_network_cut() {
    // Sanity: offered >> capacity means satisfaction < 1 and the exact TE
    // cannot exceed the LP bound either.
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(10_000.0), 1);
    let p = TeProblem::from_wan(&wan, &dm);
    use rwc::te::TeAlgorithm;
    let swan = rwc::te::swan::SwanTe::default().solve(&p);
    swan.validate(&p).unwrap();
    assert!(swan.satisfaction(&p) < 0.6, "sat={}", swan.satisfaction(&p));
}
