//! Integration: telemetry generation → analysis, validated against the
//! generator's ground-truth event schedule.

use rwc::optics::ModulationTable;
use rwc::telemetry::analysis::{episodes_below, LinkAnalysis};
use rwc::telemetry::events::EventKind;
use rwc::telemetry::{FleetConfig, FleetGenerator};
use rwc::util::time::SimDuration;
use rwc::util::units::Db;

fn small_fleet() -> FleetGenerator {
    FleetGenerator::new(FleetConfig {
        n_fibers: 2,
        wavelengths_per_fiber: 10,
        horizon: SimDuration::from_days(90),
        ..FleetConfig::paper()
    })
}

#[test]
fn loss_of_light_events_are_detected_as_100g_failures() {
    let gen = small_fleet();
    let tick = gen.config().tick;
    for link_id in 0..gen.n_links() {
        let link = gen.link(link_id);
        let episodes = episodes_below(&link.trace, Db(6.5));
        for event in link.events.filter(|e| matches!(e.kind, EventKind::LossOfLight)) {
            // Skip events too short to span a sample or cut off by the
            // horizon.
            if event.duration < tick * 2 || event.end() >= link.trace.time_at(link.trace.len() - 1)
            {
                continue;
            }
            let detected = episodes.iter().any(|ep| {
                ep.start <= event.end() && event.start <= ep.start + ep.duration + tick
            });
            assert!(
                detected,
                "link {link_id}: LOL event at {:?} not detected as failure",
                event.start
            );
        }
    }
}

#[test]
fn shallow_dips_do_not_fail_healthy_links() {
    // A link with a strong baseline and only shallow dips must never fall
    // below the 100 G threshold.
    let gen = FleetGenerator::new(FleetConfig {
        n_fibers: 1,
        wavelengths_per_fiber: 5,
        horizon: SimDuration::from_days(90),
        fiber_baseline_mean_db: 14.0,
        fiber_baseline_sd_db: 0.01,
        wavelength_jitter_sd_db: 0.1,
        baseline_clamp_db: (13.5, 16.0),
        noisy_link_fraction: 0.0,
        deep_dip_rate: 0.0,
        link_lol_rate: 0.0,
        fiber_cut_rate: 0.0,
        step_rate: 0.0,
        ..FleetConfig::paper()
    });
    let table = ModulationTable::paper_default();
    for link_id in 0..gen.n_links() {
        let link = gen.link(link_id);
        let analysis = LinkAnalysis::new(&link.trace, &table);
        assert!(
            analysis.failures_at(rwc::optics::Modulation::DpQpsk100).is_empty(),
            "link {link_id} failed at 100 G despite shallow-only events"
        );
        // And its HDR floor supports 200 G.
        assert_eq!(analysis.feasible, Some(rwc::optics::Modulation::Dp16Qam200));
    }
}

#[test]
fn range_reflects_ground_truth_events() {
    let gen = small_fleet();
    for link_id in 0..gen.n_links() {
        let link = gen.link(link_id);
        let had_deep_event = link.events.events().iter().any(|e| match e.kind {
            EventKind::LossOfLight => e.duration >= gen.config().tick * 2,
            EventKind::Dip { depth_db } => depth_db > 6.0 && e.duration >= gen.config().tick * 2,
            EventKind::Step { .. } => false,
        });
        let range = link.trace.range().value();
        if had_deep_event {
            assert!(range > 4.0, "link {link_id}: deep event but range only {range:.2} dB");
        }
    }
}

#[test]
fn analysis_consistent_across_regeneration() {
    // The full pipeline is a pure function of the seed.
    let a = small_fleet().fleet_analysis(&ModulationTable::paper_default());
    let b = small_fleet().fleet_analysis(&ModulationTable::paper_default());
    assert_eq!(a.len(), b.len());
    assert_eq!(a.total_gain(), b.total_gain());
    assert_eq!(
        a.fraction_hdr_below(Db(2.0)),
        b.fraction_hdr_below(Db(2.0))
    );
}

#[test]
fn guard_margin_table_reduces_feasible_capacity() {
    let gen = small_fleet();
    let aggressive = gen.fleet_analysis(&ModulationTable::paper_default());
    let conservative = gen.fleet_analysis(&ModulationTable::with_margin(Db(1.5)));
    assert!(
        conservative.total_gain() < aggressive.total_gain(),
        "a guard margin must cost capacity: {} vs {}",
        conservative.total_gain(),
        aggressive.total_gain()
    );
}
