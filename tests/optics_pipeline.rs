//! Integration: the optical-physics chain — link budget → modulation
//! feasibility → constellation error rates → BVT reconfiguration — hangs
//! together consistently.

use rwc::optics::ber::{ser_mqam, ser_mpsk};
use rwc::optics::bvt::{Bvt, ReconfigProcedure};
use rwc::optics::constellation::{awgn_trial, Constellation};
use rwc::optics::{LinkBudget, Modulation, ModulationTable};
use rwc::util::rng::Xoshiro256;
use rwc::util::units::Db;

#[test]
fn reach_determines_ladder_position_monotonically() {
    // As routes lengthen, the feasible rung can only fall.
    let table = ModulationTable::paper_default();
    let mut last_capacity = f64::INFINITY;
    for km in [80.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0, 4800.0, 7000.0] {
        let snr = LinkBudget::for_route_km(km).snr();
        let cap = table.feasible_capacity(snr).value();
        assert!(cap <= last_capacity, "{km} km: {cap} > {last_capacity}");
        last_capacity = cap;
    }
    // The ladder extremes are reachable: metro does 200 G, and even very
    // long routes hold the 50 G crawl rate.
    assert_eq!(
        table.feasible(LinkBudget::for_route_km(100.0).snr()),
        Some(Modulation::Dp16Qam200)
    );
    assert!(table.feasible(LinkBudget::for_route_km(7000.0).snr()).is_some());
}

#[test]
fn thresholds_consistent_with_error_rate_theory() {
    // At each rung's threshold SNR, the (uncoded) symbol error rate of the
    // underlying constellation should be in a FEC-correctable band — and
    // one rung faster at the same SNR should be clearly broken.
    let cases = [
        (Modulation::DpQpsk100, 4usize),
        (Modulation::Dp16Qam200, 16usize),
    ];
    for (m, order) in cases {
        let snr = m.required_snr().to_linear();
        let ser = match order {
            4 => ser_mpsk(4, snr),
            16 => ser_mqam(16, snr),
            _ => unreachable!(),
        };
        assert!(
            (1e-4..0.3).contains(&ser),
            "{m}: SER at threshold = {ser:e} (should be FEC-correctable, not clean)"
        );
    }
    // 16QAM at the QPSK threshold is hopeless.
    let broken = ser_mqam(16, Modulation::DpQpsk100.required_snr().to_linear());
    assert!(broken > 0.1, "ser={broken}");
}

#[test]
fn monte_carlo_confirms_threshold_ordering() {
    let mut rng = Xoshiro256::seed_from_u64(77);
    // At 10 dB: QPSK nearly clean, 16QAM visibly erroring.
    let qpsk = awgn_trial(&Constellation::qpsk(), Db(10.0), 50_000, &mut rng);
    let qam16 = awgn_trial(&Constellation::qam16(), Db(10.0), 50_000, &mut rng);
    assert!(qpsk.symbol_error_rate < 0.01, "qpsk ser={}", qpsk.symbol_error_rate);
    assert!(qam16.symbol_error_rate > 0.05, "16qam ser={}", qam16.symbol_error_rate);
}

#[test]
fn bvt_walks_the_whole_ladder_hitlessly() {
    let mut rng = Xoshiro256::seed_from_u64(88);
    let mut bvt = Bvt::new(Modulation::DpBpsk50);
    bvt.set_procedure(ReconfigProcedure::Efficient);
    let mut total_downtime = rwc::util::time::SimDuration::ZERO;
    for m in Modulation::LADDER.iter().skip(1) {
        let report = bvt.reconfigure(*m, &mut rng).unwrap();
        assert!(bvt.laser_on(), "laser must stay lit");
        total_downtime += report.downtime;
    }
    assert_eq!(bvt.modulation(), Modulation::Dp16Qam200);
    // Five hitless steps: well under a second in total.
    assert!(
        total_downtime < rwc::util::time::SimDuration::from_secs(1),
        "{total_downtime}"
    );
    assert_eq!(bvt.history().len(), 5);
}

#[test]
fn snr_capacity_feedback_loop() {
    // A link budget gives an SNR; the table picks the rate; the BVT
    // reconfigures to it; capacity then matches what the SNR supports.
    let table = ModulationTable::paper_default();
    let mut rng = Xoshiro256::seed_from_u64(99);
    let mut bvt = Bvt::new(Modulation::DpQpsk100);
    bvt.set_procedure(ReconfigProcedure::Efficient);
    for km in [200.0, 2400.0, 900.0] {
        let snr = LinkBudget::for_route_km(km).snr();
        let target = table.feasible(snr).expect("route must carry something");
        bvt.reconfigure(target, &mut rng).unwrap();
        assert!(table.supports(snr, bvt.modulation()), "{km} km");
    }
}
