//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;
use rwc::core::augment::{augment, AugmentConfig};
use rwc::core::penalty::PenaltyPolicy;
use rwc::core::theorem::check_single_commodity;
use rwc::core::translate::translate;
use rwc::flow::network::FlowNetwork;
use rwc::optics::ModulationTable;
use rwc::te::demand::{DemandMatrix, Priority};
use rwc::te::problem::TeSolution;
use rwc::topology::graph::NodeId;
use rwc::topology::WanTopology;
use rwc::util::stats::highest_density_interval;
use rwc::util::units::{Db, Gbps};

/// Strategy: a connected random WAN with randomised SNR per link.
fn arb_wan() -> impl Strategy<Value = WanTopology> {
    (3usize..8, 0u64..1000).prop_map(|(n, seed)| {
        let mut wan = rwc::topology::random::waxman(&rwc::topology::random::WaxmanConfig {
            n_nodes: n,
            seed,
            ..Default::default()
        });
        let mut rng = rwc::util::rng::Xoshiro256::seed_from_u64(seed ^ 0x5eed);
        for (id, _) in wan.clone().links() {
            wan.set_snr(id, Db(rng.uniform_in(6.6, 14.5)));
        }
        wan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dinic's flow always satisfies capacity + conservation, and matches
    /// the LP optimum.
    #[test]
    fn max_flow_is_feasible_and_optimal(
        edges in proptest::collection::vec((0usize..6, 0usize..6, 0.5f64..20.0), 4..18)
    ) {
        let mut net = FlowNetwork::new(6);
        let mut edge_list = Vec::new();
        for (u, v, cap) in edges {
            if u != v {
                net.add_edge(u, v, cap, 0.0);
                edge_list.push((u, v, cap));
            }
        }
        prop_assume!(!edge_list.is_empty());
        let flow = rwc::flow::max_flow(&net, 0, 5);
        prop_assert!(flow.validate(&net, 0, 5).is_ok());
        let lp = rwc::lp::flows::max_flow_lp_value(6, &edge_list, 0, 5);
        prop_assert!((flow.value - lp).abs() < 1e-6, "dinic {} vs lp {}", flow.value, lp);
    }

    /// Min-cost max-flow reaches the max-flow value and never beats the LP
    /// on cost.
    #[test]
    fn min_cost_flow_matches_lp(
        edges in proptest::collection::vec(
            (0usize..5, 0usize..5, 1.0f64..15.0, 0.0f64..10.0), 4..14)
    ) {
        let mut net = FlowNetwork::new(5);
        let mut edge_list = Vec::new();
        for (u, v, cap, cost) in edges {
            if u != v {
                net.add_edge(u, v, cap, cost);
                edge_list.push((u, v, cap, cost));
            }
        }
        prop_assume!(!edge_list.is_empty());
        let mc = rwc::flow::min_cost_max_flow(&net, 0, 4);
        prop_assert!(mc.flow.validate(&net, 0, 4).is_ok());
        let (lp_value, lp_cost) = rwc::lp::flows::min_cost_max_flow_lp(5, &edge_list, 0, 4);
        prop_assert!((mc.flow.value - lp_value).abs() < 1e-6);
        prop_assert!(mc.cost <= lp_cost + 1e-6, "ssp cost {} vs lp {}", mc.cost, lp_cost);
        prop_assert!(mc.cost >= lp_cost - 1e-6, "ssp cost {} vs lp {}", mc.cost, lp_cost);
    }

    /// The 1-D highest-density interval always covers the requested mass
    /// and is bounded by the range.
    #[test]
    fn hdi_invariants(
        mut samples in proptest::collection::vec(-50.0f64..50.0, 1..200),
        coverage in 0.05f64..1.0
    ) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = highest_density_interval(&samples, coverage);
        prop_assert!(lo <= hi);
        prop_assert!(lo >= samples[0] && hi <= *samples.last().unwrap());
        let inside = samples.iter().filter(|&&x| x >= lo && x <= hi).count();
        let need = (coverage * samples.len() as f64).ceil() as usize;
        prop_assert!(inside >= need.min(samples.len()));
    }

    /// Theorem 1 holds on arbitrary random WANs and endpoint pairs.
    #[test]
    fn theorem1_equivalence(wan in arb_wan(), pair in (0usize..8, 1usize..7)) {
        let src = NodeId(pair.0 % wan.n_nodes());
        let dst = NodeId((pair.0 + pair.1) % wan.n_nodes());
        prop_assume!(src != dst);
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::Uniform(5.0),
            ..Default::default()
        };
        let report = check_single_commodity(&wan, &cfg, src, dst);
        prop_assert!(report.holds, "{report:?}");
        prop_assert!(report.upgraded_value + 1e-9 >= report.static_value);
    }

    /// Translation round-trip: folded flows stay within the upgraded
    /// capacities, totals are preserved, upgrades are minimal rungs.
    #[test]
    fn translation_feasibility(wan in arb_wan(), volume in 10.0f64..400.0, seed in 0u64..100) {
        let demands = DemandMatrix::gravity(&wan, Gbps(volume), seed);
        let cfg = AugmentConfig {
            penalty: PenaltyPolicy::Uniform(1.0),
            ..Default::default()
        };
        let aug = augment(&wan, &demands, &cfg, &[]);
        use rwc::te::TeAlgorithm;
        let sol = rwc::te::swan::SwanTe::default().solve(&aug.problem);
        let tr = translate(&aug, &wan, &sol).unwrap();
        // Aggregate flow preserved by folding.
        let aug_total: f64 = sol.edge_flows.iter().sum();
        let real_total: f64 = tr.real_edge_flows.iter().sum();
        prop_assert!((aug_total - real_total).abs() < 1e-6);
        // Flows feasible on the upgraded topology.
        let mut upgraded = wan.clone();
        for &(id, m) in &tr.upgrades {
            upgraded.set_modulation(id, m);
        }
        for (id, link) in upgraded.links() {
            let cap = link.capacity().value() + 1e-6;
            prop_assert!(tr.real_edge_flows[2 * id.0] <= cap);
            prop_assert!(tr.real_edge_flows[2 * id.0 + 1] <= cap);
        }
        // Each upgrade is the minimal sufficient rung: one rung lower
        // would not cover the folded flow.
        for &(id, m) in &tr.upgrades {
            if let Some(lower) = m.step_down() {
                if lower.capacity() > wan.link(id).capacity() {
                    let needed = tr.real_edge_flows[2 * id.0]
                        .max(tr.real_edge_flows[2 * id.0 + 1]);
                    prop_assert!(
                        lower.capacity().value() + 1e-6 < needed,
                        "link {id:?}: {lower} would already cover {needed}"
                    );
                }
            }
        }
    }

    /// The controller never selects an infeasible modulation and never
    /// upgrades without its hysteresis margin.
    #[test]
    fn controller_decisions_feasible(snr in 0.0f64..20.0, current_idx in 0usize..6) {
        use rwc::core::controller::{Controller, ControllerConfig, Decision};
        let current = rwc::optics::Modulation::LADDER[current_idx];
        let config = ControllerConfig::default();
        let margin = config.upgrade_margin;
        let controller = Controller::new(config, 1, 0);
        let table = ModulationTable::paper_default();
        match controller.decide(
            rwc::topology::wan::LinkId(0),
            current,
            Db(snr),
            rwc::util::time::SimTime::EPOCH + rwc::util::time::SimDuration::from_hours(2),
        ) {
            Decision::StepTo(m) => {
                prop_assert!(table.supports(Db(snr), m), "stepped to infeasible {m}");
                if m.capacity() > current.capacity() {
                    let t = table.threshold(m).unwrap();
                    prop_assert!(Db(snr) >= t + margin, "upgrade without margin");
                }
            }
            Decision::Hold => {
                prop_assert!(table.supports(Db(snr), current), "held an infeasible rate");
            }
            Decision::Down => {
                prop_assert!(table.feasible(Db(snr)).is_none(), "went down with a feasible rung");
            }
        }
    }

    /// Demand matrices survive JSON round-trips (the operator-facing
    /// interchange format).
    #[test]
    fn demand_matrix_serde_roundtrip(volumes in proptest::collection::vec(0.1f64..500.0, 1..20)) {
        let mut dm = DemandMatrix::new();
        for (i, v) in volumes.iter().enumerate() {
            dm.add(
                NodeId(i % 5),
                NodeId((i + 1) % 5 + 5),
                Gbps(*v),
                Priority::ALL[i % 3],
            );
        }
        let json = serde_json::to_string(&dm).unwrap();
        let back: DemandMatrix = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(dm, back);
    }
}

// Non-proptest helper used above: TeSolution must stay importable from
// integration context (compile-time check of the public API surface).
#[allow(dead_code)]
fn api_surface(_: TeSolution) {}
