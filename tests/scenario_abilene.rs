//! Integration: the full multi-period pipeline on a real research
//! topology — telemetry ticks, controller safety actions, hourly TE rounds
//! through the graph abstraction, against the binary counterfactual.

use rwc::core::scenario::{Scenario, ScenarioConfig};
use rwc::te::swan::SwanTe;
use rwc::te::DemandMatrix;
use rwc::telemetry::FleetConfig;
use rwc::topology::builders;
use rwc::util::time::SimDuration;
use rwc::util::units::Gbps;

fn abilene_scenario(days: u64, lol_rate: f64) -> Scenario {
    let wan = builders::abilene();
    // Gravity matrix thinned to its 24 largest entries (full 330-demand
    // matrices are exercised in the release-mode repro harness; the test
    // keeps the hourly-round structure while staying fast in dev builds).
    let full = DemandMatrix::gravity(&wan, Gbps(wan.total_capacity().value()), 31);
    let mut top: Vec<_> = full.demands().to_vec();
    top.sort_by(|a, b| b.volume.partial_cmp(&a.volume).unwrap());
    let mut demands = DemandMatrix::new();
    for d in top.into_iter().take(24) {
        demands.add(d.from, d.to, d.volume, d.priority);
    }
    // Rescale the thinned matrix back to an overload that forces upgrades.
    let factor = 1.4 * wan.total_capacity().value() / demands.total().value();
    let demands = demands.scaled(factor);
    let fleet = FleetConfig {
        n_fibers: 2,
        wavelengths_per_fiber: 7, // 14 streams for 14 links
        horizon: SimDuration::from_days(days + 1),
        fiber_baseline_mean_db: 12.8,
        fiber_baseline_sd_db: 0.8,
        wavelength_jitter_sd_db: 0.6,
        link_lol_rate: lol_rate,
        ..FleetConfig::paper()
    };
    Scenario::builder(wan, fleet, demands)
        .config(ScenarioConfig::default())
        .build()
        .expect("abilene scenario wiring is valid")
}

#[test]
fn abilene_week_dynamic_dominates() {
    let mut scenario = abilene_scenario(2, 0.25);
    let report = scenario.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
    assert_eq!(report.samples.len(), 48, "hourly rounds over 2 days");
    // Dynamic throughput never falls meaningfully below the binary
    // counterfactual, and wins on average under this overload.
    for s in &report.samples {
        assert!(
            s.throughput >= s.static_throughput - 10.0,
            "at {}: dynamic {} vs binary {}",
            s.time,
            s.throughput,
            s.static_throughput
        );
    }
    assert!(report.mean_gain() > 0.0, "gain={}", report.mean_gain());
}

#[test]
fn degradations_become_flaps_not_failures() {
    // Crank loss-of-light + dips so the window contains real impairments.
    let mut scenario = abilene_scenario(6, 12.0);
    let report = scenario.run(SimDuration::from_days(6), &SwanTe::default()).unwrap();
    assert!(
        report.flaps > 0 || report.hard_downs > 0,
        "impairment-heavy window must show controller activity"
    );
    // Efficient BVT: total reconfiguration downtime stays tiny even with
    // frequent changes.
    assert!(
        report.reconfig_downtime < SimDuration::from_minutes(5),
        "{}",
        report.reconfig_downtime
    );
}

#[test]
fn churn_stays_bounded_round_to_round() {
    let mut scenario = abilene_scenario(2, 0.25);
    let report = scenario.run(SimDuration::from_days(2), &SwanTe::default()).unwrap();
    // Total capacity of Abilene bounds how much traffic can move per
    // round; churn beyond ~2× capacity per round would indicate thrash.
    let cap = builders::abilene().total_capacity().value();
    for s in report.samples.iter().skip(1) {
        assert!(s.churn <= 2.0 * cap, "round churn {} vs capacity {cap}", s.churn);
    }
}
