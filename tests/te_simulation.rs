//! Integration: the throughput-gain simulation across real topologies and
//! TE algorithms (the paper's closing experiment), plus consistent-update
//! behaviour under both BVT procedures.

use rwc::core::{augment, translate, AugmentConfig, PenaltyPolicy};
use rwc::te::b4::B4Te;
use rwc::te::cspf::CspfTe;
use rwc::te::metrics;
use rwc::te::swan::SwanTe;
use rwc::te::updates::{plan_capacity_changes, CapacityChange};
use rwc::te::{DemandMatrix, TeAlgorithm};
use rwc::te::problem::TeProblem;
use rwc::topology::builders;
use rwc::util::units::{Db, Gbps};

#[test]
fn abilene_dynamic_beats_static_under_pressure() {
    let wan = builders::abilene();
    // Load the network to 1.5× its half-capacity gravity baseline.
    let dm = DemandMatrix::gravity(&wan, Gbps(wan.total_capacity().value() * 0.75), 3);
    let algos: Vec<Box<dyn TeAlgorithm>> = vec![
        Box::new(SwanTe::default()),
        Box::new(B4Te::default()),
        Box::new(CspfTe::default()),
    ];
    for algo in algos {
        let static_sol = algo.solve(&TeProblem::from_wan(&wan, &dm));
        let cfg = AugmentConfig { penalty: PenaltyPolicy::Uniform(1.0), ..Default::default() };
        let aug = augment(&wan, &dm, &cfg, &[]);
        let dyn_sol = algo.solve(&aug.problem);
        assert!(
            dyn_sol.total >= static_sol.total - 1.0,
            "{}: dynamic {} < static {}",
            algo.name(),
            dyn_sol.total,
            static_sol.total
        );
        // Translation must produce a feasible plan.
        let tr = translate(&aug, &wan, &dyn_sol).unwrap();
        let mut upgraded = wan.clone();
        for &(id, m) in &tr.upgrades {
            upgraded.set_modulation(id, m);
        }
        for (id, link) in upgraded.links() {
            let cap = link.capacity().value() + 1e-6;
            assert!(tr.real_edge_flows[2 * id.0] <= cap, "{} link {id:?}", algo.name());
            assert!(tr.real_edge_flows[2 * id.0 + 1] <= cap, "{} link {id:?}", algo.name());
        }
    }
}

#[test]
fn swan_gains_exceed_cspf_gains_are_both_positive() {
    // Centralised TE (SWAN) extracts at least as much dynamic-capacity
    // benefit as the order-dependent CSPF baseline on a loaded network.
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(wan.total_capacity().value() * 1.2), 9);
    let cfg = AugmentConfig { penalty: PenaltyPolicy::Uniform(1.0), ..Default::default() };
    let aug = augment(&wan, &dm, &cfg, &[]);
    let swan = SwanTe::default().solve(&aug.problem);
    let cspf = CspfTe::default().solve(&aug.problem);
    assert!(
        swan.total >= cspf.total * 0.95,
        "swan {} should be at least competitive with cspf {}",
        swan.total,
        cspf.total
    );
}

#[test]
fn consistent_updates_bound_interim_damage() {
    let mut wan = builders::abilene();
    // Give one loaded link upgrade headroom and plan its upgrade.
    let link = rwc::topology::wan::LinkId(0);
    wan.set_snr(link, Db(13.5));
    let dm = DemandMatrix::gravity(&wan, Gbps(900.0), 5);
    let algo = SwanTe::default();
    let change = CapacityChange { link, to: rwc::optics::Modulation::Dp16Qam200 };
    let current = algo.solve(&TeProblem::from_wan(&wan, &dm));
    let hitless = plan_capacity_changes(&wan, &dm, &[change], &algo, true, Some(&current));
    let legacy = plan_capacity_changes(&wan, &dm, &[change], &algo, false, Some(&current));
    // Hitless: the interim keeps the link alive, so it cannot do worse
    // than the drained interim.
    assert!(hitless.interim.total >= legacy.interim.total - 1.0);
    // Both end in the same final state.
    assert!((hitless.final_solution.total - legacy.final_solution.total).abs() < 1.0);
    // Churn is accounted and finite.
    assert!(hitless.total_churn().is_finite());
    assert!(legacy.total_churn() >= 0.0);
}

#[test]
fn max_utilisation_stays_bounded_after_translation() {
    let wan = builders::abilene();
    let dm = DemandMatrix::gravity(&wan, Gbps(2_000.0), 13);
    let cfg = AugmentConfig { penalty: PenaltyPolicy::Uniform(1.0), ..Default::default() };
    let aug = augment(&wan, &dm, &cfg, &[]);
    let sol = SwanTe::default().solve(&aug.problem);
    sol.validate(&aug.problem).unwrap();
    assert!(metrics::max_utilisation(&aug.problem, &sol) <= 1.0 + 1e-6);
    // Jain fairness is defined and sane.
    let fairness = metrics::jain_fairness(&aug.problem, &sol);
    assert!((0.0..=1.0 + 1e-9).contains(&fairness));
}
