//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benchmarks compile and run as smoke tests: each `iter` call executes the
//! closure a handful of times and reports wall-clock time per iteration.
//! There is no statistical analysis, warm-up, or HTML report — the goal is
//! that `cargo test`/`cargo bench` exercise every bench body cheaply and
//! deterministically in an offline environment.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// Iterations per `iter` call. Kept tiny so `cargo test` (which runs
/// `harness = false` bench targets) stays fast.
const ITERS: u32 = 3;

/// Re-export used by `b.iter(|| black_box(...))` patterns.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and reports per-iteration timing.
#[derive(Debug, Default)]
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Times `routine` over a few iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        let per_iter = start.elapsed() / ITERS;
        println!("    {: >12?}/iter", per_iter);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {id}");
        f(&mut Bencher::default());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: group_name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut label = String::new();
        let _ = write!(label, "{}/{}", self.name, id);
        println!("bench: {label}");
        f(&mut Bencher::default(), input);
        self
    }

    /// Runs an unparameterised benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {}/{}", self.name, id);
        f(&mut Bencher::default());
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        for n in [10u64, 20] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
