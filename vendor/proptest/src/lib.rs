//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro, range/tuple/`prop_map` strategies,
//! `collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test's module path and
//! name), so failures reproduce across runs. There is no shrinking: a
//! failing case panics with the assertion message, and the generated
//! arguments can be recovered by re-running the deterministic stream.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// Type of the generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64(self.start, self.end)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Widen the half-open sample to occasionally hit the endpoint.
            let (lo, hi) = (*self.start(), *self.end());
            let v = rng.uniform_f64(lo, hi + (hi - lo) * 1e-9 + f64::MIN_POSITIVE);
            v.min(hi)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.uniform_f64(f64::from(self.start), f64::from(self.end)) as f32
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((lo as i128) + off) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { (rng.next_u64() % span) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (minimal) case runner: configuration, RNG, and case outcomes.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert*` failed; the test fails with this message.
        Fail(String),
    }

    /// Deterministic splitmix64 RNG, seeded from the test's full path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test (deterministic across runs).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` tests expect in scope.

    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry point; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $(
         // Captures doc comments AND the `#[test]` attribute itself, which
         // are re-emitted verbatim on the generated zero-argument fn.
         $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).saturating_add(100);
                while __passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest: too many rejected cases ({} passed of {} wanted)",
                            __passed, __config.cases
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __attempts, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
}

/// Rejects the current case (it is retried with fresh inputs) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.5, n in 3usize..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(mut v in crate::collection::vec(0u64..10, 2..6)) {
            v.sort_unstable();
            prop_assert!(v.len() >= 2 && v.len() < 6, "len={}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_and_assume(pair in (1u64..50, 1u64..50).prop_map(|(a, b)| (a, b))) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
