//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The workspace implements its own PRNG ([`rwc_util::rng::Xoshiro256`]) and
//! only needs the `RngCore` trait so the generator stays interoperable with
//! `rand`-shaped call sites. The build environment has no access to
//! crates.io, so this crate provides just that surface with the same
//! signatures as `rand 0.8`.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type returned by fallible `RngCore` methods.
///
/// The workspace's generators are infallible; this exists only so
/// `try_fill_bytes` has the upstream signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
