//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate supplies
//! the pieces the workspace actually exercises: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums (no `#[serde(...)]`
//! attributes), plus the trait surface `serde_json` needs to round-trip
//! values. The data model is a self-describing [`Content`] tree: derived
//! `Serialize` lowers a value into `Content`, derived `Deserialize` lifts it
//! back, and `serde_json` renders/parses the tree. Representation follows
//! upstream serde's JSON conventions (newtype structs are transparent, unit
//! enum variants are strings, data-carrying variants are single-entry
//! maps), so artifacts stay readable and diffable.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value — the crate's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered map (insertion order is preserved for deterministic output).
    Map(Vec<(String, Content)>),
}

/// A static `Null`, used for absent map fields so `Option` fields decode to
/// `None` (mirroring serde's `missing_field` fallback).
pub const NULL: Content = Content::Null;

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (rejects fractional floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and fractional floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) => u64::try_from(v).ok(),
            Content::U64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks a field up in a map body; absent fields read as `Null` so that
/// `Option` fields deserialize to `None`.
pub fn map_field<'a>(map: &'a [(String, Content)], name: &str) -> &'a Content {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, target: &str) -> Self {
        Self { msg: format!("expected {what} while deserializing {target}") }
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(variant: &str, target: &str) -> Self {
        Self { msg: format!("unknown variant `{variant}` for {target}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can lower itself into [`Content`].
pub trait Serialize {
    /// Lowers `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

/// A value that can be lifted back out of [`Content`].
pub trait Deserialize: Sized {
    /// Lifts a value out of the serialization data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(v).map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(v).map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().map(|v| v as f32).ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Deserialize for &'static str {
    /// Deserialises into a leaked `'static` string. Intended for
    /// config-sized payloads (e.g. named constants round-tripped in
    /// tests), where the one-off leak is harmless.
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c.as_seq().ok_or_else(|| DeError::expected("sequence", "Vec"))?;
        seq.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        let n = v.len();
        v.try_into().map_err(|_| DeError::custom(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A type usable as a JSON map key (maps serialize to objects with string
/// keys, as in `serde_json`).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!(
                    "invalid {} map key: {key:?}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c.as_map().ok_or_else(|| DeError::expected("map", "BTreeMap"))?;
        map.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?))).collect()
    }
}

impl<K: MapKey + Ord, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output; HashMap iteration order is not
        // stable and serialized artifacts must be byte-reproducible.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K: MapKey + Ord + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c.as_map().ok_or_else(|| DeError::expected("map", "HashMap"))?;
        map.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?))).collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_reads_missing_field_as_none() {
        let map = vec![("present".to_string(), Content::I64(3))];
        let present: Option<i32> = Deserialize::from_content(map_field(&map, "present")).unwrap();
        let absent: Option<i32> = Deserialize::from_content(map_field(&map, "absent")).unwrap();
        assert_eq!(present, Some(3));
        assert_eq!(absent, None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u16::from_content(&Content::I64(7)).unwrap(), 7);
        assert_eq!(f64::from_content(&Content::I64(2)).unwrap(), 2.0);
        assert!(u8::from_content(&Content::I64(-1)).is_err());
        assert!(i8::from_content(&Content::I64(1000)).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let v = (1i32, "x".to_string(), 2.5f64);
        let c = v.to_content();
        let back: (i32, String, f64) = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);
    }
}
