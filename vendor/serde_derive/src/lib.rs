//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! offline serde shim.
//!
//! The derives target the shim's [`Content`] data model: `Serialize` lowers
//! a value into a `Content` tree and `Deserialize` lifts it back. Supported
//! shapes are the ones this workspace uses — plain structs (named, tuple,
//! unit) and enums (unit, newtype, tuple and struct variants), with
//! unconstrained type generics. `#[serde(...)]` attributes are not
//! supported and there is no `syn`/`quote` here: the input item is parsed
//! directly from the token stream (only names and arity matter — field
//! *types* are skipped, letting inference pick the right impls) and the
//! output is assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item being derived.
struct Input {
    name: String,
    /// Type-parameter names, in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    render(&item, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    render(&item, false)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let item_kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&toks, &mut i);

    match item_kind.as_str() {
        "struct" => loop {
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    return Input { name, generics, kind: Kind::NamedStruct(fields) };
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    return Input { name, generics, kind: Kind::TupleStruct(n) };
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    return Input { name, generics, kind: Kind::UnitStruct };
                }
                Some(_) => i += 1, // `where` clause tokens
                None => panic!("serde_derive: struct `{name}` has no body"),
            }
        },
        "enum" => loop {
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let variants = parse_variants(g.stream());
                    return Input { name, generics, kind: Kind::Enum(variants) };
                }
                Some(_) => i += 1,
                None => panic!("serde_derive: enum `{name}` has no body"),
            }
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Parses `<A, B, ...>` after the item name, returning type-parameter
/// names. Lifetimes and const parameters are skipped; bounds and defaults
/// are ignored (the derives emit their own bounds).
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut skip_chunk = false;
    while depth > 0 {
        let tok = toks.get(*i).expect("serde_derive: unclosed generics");
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => {
                    at_param_start = true;
                    skip_chunk = false;
                }
                '\'' if depth == 1 && at_param_start => {
                    // Lifetime parameter: skip `'a` entirely.
                    skip_chunk = true;
                    at_param_start = false;
                }
                _ => at_param_start = false,
            },
            TokenTree::Ident(id) if depth == 1 && at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    skip_chunk = true;
                } else if !skip_chunk {
                    params.push(s);
                }
                at_param_start = false;
            }
            _ => at_param_start = false,
        }
        *i += 1;
    }
    params
}

/// Extracts field names from a named-struct body, skipping field types
/// (tracking `<`/`>` depth so commas inside generic types don't split).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        // ':' then the type, up to a top-level ','.
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past a type, stopping at a top-level `,` (not consumed) or the
/// end of the stream.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    let mut prev_dash = false;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' if !prev_dash => angle = angle.saturating_sub(1),
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut angle = 0usize;
    let mut pending = false;
    for tok in &toks {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if angle == 0 => {
                    if pending {
                        count += 1;
                    }
                    pending = false;
                }
                '<' => {
                    angle += 1;
                    pending = true;
                }
                '>' => {
                    angle = angle.saturating_sub(1);
                    pending = true;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                i += 1;
                VariantFields::Named(names)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < toks.len()
                && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn render(item: &Input, ser: bool) -> TokenStream {
    let trait_name = if ser { "Serialize" } else { "Deserialize" };
    let bounds: Vec<String> =
        item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
    let impl_generics =
        if bounds.is_empty() { String::new() } else { format!("<{}>", bounds.join(", ")) };
    let ty_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    let name = &item.name;

    let body = if ser { render_serialize_body(item) } else { render_deserialize_body(item) };
    let source = if ser {
        format!(
            "#[automatically_derived]\n\
             impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
             }}\n"
        )
    } else {
        format!(
            "#[automatically_derived]\n\
             impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
                 fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
             }}\n"
        )
    };
    source.parse().expect("serde_derive: generated code failed to parse")
}

fn render_serialize_body(item: &Input) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push(format!(
                        "{name}::{vn} => \
                         ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantFields::Tuple(1) => arms.push(format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_content(__f0))]),"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                            .collect();
                        arms.push(format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __b_{f}")).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_content(__b_{f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Map(::std::vec![{}]))]),",
                            binds.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn render_deserialize_body(item: &Input) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
        ),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                 if __seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected {n} elements for {name}, got {{}}\", __seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::map_field(__map, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let __map = __c.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantFields::Tuple(1) => data_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_content(__v)?)),"
                    )),
                    VariantFields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{\n\
                             let __seq = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence\", \"{name}::{vn}\"))?;\n\
                             if __seq.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"expected {n} elements for {name}::{vn}, got {{}}\", \
                                 __seq.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}",
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                     ::serde::map_field(__vmap, \"{f}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{\n\
                             let __vmap = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 let _ = __v;\n\
                 match __k.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum\", \"{name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
