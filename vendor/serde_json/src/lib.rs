//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`], built on
//! the shim serde's [`Content`] data model.
//!
//! Rendering is deterministic: map entries keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats serialize as
//! `null` (as upstream serde_json does).

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A JSON value (alias of the shim serde's data model).
pub type Value = Content;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Serializes a value straight into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_content(&value)?)
}

/// Lifts a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Content, indent: Option<&str>, level: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Content::U64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream serde_json.
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is the shortest representation that parses
    // back to the same bits, so values round-trip exactly. Integral floats
    // keep a `.0` so the value re-parses as a float.
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{x:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                char::from(b),
                self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        // self.pos is at 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, Error> {
            p.pos += 1; // consume 'u'
            let hex = p
                .bytes
                .get(p.pos..p.pos + 4)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let v = u32::from_str_radix(hex, 16)
                .map_err(|_| Error::new("invalid \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| Error::new("invalid surrogate pair"));
                }
            }
            return Err(Error::new("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string("hi \"there\"").unwrap(), "\"hi \\\"there\\\"\"");
        let x: f64 = from_str("0.1").unwrap();
        assert_eq!(x, 0.1);
        let v: Vec<i32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02214076e23, -1e-300, 123_456_789.123_456_79] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn pretty_printing() {
        let v = Content::Map(vec![
            ("a".to_string(), Content::I64(1)),
            ("b".to_string(), Content::Seq(vec![Content::Bool(true), Content::Null])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo \u{1F600} \\ \" \n";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let pair: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(pair, "\u{1F600}");
    }
}
